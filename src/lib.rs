//! Umbrella crate for the S³ reproduction: re-exports the whole public API.
//!
//! See the individual crates for details: [`s3_types`], [`s3_stats`],
//! [`s3_graph`], [`s3_trace`], [`s3_wlan`], [`s3_core`], [`s3_par`] and
//! [`s3_obs`].

#![forbid(unsafe_code)]

pub use s3_core as core;
pub use s3_graph as graph;
pub use s3_obs as obs;
pub use s3_par as par;
pub use s3_stats as stats;
pub use s3_trace as trace;
pub use s3_types as types;
pub use s3_wlan as wlan;
