//! Does the learning stage recover the structure the generator planted?
//! These tests close the loop between `s3-trace`'s ground truth and
//! `s3-core`'s model — the reproduction's equivalent of validating against
//! the real SJTU trace.

use std::collections::HashMap;

use s3_wlan_lb::core::{S3Config, SocialModel};
use s3_wlan_lb::trace::generator::{Campus, CampusConfig, CampusGenerator};
use s3_wlan_lb::trace::TraceStore;
use s3_wlan_lb::wlan::selector::LeastLoadedFirst;
use s3_wlan_lb::wlan::{SimConfig, SimEngine, Topology};

fn campus_and_log(seed: u64) -> (Campus, TraceStore) {
    let config = CampusConfig {
        buildings: 4,
        aps_per_building: 8,
        users: 800,
        days: 14,
        ..CampusConfig::campus()
    };
    let campus = CampusGenerator::new(config, seed).generate();
    let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
    let log = TraceStore::new(
        engine
            .run(&campus.demands, &mut LeastLoadedFirst::new())
            .records,
    );
    (campus, log)
}

fn learn(log: &TraceStore, seed: u64) -> SocialModel {
    SocialModel::learn(
        log,
        &S3Config {
            fixed_k: Some(4),
            ..S3Config::default()
        },
        seed,
    )
}

#[test]
fn group_pairs_have_higher_delta_than_strangers() {
    let (campus, log) = campus_and_log(5);
    let model = learn(&log, 5);
    let truth = &campus.ground_truth;

    let mut group_deltas = Vec::new();
    for group in &truth.groups {
        for (i, &u) in group.members.iter().enumerate() {
            for &v in group.members.iter().skip(i + 1) {
                group_deltas.push(model.delta(u, v));
            }
        }
    }
    // Strangers: pairs from different groups and different home buildings.
    let mut stranger_deltas = Vec::new();
    'outer: for a in 0..truth.groups.len().min(20) {
        for b in a + 1..truth.groups.len().min(20) {
            let (ga, gb) = (&truth.groups[a], &truth.groups[b]);
            if ga.building == gb.building {
                continue;
            }
            stranger_deltas.push(model.delta(ga.members[0], gb.members[0]));
            if stranger_deltas.len() >= 200 {
                break 'outer;
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let g = mean(&group_deltas);
    let s = mean(&stranger_deltas);
    assert!(
        g > s * 1.5,
        "groupmates must look much more social: group {g:.3} vs stranger {s:.3}"
    );
}

#[test]
fn clustering_recovers_planted_types() {
    let (campus, log) = campus_and_log(8);
    let model = learn(&log, 8);
    let truth = &campus.ground_truth;

    // Majority mapping: learned cluster → most common planted type.
    let mut votes: HashMap<(usize, usize), u32> = HashMap::new();
    let mut assigned = 0u32;
    for (idx, &planted) in truth.user_types.iter().enumerate() {
        let user = s3_wlan_lb::types::UserId::new(idx as u32);
        if let Some(learned) = model.user_type(user) {
            *votes.entry((learned, planted)).or_insert(0) += 1;
            assigned += 1;
        }
    }
    assert!(assigned > 500, "most users must be typed, got {assigned}");
    let mut mapping: HashMap<usize, usize> = HashMap::new();
    for learned in 0..4 {
        let best = (0..4)
            .max_by_key(|&planted| votes.get(&(learned, planted)).copied().unwrap_or(0))
            .expect("four types");
        mapping.insert(learned, best);
    }
    let correct: u32 = votes
        .iter()
        .filter(|&(&(l, p), _)| mapping[&l] == p)
        .map(|(_, &c)| c)
        .sum();
    let accuracy = correct as f64 / assigned as f64;
    assert!(
        accuracy > 0.8,
        "cluster-to-type accuracy too low: {accuracy:.2}"
    );
}

#[test]
fn type_matrix_is_diagonal_dominant() {
    let (_, log) = campus_and_log(11);
    let model = learn(&log, 11);
    let t = model.type_matrix();
    assert_eq!(t.k(), 4);
    assert!(
        t.diagonal_mean() > t.off_diagonal_mean(),
        "diag {:.3} must exceed off-diag {:.3}",
        t.diagonal_mean(),
        t.off_diagonal_mean()
    );
}

#[test]
fn delta_prediction_forecasts_future_coleavings() {
    // Train on the first week, test: do high-δ pairs actually co-leave in
    // the second week more often than low-δ pairs?
    let (_, log) = campus_and_log(13);
    let train = log.slice_days(0, 6);
    let test = log.slice_days(7, 13);
    let model = learn(&train, 13);

    let window = s3_wlan_lb::types::TimeDelta::minutes(5);
    let future = s3_wlan_lb::trace::events::extract_coleavings(&test, window);

    let mut high_delta_hits = 0u32;
    let mut high_delta_total = 0u32;
    let mut low_delta_hits = 0u32;
    let mut low_delta_total = 0u32;
    for (&pair, _) in s3_wlan_lb::trace::events::extract_encounters(&train, window).iter() {
        let d = model.delta(pair.0, pair.1);
        let co_leaves_later = future.contains_key(&pair);
        if d > 0.5 {
            high_delta_total += 1;
            if co_leaves_later {
                high_delta_hits += 1;
            }
        } else if d < 0.2 {
            low_delta_total += 1;
            if co_leaves_later {
                low_delta_hits += 1;
            }
        }
    }
    assert!(high_delta_total > 50, "need enough high-δ pairs");
    assert!(low_delta_total > 50, "need enough low-δ pairs");
    let high_rate = high_delta_hits as f64 / high_delta_total as f64;
    let low_rate = low_delta_hits as f64 / low_delta_total as f64;
    assert!(
        high_rate > low_rate,
        "δ must forecast co-leavings: high-δ rate {high_rate:.2} vs low-δ rate {low_rate:.2}"
    );
}
