//! End-to-end pipeline tests: generate → collect under LLF → learn →
//! evaluate. These are the repository's acceptance tests: if S³ stops
//! beating LLF on a churn-heavy campus, something fundamental broke.

use s3_wlan_lb::core::{S3Config, S3Selector, SocialModel};
use s3_wlan_lb::trace::generator::{CampusConfig, CampusGenerator};
use s3_wlan_lb::trace::TraceStore;
use s3_wlan_lb::types::TimeDelta;
use s3_wlan_lb::wlan::metrics::mean_active_balance_filtered;
use s3_wlan_lb::wlan::selector::LeastLoadedFirst;
use s3_wlan_lb::wlan::{SimConfig, SimEngine, Topology};

fn test_campus() -> CampusConfig {
    CampusConfig {
        buildings: 4,
        aps_per_building: 8,
        users: 700,
        days: 10,
        ..CampusConfig::campus()
    }
}

struct Pipeline {
    engine: SimEngine,
    eval: Vec<s3_wlan_lb::trace::SessionDemand>,
    model: SocialModel,
    config: S3Config,
}

fn build_pipeline(seed: u64) -> Pipeline {
    let campus = CampusGenerator::new(test_campus(), seed).generate();
    let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
    let history = TraceStore::new(
        engine
            .run(&campus.demands, &mut LeastLoadedFirst::new())
            .records,
    );
    let config = S3Config::default();
    let model = SocialModel::learn(&history.slice_days(0, 6), &config, seed);
    let eval: Vec<_> = campus
        .demands
        .iter()
        .filter(|d| d.arrive.day() >= 7)
        .cloned()
        .collect();
    Pipeline {
        engine,
        eval,
        model,
        config,
    }
}

#[test]
fn s3_beats_llf_on_daytime_balance() {
    let p = build_pipeline(42);
    let bin = TimeDelta::minutes(10);
    let daytime = |h: u64| h >= 8;

    let llf_log = TraceStore::new(p.engine.run(&p.eval, &mut LeastLoadedFirst::new()).records);
    let mut s3 = S3Selector::new(p.model, p.config);
    let s3_log = TraceStore::new(p.engine.run(&p.eval, &mut s3).records);

    let llf = mean_active_balance_filtered(&llf_log, bin, daytime).expect("llf active bins");
    let s3b = mean_active_balance_filtered(&s3_log, bin, daytime).expect("s3 active bins");
    assert!(
        s3b > llf * 1.05,
        "S3 should beat LLF by a clear margin: s3={s3b:.3} llf={llf:.3}"
    );
}

#[test]
fn pipeline_is_deterministic() {
    let a = build_pipeline(7);
    let b = build_pipeline(7);
    let mut s3_a = S3Selector::new(a.model, a.config.clone());
    let mut s3_b = S3Selector::new(b.model, b.config);
    let log_a = a.engine.run(&a.eval, &mut s3_a).records;
    let log_b = b.engine.run(&b.eval, &mut s3_b).records;
    assert_eq!(log_a, log_b, "same seed must reproduce the same evaluation");
}

#[test]
fn every_eval_demand_is_served_by_both_policies() {
    let p = build_pipeline(3);
    let llf = p.engine.run(&p.eval, &mut LeastLoadedFirst::new());
    let mut s3 = S3Selector::new(p.model, p.config);
    let s3r = p.engine.run(&p.eval, &mut s3);
    assert_eq!(llf.records.len(), p.eval.len());
    assert_eq!(s3r.records.len(), p.eval.len());
    assert_eq!(llf.rejected, 0);
    assert_eq!(s3r.rejected, 0);
    // Policies change APs, never sessions: users, times and volumes match.
    for (a, b) in llf.records.iter().zip(&s3r.records) {
        assert_eq!(a.user, b.user);
        assert_eq!(a.connect, b.connect);
        assert_eq!(a.disconnect, b.disconnect);
        assert_eq!(a.total_volume(), b.total_volume());
        assert_eq!(a.controller, b.controller);
    }
}

#[test]
fn s3_gain_holds_across_seeds() {
    let bin = TimeDelta::minutes(10);
    let daytime = |h: u64| h >= 8;
    let mut wins = 0;
    for seed in [1u64, 2, 3] {
        let p = build_pipeline(seed);
        let llf_log = TraceStore::new(p.engine.run(&p.eval, &mut LeastLoadedFirst::new()).records);
        let mut s3 = S3Selector::new(p.model, p.config);
        let s3_log = TraceStore::new(p.engine.run(&p.eval, &mut s3).records);
        let llf = mean_active_balance_filtered(&llf_log, bin, daytime).unwrap();
        let s3b = mean_active_balance_filtered(&s3_log, bin, daytime).unwrap();
        if s3b > llf {
            wins += 1;
        }
    }
    assert_eq!(wins, 3, "S3 must beat LLF for every seed");
}
