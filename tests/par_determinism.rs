//! Property tests for the deterministic parallel execution layer: every
//! parallelized stage must produce results identical to its sequential
//! form — same seed, any thread count. Thread counts are drawn from 1..=8
//! (beyond the machine's core count on purpose: oversubscription must not
//! change results either).

use proptest::prelude::*;

use s3_wlan_lb::core::batch::{assign_clique, ApSlot};
use s3_wlan_lb::core::S3Config;
use s3_wlan_lb::stats::gap::{gap_statistic, GapConfig};
use s3_wlan_lb::stats::kmeans::{fit, KMeansConfig};
use s3_wlan_lb::trace::events::{
    extract_coleavings, extract_coleavings_par, extract_encounters, extract_encounters_par,
    leaving_stats, leaving_stats_par,
};
use s3_wlan_lb::trace::{SessionRecord, TraceStore};
use s3_wlan_lb::types::{ApId, Bytes, ControllerId, TimeDelta, Timestamp, UserId};

/// Random session logs: few APs and users so the per-AP groups are dense
/// enough for overlaps/co-leavings to actually occur.
fn session_store() -> impl Strategy<Value = TraceStore> {
    prop::collection::vec((0u32..20, 0u32..4, 0u64..50_000, 60u64..20_000), 1..80).prop_map(|raw| {
        let records: Vec<SessionRecord> = raw
            .into_iter()
            .map(|(user, ap, connect, len)| SessionRecord {
                user: UserId::new(user),
                ap: ApId::new(ap),
                controller: ControllerId::new(0),
                connect: Timestamp::from_secs(connect),
                disconnect: Timestamp::from_secs(connect + len),
                volume_by_app: [Bytes::ZERO; 6],
            })
            .collect();
        TraceStore::new(records)
    })
}

fn points(n: core::ops::Range<usize>, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-10.0f64..10.0, dim..=dim), n)
}

proptest! {
    #[test]
    fn event_extraction_is_thread_count_invariant(
        store in session_store(),
        window_min in 1u64..30,
        threads in 2usize..=8,
    ) {
        let window = TimeDelta::minutes(window_min);
        prop_assert_eq!(
            extract_encounters_par(&store, window, threads),
            extract_encounters(&store, window)
        );
        prop_assert_eq!(
            extract_coleavings_par(&store, window, threads),
            extract_coleavings(&store, window)
        );
        prop_assert_eq!(
            leaving_stats_par(&store, window, threads),
            leaving_stats(&store, window)
        );
    }

    #[test]
    fn kmeans_fit_is_thread_count_invariant(
        pts in points(6..40, 3),
        k in 1usize..=3,
        seed in 0u64..10_000,
        threads in 2usize..=8,
    ) {
        let seq = KMeansConfig { threads: 1, restarts: 2, ..KMeansConfig::default() };
        let par = KMeansConfig { threads, ..seq.clone() };
        let a = fit(&pts, k, &seq, seed).unwrap();
        let b = fit(&pts, k, &par, seed).unwrap();
        // Bit-for-bit: centroids and inertia are f64s and must agree
        // exactly, not approximately.
        prop_assert_eq!(a, b);
    }

    #[test]
    fn gap_statistic_is_thread_count_invariant(
        pts in points(10..30, 3),
        seed in 0u64..10_000,
        threads in 2usize..=8,
    ) {
        let kmeans = KMeansConfig { restarts: 2, max_iters: 30, ..KMeansConfig::default() };
        let seq = GapConfig {
            reference_sets: 3,
            kmeans,
            threads: 1,
            ..GapConfig::default()
        };
        let par = GapConfig { threads, ..seq.clone() };
        let a = gap_statistic(&pts, 3, &seq, seed).unwrap();
        let b = gap_statistic(&pts, 3, &par, seed).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn assign_clique_is_thread_count_invariant(
        clique_size in 1usize..=5,
        slot_count in 1usize..=4,
        delta_seed in 0u64..10_000,
        threads in 2usize..=8,
        force_beam in (0u8..2).prop_map(|b| b == 1),
    ) {
        let clique: Vec<UserId> = (0..clique_size as u32).map(UserId::new).collect();
        let slots: Vec<ApSlot> = (0..slot_count as u32)
            .map(|s| ApSlot {
                load: f64::from(s) * 5e5,
                capacity: 1e8,
                members: (0..3).map(|w| UserId::new(100 + s * 3 + w)).collect(),
            })
            .collect();
        let delta = |a: UserId, b: UserId| {
            let (lo, hi) = (a.raw().min(b.raw()), a.raw().max(b.raw()));
            let h = (u64::from(lo) * 31 + u64::from(hi) * 17).wrapping_mul(delta_seed | 1);
            (h % 1000) as f64 / 1000.0
        };
        // `force_beam` drops the enumeration limit to zero so the beam
        // search path gets exercised on spaces enumeration would cover.
        let seq = S3Config {
            threads: 1,
            enumeration_limit: if force_beam { 0 } else { S3Config::default().enumeration_limit },
            ..S3Config::default()
        };
        let par = S3Config { threads, ..seq.clone() };
        prop_assert_eq!(
            assign_clique(&clique, &slots, delta, |_| 1e4, &seq),
            assign_clique(&clique, &slots, delta, |_| 1e4, &par)
        );
    }
}
