//! Property-based tests over the core data structures and invariants,
//! spanning crates (hence at the workspace level).

use proptest::prelude::*;

use s3_wlan_lb::graph::{clique, SocialGraph};
use s3_wlan_lb::stats::balance::{balance_index, normalized_balance_index};
use s3_wlan_lb::stats::cdf::Ecdf;
use s3_wlan_lb::trace::{csv, SessionRecord, TraceStore};
use s3_wlan_lb::types::{ApId, AppMix, Bytes, ControllerId, Timestamp, UserId};

fn finite_loads() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1e9, 1..40)
}

proptest! {
    #[test]
    fn balance_index_is_within_bounds(loads in finite_loads()) {
        let b = balance_index(&loads).unwrap();
        let n = loads.len() as f64;
        prop_assert!(b >= 1.0 / n - 1e-9);
        prop_assert!(b <= 1.0 + 1e-9);
        let nb = normalized_balance_index(&loads).unwrap();
        prop_assert!((0.0..=1.0).contains(&nb));
    }

    #[test]
    fn balance_index_is_scale_invariant(loads in finite_loads(), scale in 0.001f64..1e6) {
        let a = balance_index(&loads).unwrap();
        let scaled: Vec<f64> = loads.iter().map(|x| x * scale).collect();
        let b = balance_index(&scaled).unwrap();
        prop_assert!((a - b).abs() < 1e-6, "a={a} b={b}");
    }

    #[test]
    fn balance_index_is_permutation_invariant(mut loads in finite_loads(), seed in 0u64..1000) {
        let a = balance_index(&loads).unwrap();
        // Deterministic shuffle driven by the seed.
        let n = loads.len();
        for i in (1..n).rev() {
            let j = ((seed as usize).wrapping_mul(i + 7)) % (i + 1);
            loads.swap(i, j);
        }
        let b = balance_index(&loads).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn ecdf_is_a_cdf(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = Ecdf::new(samples.clone()).unwrap();
        prop_assert_eq!(cdf.eval(f64::MIN_POSITIVE + 1e9), cdf.eval(1e9 + 1.0));
        prop_assert!(cdf.eval(cdf.min() - 1.0).abs() < 1e-12);
        prop_assert!((cdf.eval(cdf.max()) - 1.0).abs() < 1e-12);
        // Monotone along a sweep.
        let curve = cdf.curve(32);
        for w in curve.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
        // Quantile and eval are consistent: F(Q(q)) >= q.
        for q in [0.1, 0.5, 0.9] {
            prop_assert!(cdf.eval(cdf.quantile(q)) >= q - 1e-12);
        }
    }

    #[test]
    fn app_mix_normalizes_any_positive_volume(
        volumes in prop::collection::vec(0.0f64..1e12, 6..=6).prop_filter(
            "at least one positive", |v| v.iter().any(|&x| x > 0.0))
    ) {
        let arr: [f64; 6] = volumes.clone().try_into().unwrap();
        let mix = AppMix::from_volumes(arr).unwrap();
        prop_assert!((mix.shares().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(mix.shares().iter().all(|&s| (0.0..=1.0).contains(&s)));
        // Dominant realm has the max share.
        let max = mix.shares().iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((mix.share(mix.dominant()) - max).abs() < 1e-12);
    }

    #[test]
    fn max_clique_returns_a_clique(
        edges in prop::collection::vec((0usize..18, 0usize..18, 0.0f64..1.0), 0..80)
    ) {
        let mut g = SocialGraph::new(18);
        for (u, v, w) in edges {
            if u != v {
                g.add_edge(u, v, w).unwrap();
            }
        }
        let c = clique::max_clique(&g);
        prop_assert!(g.is_clique(&c.vertices));
        prop_assert!((c.weight_sum - g.weight_sum(&c.vertices)).abs() < 1e-9);
        // Maximality: no vertex can extend the clique.
        for v in 0..18 {
            if c.vertices.contains(&v) {
                continue;
            }
            let extends = c.vertices.iter().all(|&u| g.has_edge(u, v));
            prop_assert!(!extends, "vertex {v} extends the 'maximum' clique");
        }
    }

    #[test]
    fn clique_partition_is_a_partition(
        edges in prop::collection::vec((0usize..15, 0usize..15, 0.31f64..1.0), 0..60)
    ) {
        let mut g = SocialGraph::new(15);
        for (u, v, w) in edges {
            if u != v {
                g.add_edge(u, v, w).unwrap();
            }
        }
        let parts = s3_wlan_lb::graph::partition::clique_partition(&g);
        let mut seen = [false; 15];
        for part in &parts {
            prop_assert!(g.is_clique(&part.vertices));
            for &v in &part.vertices {
                prop_assert!(!seen[v], "vertex {v} covered twice");
                seen[v] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some vertex uncovered");
    }

    #[test]
    fn session_csv_round_trips(
        records in prop::collection::vec(
            (0u32..1000, 0u32..64, 0u32..8, 0u64..10_000_000, 0u64..100_000,
             prop::collection::vec(0u64..1_000_000_000, 6..=6)),
            0..50
        )
    ) {
        let records: Vec<SessionRecord> = records
            .into_iter()
            .map(|(user, ap, ctl, connect, extra, volumes)| SessionRecord {
                user: UserId::new(user),
                ap: ApId::new(ap),
                controller: ControllerId::new(ctl),
                connect: Timestamp::from_secs(connect),
                disconnect: Timestamp::from_secs(connect + extra),
                volume_by_app: {
                    let mut v = [Bytes::ZERO; 6];
                    for (slot, &b) in v.iter_mut().zip(&volumes) {
                        *slot = Bytes::new(b);
                    }
                    v
                },
            })
            .collect();
        let mut buf = Vec::new();
        csv::write_sessions(&mut buf, &records).unwrap();
        let back = csv::read_sessions(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(back, records);
    }

    #[test]
    fn store_volume_accounting_conserves_traffic(
        records in prop::collection::vec(
            (0u32..50, 0u32..8, 0u64..500_000, 1u64..100_000, 0u64..1_000_000_000),
            1..40
        )
    ) {
        let records: Vec<SessionRecord> = records
            .into_iter()
            .map(|(user, ap, connect, len, volume)| SessionRecord {
                user: UserId::new(user),
                ap: ApId::new(ap),
                controller: ControllerId::new(0),
                connect: Timestamp::from_secs(connect),
                disconnect: Timestamp::from_secs(connect + len),
                volume_by_app: {
                    let mut v = [Bytes::ZERO; 6];
                    v[0] = Bytes::new(volume);
                    v
                },
            })
            .collect();
        let expected: u64 = records.iter().map(|r| r.total_volume().as_u64()).sum();
        let store = TraceStore::new(records);
        // Sum per-AP volumes over a window covering everything.
        let total: u64 = store
            .ap_volumes_in(
                ControllerId::new(0),
                Timestamp::ZERO,
                Timestamp::from_secs(1_000_000),
            )
            .iter()
            .map(|&(_, v)| v.as_u64())
            .sum();
        // Uniform-spread attribution rounds down per window; tolerance is
        // one byte per record.
        prop_assert!(expected - total <= store.len() as u64,
            "expected {expected}, accounted {total}");
    }
}
