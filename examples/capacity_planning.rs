//! Capacity planning with the 802.11 airtime model: how many APs per
//! building does a heavy-traffic campus need before placement policy stops
//! mattering?
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use s3_wlan_lb::core::{S3Config, S3Selector, SocialModel};
use s3_wlan_lb::trace::generator::{CampusConfig, CampusGenerator};
use s3_wlan_lb::trace::TraceStore;
use s3_wlan_lb::types::TimeDelta;
use s3_wlan_lb::wlan::mac::saturation_stats;
use s3_wlan_lb::wlan::selector::LeastLoadedFirst;
use s3_wlan_lb::wlan::{SimConfig, SimEngine, Topology};

fn main() {
    println!("capacity planning: saturation vs APs per building (heavy traffic)\n");
    println!("aps/building | policy | saturated AP-bins | demand served");
    for aps in [2usize, 4, 6, 8] {
        // A heavy-traffic campus: median ≈ 1 Mbit/s per user.
        let config = CampusConfig {
            buildings: 4,
            aps_per_building: aps,
            users: 600,
            days: 8,
            volume_mu: (450e6f64).ln(),
            ..CampusConfig::campus()
        };
        let campus = CampusGenerator::new(config, 17).generate();
        let topology = Topology::from_campus(&campus.config);
        let engine = SimEngine::new(topology.clone(), SimConfig::default());

        // Train S³ on the first 6 days of the LLF log.
        let history = TraceStore::new(
            engine
                .run(&campus.demands, &mut LeastLoadedFirst::new())
                .records,
        );
        let s3_config = S3Config::default();
        let model = SocialModel::learn(&history.slice_days(0, 5), &s3_config, 3);

        let eval: Vec<_> = campus
            .demands
            .iter()
            .filter(|d| d.arrive.day() >= 6)
            .cloned()
            .collect();
        let bin = TimeDelta::minutes(10);

        let llf_log = TraceStore::new(engine.run(&eval, &mut LeastLoadedFirst::new()).records);
        let llf = saturation_stats(&llf_log, &topology, bin);
        let mut s3 = S3Selector::new(model, s3_config);
        let s3_log = TraceStore::new(engine.run(&eval, &mut s3).records);
        let s3s = saturation_stats(&s3_log, &topology, bin);

        println!(
            "{aps:>12} | llf    | {:>16.1}% | {:>12.1}%",
            llf.saturation_fraction() * 100.0,
            llf.demand_satisfaction * 100.0
        );
        println!(
            "{aps:>12} | s3     | {:>16.1}% | {:>12.1}%",
            s3s.saturation_fraction() * 100.0,
            s3s.demand_satisfaction * 100.0
        );
    }
    println!(
        "\nreading: under-provisioned buildings saturate under any policy, but\n\
         S3 consistently serves more of the offered demand at the same AP count\n\
         — social spreading is worth a fraction of an AP per building."
    );
}
