//! Quickstart: generate a campus, train S³ on history, compare it with LLF.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use s3_wlan_lb::core::{S3Config, S3Selector, SocialModel};
use s3_wlan_lb::stats::summary::relative_gain;
use s3_wlan_lb::trace::generator::{CampusConfig, CampusGenerator};
use s3_wlan_lb::trace::TraceStore;
use s3_wlan_lb::types::TimeDelta;
use s3_wlan_lb::wlan::metrics::mean_active_balance_filtered;
use s3_wlan_lb::wlan::selector::LeastLoadedFirst;
use s3_wlan_lb::wlan::{SimConfig, SimEngine, Topology};

fn main() {
    // 1. A small synthetic campus: 4 buildings, 800 users, 10 days.
    let config = CampusConfig {
        buildings: 4,
        aps_per_building: 8,
        users: 800,
        days: 10,
        ..CampusConfig::campus()
    };
    let campus = CampusGenerator::new(config, 7).generate();
    println!(
        "campus: {} users, {} APs, {} session demands over {} days",
        campus.config.users,
        campus.config.total_aps(),
        campus.demands.len(),
        campus.config.days
    );

    // 2. Replay everything under LLF — this is the "collected trace".
    let topology = Topology::from_campus(&campus.config);
    let engine = SimEngine::new(topology, SimConfig::default());
    let llf_log = TraceStore::new(
        engine
            .run(&campus.demands, &mut LeastLoadedFirst::new())
            .records,
    );

    // 3. Train S³ on the first 7 days.
    let s3_config = S3Config::default();
    let model = SocialModel::learn(&llf_log.slice_days(0, 6), &s3_config, 1);
    println!(
        "model: {} socially-known pairs, {} user types",
        model.known_pairs(),
        model.type_count()
    );

    // 4. Evaluate both policies on the last 3 days.
    let eval: Vec<_> = campus
        .demands
        .iter()
        .filter(|d| d.arrive.day() >= 7)
        .cloned()
        .collect();
    let bin = TimeDelta::minutes(10);
    let daytime = |h: u64| h >= 8;

    let llf_eval = TraceStore::new(engine.run(&eval, &mut LeastLoadedFirst::new()).records);
    let mut s3 = S3Selector::new(model, s3_config);
    let s3_eval = TraceStore::new(engine.run(&eval, &mut s3).records);

    let llf_balance = mean_active_balance_filtered(&llf_eval, bin, daytime).unwrap_or(0.0);
    let s3_balance = mean_active_balance_filtered(&s3_eval, bin, daytime).unwrap_or(0.0);
    println!("mean daytime balance index: LLF {llf_balance:.3} | S3 {s3_balance:.3}");
    if let Ok(gain) = relative_gain(llf_balance, s3_balance) {
        println!("S3 balancing gain over LLF: {:+.1}%", gain * 100.0);
    }
}
