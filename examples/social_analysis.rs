//! The paper's measurement study as a workflow: mine a WLAN trace for
//! sociality — co-leaving behaviour, profile stability (NMI), user typing
//! (k-means + gap statistic) and the type co-leave matrix.
//!
//! ```text
//! cargo run --release --example social_analysis
//! ```

use s3_wlan_lb::core::profile::all_window_profiles;
use s3_wlan_lb::core::{S3Config, SocialModel};
use s3_wlan_lb::stats::cdf::Ecdf;
use s3_wlan_lb::stats::gap::{gap_statistic, GapConfig};
use s3_wlan_lb::trace::events::leaving_stats;
use s3_wlan_lb::trace::generator::{CampusConfig, CampusGenerator};
use s3_wlan_lb::trace::TraceStore;
use s3_wlan_lb::types::TimeDelta;
use s3_wlan_lb::wlan::selector::LeastLoadedFirst;
use s3_wlan_lb::wlan::{SimConfig, SimEngine, Topology};

fn main() {
    let config = CampusConfig {
        buildings: 4,
        aps_per_building: 8,
        users: 1_000,
        days: 21,
        ..CampusConfig::campus()
    };
    let campus = CampusGenerator::new(config, 23).generate();
    let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
    let log = TraceStore::new(
        engine
            .run(&campus.demands, &mut LeastLoadedFirst::new())
            .records,
    );
    println!(
        "trace: {} sessions, {} users\n",
        log.len(),
        log.users().len()
    );

    // --- Sociality of leavings (the paper's Fig. 5 question) ---
    println!("co-leaving behaviour:");
    for minutes in [10u64, 20, 30] {
        let stats = leaving_stats(&log, TimeDelta::minutes(minutes));
        let fractions: Vec<f64> = stats
            .values()
            .filter(|s| s.total > 0)
            .map(|s| s.co_leaving_fraction())
            .collect();
        let cdf = Ecdf::new(fractions).expect("leavings exist");
        println!(
            "  {minutes:>2}-min window: median user co-leaves {:.0}% of the time; \
             only {:.0}% of users co-leave less than half the time",
            cdf.quantile(0.5) * 100.0,
            cdf.fraction_below(0.5) * 100.0
        );
    }

    // --- User typing (Figs. 7/8) ---
    let last_day = campus.config.days - 1;
    let profiles = all_window_profiles(&log, last_day, 15);
    let mut users: Vec<_> = profiles.keys().copied().collect();
    users.sort_unstable();
    let points: Vec<Vec<f64>> = users
        .iter()
        .map(|u| profiles[u].shares().to_vec())
        .collect();
    let gap = gap_statistic(&points, 8, &GapConfig::default(), 1).expect("profiles cluster");
    println!("\nuser typing: gap statistic chooses k = {}", gap.chosen_k);

    // --- The learned social model (Table I) ---
    let model = SocialModel::learn(
        &log,
        &S3Config {
            fixed_k: Some(4),
            ..S3Config::default()
        },
        1,
    );
    let t = model.type_matrix();
    println!("type co-leave matrix (diagonal = same type):");
    for i in 0..t.k() {
        let row: Vec<String> = (0..t.k()).map(|j| format!("{:.3}", t.get(i, j))).collect();
        println!("  type{}: [{}]", i + 1, row.join(", "));
    }
    println!(
        "  diagonal mean {:.3} > off-diagonal mean {:.3} → same-type users co-leave more",
        t.diagonal_mean(),
        t.off_diagonal_mean()
    );

    // --- How well does the model recover the planted groups? ---
    let truth = &campus.ground_truth;
    let mut in_group_delta = Vec::new();
    let mut random_delta = Vec::new();
    for group in truth.groups.iter().take(30) {
        for (i, &u) in group.members.iter().enumerate() {
            for &v in group.members.iter().skip(i + 1).take(3) {
                in_group_delta.push(model.delta(u, v));
            }
        }
    }
    for i in 0..300u32 {
        random_delta.push(model.delta(
            s3_wlan_lb::types::UserId::new(i),
            s3_wlan_lb::types::UserId::new(999 - i),
        ));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nsocial index δ: planted group pairs {:.3} vs random pairs {:.3}",
        mean(&in_group_delta),
        mean(&random_delta)
    );
}
