//! A small-scale "prototype" in the spirit of the paper's Section V: one
//! controller, four APs, a handful of users arriving and leaving, with an
//! event-by-event log of every association decision S³ makes.
//!
//! ```text
//! cargo run --release --example prototype_controller
//! ```

use s3_wlan_lb::core::{S3Config, S3Selector, SocialModel};
use s3_wlan_lb::trace::generator::{CampusConfig, CampusGenerator};
use s3_wlan_lb::trace::TraceStore;
use s3_wlan_lb::types::Timestamp;
use s3_wlan_lb::wlan::selector::LeastLoadedFirst;
use s3_wlan_lb::wlan::{SimConfig, SimEngine, Topology};

fn main() {
    // A one-building campus: 4 APs, 60 users, one controller.
    let config = CampusConfig {
        buildings: 1,
        aps_per_building: 4,
        users: 60,
        days: 8,
        ..CampusConfig::campus()
    };
    let campus = CampusGenerator::new(config, 99).generate();
    let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());

    // Learn from a week of LLF-collected history.
    let history = TraceStore::new(
        engine
            .run(&campus.demands, &mut LeastLoadedFirst::new())
            .records,
    );
    let s3_config = S3Config::default();
    let model = SocialModel::learn(&history.slice_days(0, 6), &s3_config, 5);
    println!(
        "prototype controller: 4 APs | trained on {} sessions | {} known pairs\n",
        history.slice_days(0, 6).len(),
        model.known_pairs()
    );

    // Drive the last morning (day 7, 08:00–13:00) through S³ and narrate.
    let mut s3 = S3Selector::new(model, s3_config);
    let window: Vec<_> = campus
        .demands
        .iter()
        .filter(|d| d.arrive.day() == 7 && (8..13).contains(&d.arrive.hour_of_day()))
        .cloned()
        .collect();
    println!("replaying {} arrivals on day 7, 08:00-13:00:", window.len());
    let result = engine.run(&window, &mut s3);

    let mut events: Vec<(Timestamp, String)> = Vec::new();
    for r in &result.records {
        events.push((
            r.connect,
            format!("{}  {} associates to {}", r.connect, r.user, r.ap),
        ));
        events.push((
            r.disconnect,
            format!(
                "{}  {} leaves {} ({} served)",
                r.disconnect,
                r.user,
                r.ap,
                r.total_volume()
            ),
        ));
    }
    events.sort_by_key(|&(t, _)| t);
    for (_, line) in events.iter().take(40) {
        println!("  {line}");
    }
    if events.len() > 40 {
        println!("  ... {} more events", events.len() - 40);
    }

    // Final tally per AP.
    let log = TraceStore::new(result.records);
    println!("\nper-AP session counts:");
    for controller in log.controllers() {
        for &ap in log.aps_of(controller) {
            println!("  {ap}: {} sessions", log.sessions_on(ap).count());
        }
    }
}
