//! A day in the life of a campus WLAN: hour-by-hour balance under four
//! policies, with an ASCII sparkline per policy.
//!
//! ```text
//! cargo run --release --example campus_day
//! ```

use s3_wlan_lb::core::{S3Config, S3Selector, SocialModel};
use s3_wlan_lb::trace::generator::{CampusConfig, CampusGenerator};
use s3_wlan_lb::trace::TraceStore;
use s3_wlan_lb::types::TimeDelta;
use s3_wlan_lb::wlan::metrics::mean_active_balance_filtered;
use s3_wlan_lb::wlan::selector::{ApSelector, LeastLoadedFirst, LeastUsers, RandomSelector};
use s3_wlan_lb::wlan::{SimConfig, SimEngine, Topology};

fn bar(value: f64) -> String {
    let blocks = ["▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"];
    let idx = ((value.clamp(0.0, 1.0) * 7.0).round()) as usize;
    blocks[idx].to_string()
}

fn main() {
    let config = CampusConfig {
        buildings: 4,
        aps_per_building: 8,
        users: 800,
        days: 9,
        ..CampusConfig::campus()
    };
    let campus = CampusGenerator::new(config, 11).generate();
    let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());

    // Train S³ on the first 8 days of an LLF-collected log.
    let history = TraceStore::new(
        engine
            .run(&campus.demands, &mut LeastLoadedFirst::new())
            .records,
    );
    let s3_config = S3Config::default();
    let model = SocialModel::learn(&history.slice_days(0, 7), &s3_config, 3);

    // Evaluate day 8 (a Tuesday: 8 % 7 == 1) under each policy.
    let day: Vec<_> = campus
        .demands
        .iter()
        .filter(|d| d.arrive.day() == 8)
        .cloned()
        .collect();
    println!("day 8: {} arrivals across {} controllers\n", day.len(), 4);

    let mut policies: Vec<(&str, Box<dyn ApSelector>)> = vec![
        ("random", Box::new(RandomSelector::new(5))),
        ("least-users", Box::new(LeastUsers::new())),
        ("llf", Box::new(LeastLoadedFirst::new())),
        ("s3", Box::new(S3Selector::new(model, s3_config))),
    ];

    println!("policy       | 08 09 10 11 12 13 14 15 16 17 18 19 20 21 22 23 | mean");
    for (name, selector) in policies.iter_mut() {
        let log = TraceStore::new(engine.run(&day, selector.as_mut()).records);
        let bin = TimeDelta::minutes(10);
        let mut cells = Vec::new();
        let mut values = Vec::new();
        for hour in 8..24u64 {
            match mean_active_balance_filtered(&log, bin, |h| h == hour) {
                Some(v) => {
                    values.push(v);
                    cells.push(format!("{} ", bar(v)));
                }
                None => cells.push(".  ".to_string()),
            }
        }
        let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
        println!("{name:<12} | {} | {mean:.3}", cells.join(""));
    }
    println!("\n(▁ = unbalanced, █ = perfectly balanced; leave-peaks at 12, 17 and 22)");
}
