//! Offline drop-in subset of the `criterion` bench harness.
//!
//! The build environment has no crates.io access; this crate keeps the
//! workspace's `[[bench]]` targets compiling and producing honest wall-clock
//! numbers. It implements the subset the benches use — `benchmark_group`,
//! `bench_function`, `bench_with_input`, `sample_size`, [`BenchmarkId`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] — with a
//! fixed-sample median-of-samples measurement and a plain-text report:
//!
//! ```text
//! group/bench            time: [median 1.234 ms]  (10 samples)
//! ```
//!
//! No statistical regression analysis, plots or HTML output.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` interchangeably with
/// `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Target measuring time per sample; iterations per sample adapt to it.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);

/// Default number of samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_benchmark(&id.to_string(), DEFAULT_SAMPLE_SIZE, f);
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl fmt::Display, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op beyond parity with upstream).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing handle passed to the benchmarked closure.
pub struct Bencher {
    /// Iterations to run inside [`Bencher::iter`] for this sample.
    iters: u64,
    /// Measured duration of the sample, read back by the harness.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibration: time one iteration, then size samples to the target.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample =
        (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed / iters_per_sample as u32);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{label:<50} time: [median {}]  ({sample_size} samples x {iters_per_sample} iters)",
        format_duration(median),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} us", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro. Ignores harness
/// CLI flags (`--bench`, filters) — all benchmarks in the target run.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 17);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn format_duration_units() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(format_duration(Duration::from_micros(5)), "5.000 us");
        assert_eq!(format_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(format_duration(Duration::from_secs(5)), "5.000 s");
    }
}
