//! Offline placeholder for `serde`.
//!
//! The build environment has no crates.io access. Data-structure crates in
//! this workspace offer an optional `serde` feature (per C-SERDE); nothing
//! in the tier-1 build enables it, but the dependency must still resolve.
//! This placeholder provides the two marker traits and, under the `derive`
//! feature, no-op derive macros that accept (and ignore) `#[serde(...)]`
//! helper attributes.
//!
//! It does NOT implement serialization. If real serialization is ever
//! needed, replace this vendored crate with upstream `serde`.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
