//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the pieces of proptest
//! this workspace uses are reimplemented: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait (ranges, tuples, `prop_map`, `prop_filter`,
//! [`strategy::Just`]), `prop::collection::vec` and the `prop_assert*`
//! macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! case number; rerun with the same binary to reproduce — generation is
//! deterministic per test name and case index) and no persistence files.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source.
pub mod test_runner {
    use super::*;

    /// A failed property case, mirroring `proptest::test_runner::TestCaseError`.
    /// Helper functions called from `proptest!` bodies can return
    /// `Result<(), TestCaseError>` and be bubbled up with `?`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The generator handed to strategies: a [`StdRng`] seeded from the
    /// fully qualified test name and the case index, so every case is
    /// reproducible without a persistence file.
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Builds the generator for one `(test, case)` pair.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// How many resamples [`Strategy::prop_filter`] attempts before giving
    /// up on a predicate that rejects everything.
    const FILTER_RETRIES: usize = 1_000;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `predicate`, resampling up to an internal
        /// retry limit.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            predicate: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                predicate,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Boxed, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

    trait ErasedStrategy<T> {
        fn erased_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.erased_generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        predicate: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.inner.generate(rng);
                if (self.predicate)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected every sample: {}", self.reason);
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// Strategy constructors, mirroring the `proptest::prop` facade.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::RngExt;
        use std::ops::{Range, RangeInclusive};

        /// Inclusive length bounds for generated collections.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty proptest size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty proptest size range");
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.0.random_range(self.size.lo..=self.size.hi);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Builds a [`VecStrategy`]: `vec(0u32..10, 1..40)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// The `proptest!` macro: wraps each property into a `#[test]` running
/// `cases` deterministic cases (no shrinking in this offline subset).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config); $($rest)*);
    };
    (@munch ($config:expr); ) => {};
    (@munch ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for proptest_case in 0..config.cases {
                let mut proptest_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    proptest_case,
                );
                $(
                    let $pat = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut proptest_rng,
                    );
                )*
                // The body runs in a closure returning `Result` so it can
                // use `?` on helpers returning `TestCaseError`, as with
                // upstream proptest. `mut` because FnMut-capturing bodies
                // (e.g. `mut` argument patterns) need it in some expansions.
                #[allow(unused_mut)]
                let mut proptest_body = move ||
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                if let Err(e) = proptest_body() {
                    panic!("property failed at case {proptest_case}: {e}");
                }
            }
        }
        $crate::proptest!(@munch ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = prop::collection::vec(0u32..100, 3..=5);
        let a = Strategy::generate(&s, &mut crate::test_runner::TestRng::for_case("t", 3));
        let b = Strategy::generate(&s, &mut crate::test_runner::TestRng::for_case("t", 3));
        assert_eq!(a, b);
        let c = Strategy::generate(&s, &mut crate::test_runner::TestRng::for_case("t", 4));
        assert!((3..=5).contains(&c.len()));
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in -1.5f64..=1.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.5..=1.5).contains(&y));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            v in prop::collection::vec((0usize..4, 0.0f64..1.0), 0..16)
        ) {
            prop_assert!(v.len() < 16);
            for (i, x) in v {
                prop_assert!(i < 4);
                prop_assert!((0.0..1.0).contains(&x));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn map_and_filter_apply(n in (0u32..50).prop_map(|x| x * 2).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert!(n < 100);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
