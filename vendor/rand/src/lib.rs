//! Offline drop-in subset of the `rand` 0.10 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the handful of `rand` items the workspace uses are reimplemented here:
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64), the
//! [`SeedableRng`] constructor trait and the [`RngExt`] extension trait with
//! `random` / `random_range` / `random_bool` / `shuffle`.
//!
//! The generator is *not* the upstream ChaCha12 stream — streams differ from
//! crates.io `rand` — but it is deterministic, seedable, splittable and
//! statistically sound for the simulation workloads here (the test-suite
//! checks moments of every derived distribution against theory).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Small state, fast, passes BigCrush; seeded from a `u64` through
    /// SplitMix64 exactly like the reference implementation recommends, so
    /// nearby seeds yield uncorrelated streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }
}

/// The minimal generator core: everything else derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via a mixing function.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`RngExt::random_range`]. Generic over the element
/// type (rather than using an associated type) so integer literals in range
/// expressions infer from the call site's expected output type, exactly as
/// with upstream `rand`.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(draw_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(draw_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let u = <$t as Standard>::draw(rng);
                self.start + (self.end - self.start) * u
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let u = <$t as Standard>::draw(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Unbiased draw in `0..bound` by Lemire-style rejection (`bound == 0`
/// means the full 64-bit range).
fn draw_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Convenience extension methods, mirroring `rand::RngExt` (née `Rng`).
pub trait RngExt: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = if p.is_finite() {
            p.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.random::<f64>() < p
    }

    /// Fisher–Yates shuffles `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_interval_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn integer_ranges_cover_support_uniformly() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
        for _ in 0..1_000 {
            let v = rng.random_range(10..=12u8);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.random_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn from_seed_accepts_all_zero() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.random::<u64>(), rng.random::<u64>());
    }

    #[test]
    #[should_panic(expected = "empty random_range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = rng.random_range(5..5u32);
    }
}
