//! No-op derive macros backing the offline `serde` placeholder: they accept
//! the `#[serde(...)]` helper attribute and emit nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
