//! Algorithm 1's clique-distribution search.
//!
//! Once a maximum clique of socially tight arrivals has been extracted, its
//! members must be spread over the controller's APs. The paper enumerates
//! candidate distributions, sorts them by total added social cost
//! `Σᵢ C(APᵢ)` (∞ where the bandwidth constraint would break), keeps the
//! top 30 %, and among those picks the one with the best balance index.
//!
//! For a clique of `c` users and `m` APs the space has `mᶜ` points; we
//! enumerate exhaustively while `mᶜ` is small (`enumeration_limit`) and
//! fall back to a beam search otherwise — preserving the
//! top-fraction-then-balance selection either way (documented deviation in
//! DESIGN.md).

use s3_graph::SocialGraph;
use s3_stats::balance::normalized_balance_index;
use s3_types::UserId;

use crate::S3Config;

/// A projected AP state during batch assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ApSlot {
    /// Current load, bits/s.
    pub load: f64,
    /// Capacity `W(i)`, bits/s.
    pub capacity: f64,
    /// Users currently on the AP (existing associations plus any arrivals
    /// already placed earlier in this batch).
    pub members: Vec<UserId>,
}

/// One scored candidate distribution.
#[derive(Debug, Clone)]
struct Candidate {
    assignment: Vec<usize>,
    cost: f64,
    balance: f64,
}

/// Builds the Section-IV social graph over `users`: vertices are indices
/// into `users`, edges join pairs with `delta > threshold`, weighted by
/// `delta`.
pub fn build_social_graph<D>(users: &[UserId], delta: D, threshold: f64) -> SocialGraph
where
    D: Fn(UserId, UserId) -> f64,
{
    let mut graph = SocialGraph::new(users.len());
    for i in 0..users.len() {
        for j in i + 1..users.len() {
            let d = delta(users[i], users[j]);
            if d > threshold {
                graph
                    .add_edge(i, j, d)
                    .expect("indices in range, weight validated by caller");
            }
        }
    }
    graph
}

/// Per-associated-user epsilon (bits/s) mixed into the projected load:
/// negligible against any real traffic, but it breaks exact balance ties
/// toward spreading by association count — without it, a cold-started
/// model (all demand estimates zero) would project identical balance for
/// every distribution and stack the whole batch on one AP.
const MEMBER_EPSILON_BPS: f64 = 1.0;

fn score(
    assignment: &[usize],
    clique: &[UserId],
    slots: &[ApSlot],
    delta: &dyn Fn(UserId, UserId) -> f64,
    demand: &dyn Fn(UserId) -> f64,
) -> (f64, f64) {
    let m = slots.len();
    let mut added_demand = vec![0.0; m];
    let mut added_members = vec![0usize; m];
    let mut cost = 0.0;
    // Social cost: each placed user pays δ to existing members of its slot
    // and to clique members already placed on the same slot.
    for (idx, (&user, &slot)) in clique.iter().zip(assignment).enumerate() {
        for &w in &slots[slot].members {
            cost += delta(user, w);
        }
        for (prev_idx, &prev_slot) in assignment[..idx].iter().enumerate() {
            if prev_slot == slot {
                cost += delta(user, clique[prev_idx]);
            }
        }
        added_demand[slot] += demand(user);
        added_members[slot] += 1;
    }
    // Bandwidth constraint: any overloaded slot poisons the distribution.
    let mut loads = Vec::with_capacity(m);
    for ((slot, add), members) in slots.iter().zip(&added_demand).zip(&added_members) {
        let load = slot.load + add;
        if load > slot.capacity && *add > 0.0 {
            return (f64::INFINITY, 0.0);
        }
        loads.push(load + (slot.members.len() + members) as f64 * MEMBER_EPSILON_BPS);
    }
    let balance = normalized_balance_index(&loads).unwrap_or(0.0);
    (cost, balance)
}

/// Assigns every member of `clique` to a slot index, implementing the
/// enumerate-or-beam + top-fraction + balance rule. Always returns one slot
/// per member; when every distribution violates capacity the least-loaded
/// slots are used anyway (users must be served).
///
/// # Panics
///
/// Panics if `slots` is empty while `clique` is not.
pub fn assign_clique<D, W>(
    clique: &[UserId],
    slots: &[ApSlot],
    delta: D,
    demand: W,
    config: &S3Config,
) -> Vec<usize>
where
    D: Fn(UserId, UserId) -> f64,
    W: Fn(UserId) -> f64,
{
    if clique.is_empty() {
        return Vec::new();
    }
    assert!(!slots.is_empty(), "cannot assign a clique to zero APs");
    let m = slots.len();
    let c = clique.len();

    let space: Option<usize> = m.checked_pow(c as u32).filter(|&s| s <= config.enumeration_limit);
    let candidates: Vec<Candidate> = match space {
        Some(total) => enumerate_all(total, m, clique, slots, &delta, &demand),
        None => beam_search(m, clique, slots, &delta, &demand, config.beam_width),
    };

    select_best(candidates, config).unwrap_or_else(|| fallback_least_loaded(clique, slots, &demand))
}

fn enumerate_all(
    total: usize,
    m: usize,
    clique: &[UserId],
    slots: &[ApSlot],
    delta: &dyn Fn(UserId, UserId) -> f64,
    demand: &dyn Fn(UserId) -> f64,
) -> Vec<Candidate> {
    let c = clique.len();
    let mut out = Vec::with_capacity(total.min(4_096));
    let mut assignment = vec![0usize; c];
    for code in 0..total {
        let mut x = code;
        for slot in assignment.iter_mut() {
            *slot = x % m;
            x /= m;
        }
        let (cost, balance) = score(&assignment, clique, slots, delta, demand);
        if cost.is_finite() {
            out.push(Candidate {
                assignment: assignment.clone(),
                cost,
                balance,
            });
        }
    }
    out
}

fn beam_search(
    m: usize,
    clique: &[UserId],
    slots: &[ApSlot],
    delta: &dyn Fn(UserId, UserId) -> f64,
    demand: &dyn Fn(UserId) -> f64,
    beam_width: usize,
) -> Vec<Candidate> {
    // Partial state: assignment prefix and its social cost so far.
    let mut beam: Vec<(Vec<usize>, f64)> = vec![(Vec::new(), 0.0)];
    for (idx, &user) in clique.iter().enumerate() {
        let mut next: Vec<(Vec<usize>, f64)> = Vec::with_capacity(beam.len() * m);
        for (prefix, cost) in &beam {
            for (slot, slot_state) in slots.iter().enumerate() {
                let mut added = 0.0;
                for &w in &slot_state.members {
                    added += delta(user, w);
                }
                for (prev_idx, &prev_slot) in prefix.iter().enumerate() {
                    if prev_slot == slot {
                        added += delta(user, clique[prev_idx]);
                    }
                }
                let mut assignment = prefix.clone();
                assignment.push(slot);
                next.push((assignment, cost + added));
            }
        }
        next.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
        next.truncate(beam_width);
        beam = next;
        debug_assert!(beam.iter().all(|(a, _)| a.len() == idx + 1));
    }
    beam.into_iter()
        .filter_map(|(assignment, _)| {
            let (cost, balance) = score(&assignment, clique, slots, delta, demand);
            cost.is_finite().then_some(Candidate {
                assignment,
                cost,
                balance,
            })
        })
        .collect()
}

fn select_best(mut candidates: Vec<Candidate>, config: &S3Config) -> Option<Vec<usize>> {
    if candidates.is_empty() {
        return None;
    }
    candidates.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"));
    let mut keep = ((candidates.len() as f64 * config.top_fraction).ceil() as usize)
        .clamp(1, candidates.len());
    // Ties at the cut-off stay in: "top 30 % by cost" must not split a set
    // of equal-cost distributions arbitrarily, or the balance tie-break
    // never sees them.
    let boundary = candidates[keep - 1].cost;
    while keep < candidates.len() && candidates[keep].cost <= boundary + 1e-12 {
        keep += 1;
    }
    candidates.truncate(keep);
    candidates
        .into_iter()
        .max_by(|a, b| a.balance.partial_cmp(&b.balance).expect("finite balance"))
        .map(|c| c.assignment)
}

fn fallback_least_loaded(
    clique: &[UserId],
    slots: &[ApSlot],
    demand: &dyn Fn(UserId) -> f64,
) -> Vec<usize> {
    let mut loads: Vec<f64> = slots.iter().map(|s| s.load).collect();
    clique
        .iter()
        .map(|&user| {
            let slot = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
                .map(|(i, _)| i)
                .expect("slots non-empty");
            loads[slot] += demand(user);
            slot
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(i: u32) -> UserId {
        UserId::new(i)
    }

    fn empty_slots(m: usize) -> Vec<ApSlot> {
        (0..m)
            .map(|_| ApSlot {
                load: 0.0,
                capacity: 1e8,
                members: Vec::new(),
            })
            .collect()
    }

    fn config() -> S3Config {
        S3Config::default()
    }

    /// δ = 1 for every distinct pair.
    fn all_tied(a: UserId, b: UserId) -> f64 {
        if a == b {
            0.0
        } else {
            1.0
        }
    }

    #[test]
    fn tight_clique_is_spread_across_aps() {
        let clique = vec![user(1), user(2), user(3)];
        let slots = empty_slots(3);
        let picks = assign_clique(&clique, &slots, all_tied, |_| 1e4, &config());
        let distinct: std::collections::HashSet<usize> = picks.iter().copied().collect();
        assert_eq!(distinct.len(), 3, "tight clique must use all APs: {picks:?}");
    }

    #[test]
    fn clique_larger_than_ap_count_minimizes_collisions() {
        let clique: Vec<UserId> = (0..4).map(user).collect();
        let slots = empty_slots(2);
        let picks = assign_clique(&clique, &slots, all_tied, |_| 1e4, &config());
        // Optimal split is 2+2: exactly two intra-AP pairs (cost 2).
        let on_zero = picks.iter().filter(|&&p| p == 0).count();
        assert_eq!(on_zero, 2, "picks {picks:?}");
    }

    #[test]
    fn avoids_aps_holding_social_partners() {
        // User 1 arrives; user 9 (strongly related) already sits on AP 0.
        let clique = vec![user(1)];
        let mut slots = empty_slots(2);
        slots[0].members.push(user(9));
        let delta = |a: UserId, b: UserId| {
            let pair = (a.raw().min(b.raw()), a.raw().max(b.raw()));
            if pair == (1, 9) {
                0.9
            } else {
                0.0
            }
        };
        let picks = assign_clique(&clique, &slots, delta, |_| 1e4, &config());
        assert_eq!(picks, vec![1]);
    }

    #[test]
    fn respects_capacity_constraint() {
        // AP 0 is nearly full; the arrival's demand only fits AP 1, even
        // though AP 0 is socially free and AP 1 holds a partner.
        let clique = vec![user(1)];
        let mut slots = empty_slots(2);
        slots[0].load = 9.9e7;
        slots[0].capacity = 1e8;
        slots[1].members.push(user(9));
        let delta = |a: UserId, b: UserId| {
            if UserId::new(1) == a.min(b) && UserId::new(9) == a.max(b) {
                1.0
            } else {
                0.0
            }
        };
        let picks = assign_clique(&clique, &slots, delta, |_| 5e6, &config());
        assert_eq!(picks, vec![1], "capacity must override social cost");
    }

    #[test]
    fn all_overloaded_falls_back_to_least_loaded() {
        let clique = vec![user(1), user(2)];
        let mut slots = empty_slots(2);
        slots[0].load = 2e8;
        slots[1].load = 3e8; // both over capacity 1e8
        let picks = assign_clique(&clique, &slots, all_tied, |_| 1e6, &config());
        assert_eq!(picks.len(), 2);
        assert_eq!(picks[0], 0, "least loaded first in fallback");
    }

    #[test]
    fn zero_delta_prefers_balanced_loads() {
        // No social signal: the balance tie-break must pick the idle AP.
        let clique = vec![user(1)];
        let mut slots = empty_slots(2);
        slots[0].load = 5e6;
        let picks = assign_clique(&clique, &slots, |_, _| 0.0, |_| 1e6, &config());
        assert_eq!(picks, vec![1]);
    }

    #[test]
    fn beam_search_matches_enumeration_on_small_cases() {
        let clique: Vec<UserId> = (0..3).map(user).collect();
        let mut slots = empty_slots(3);
        slots[0].members.push(user(10));
        let delta = |a: UserId, b: UserId| {
            // 0-1 strongly tied; 10 tied to 2.
            let (lo, hi) = (a.raw().min(b.raw()), a.raw().max(b.raw()));
            match (lo, hi) {
                (0, 1) => 0.8,
                (2, 10) => 0.9,
                _ => 0.05,
            }
        };
        let full = assign_clique(&clique, &slots, delta, |_| 1e4, &config());
        let beamed = assign_clique(
            &clique,
            &slots,
            delta,
            |_| 1e4,
            &S3Config {
                enumeration_limit: 0, // force beam
                ..config()
            },
        );
        let cost = |assignment: &[usize]| {
            score(assignment, &clique, &slots, &delta, &|_: UserId| 1e4).0
        };
        assert!((cost(&full) - cost(&beamed)).abs() < 1e-9);
    }

    #[test]
    fn empty_clique_is_empty_assignment() {
        let picks = assign_clique(&[], &empty_slots(2), all_tied, |_| 0.0, &config());
        assert!(picks.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero APs")]
    fn no_slots_panics() {
        let _ = assign_clique(&[user(1)], &[], all_tied, |_| 0.0, &config());
    }

    #[test]
    fn social_graph_builder_applies_threshold() {
        let users = vec![user(1), user(2), user(3)];
        let delta = |a: UserId, b: UserId| {
            let (lo, hi) = (a.raw().min(b.raw()), a.raw().max(b.raw()));
            match (lo, hi) {
                (1, 2) => 0.8,
                (1, 3) => 0.3, // exactly at threshold: NOT an edge (strict >)
                _ => 0.1,
            }
        };
        let g = build_social_graph(&users, delta, 0.3);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.weight(0, 1), 0.8);
    }
}
