//! Algorithm 1's clique-distribution search.
//!
//! Once a maximum clique of socially tight arrivals has been extracted, its
//! members must be spread over the controller's APs. The paper enumerates
//! candidate distributions, sorts them by total added social cost
//! `Σᵢ C(APᵢ)` (∞ where the bandwidth constraint would break), keeps the
//! top 30 %, and among those picks the one with the best balance index.
//!
//! For a clique of `c` users and `m` APs the space has `mᶜ` points; we
//! enumerate exhaustively while `mᶜ` is small (`enumeration_limit`) and
//! fall back to a beam search otherwise — preserving the
//! top-fraction-then-balance selection either way (documented deviation in
//! DESIGN.md).

use s3_graph::SocialGraph;
use s3_obs::{Desc, HistogramDesc, Stability, Unit};
use s3_stats::balance::normalized_balance_index;
use s3_types::UserId;

use crate::compiled::CompiledModel;
use crate::S3Config;

// Batch-selector metrics (documented in docs/METRICS.md). Hot-loop tallies
// are accumulated locally and added once per enumeration block / beam
// level, so the counter traffic is negligible and the totals are identical
// for every thread count (every block scans the same code range).
static CLIQUES_ASSIGNED: Desc = Desc {
    name: "core.batch.cliques_assigned",
    help: "Cliques placed by the batch distribution search",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static CLIQUE_SIZE: HistogramDesc = HistogramDesc {
    name: "core.batch.clique_size",
    help: "Members per assigned clique",
    unit: Unit::Count,
    stability: Stability::Stable,
    bounds: &[1, 2, 3, 4, 6, 8, 12, 16],
};
static CANDIDATES_ENUMERATED: Desc = Desc {
    name: "core.batch.candidates_enumerated",
    help: "Candidate distributions decoded and scored (exhaustive and beam leaves)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static CAPACITY_REJECTIONS: Desc = Desc {
    name: "core.batch.capacity_rejections",
    help: "Candidate distributions discarded for violating AP capacity",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static BEAM_EXPANSIONS: Desc = Desc {
    name: "core.batch.beam_expansions",
    help: "Partial assignments expanded by the beam search",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static BEAM_PRUNES: Desc = Desc {
    name: "core.batch.beam_prunes",
    help: "Partial assignments cut when truncating each beam level to beam_width",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static FALLBACKS: Desc = Desc {
    name: "core.batch.fallbacks",
    help: "Cliques placed by least-loaded fallback (every distribution violated capacity)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static COST_TABLE_BUILDS: Desc = Desc {
    name: "core.cost.table_builds",
    help: "CliqueCost tables built (one per clique placement)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static COST_DELTA_EVALS: Desc = Desc {
    name: "core.cost.delta_evals",
    help: "Fresh delta(u, w) evaluations while building CliqueCost tables (cache misses)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static COST_LOOKUPS: Desc = Desc {
    name: "core.cost.lookups",
    help: "Table-cell reads served from CliqueCost during candidate scoring (cache hits)",
    unit: Unit::Count,
    stability: Stability::Stable,
};

/// A projected AP state during batch assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ApSlot {
    /// Current load, bits/s.
    pub load: f64,
    /// Capacity `W(i)`, bits/s.
    pub capacity: f64,
    /// Users currently on the AP (existing associations plus any arrivals
    /// already placed earlier in this batch).
    pub members: Vec<UserId>,
}

/// The identity-free projection of an [`ApSlot`] the scoring search needs:
/// load, capacity, and member count. The compiled selector keeps these in a
/// reusable scratch instead of cloning member lists per request; member
/// *identities* live in the cost tables (hashed path) or the dense member
/// buffers (compiled path), never in the search state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SlotState {
    /// Current load, bits/s.
    pub(crate) load: f64,
    /// Capacity `W(i)`, bits/s.
    pub(crate) capacity: f64,
    /// Users currently on the AP (existing plus placed-this-batch).
    pub(crate) member_count: usize,
}

impl SlotState {
    pub(crate) fn of(slot: &ApSlot) -> SlotState {
        SlotState {
            load: slot.load,
            capacity: slot.capacity,
            member_count: slot.members.len(),
        }
    }
}

/// One scored candidate distribution.
#[derive(Debug, Clone)]
struct Candidate {
    assignment: Vec<usize>,
    cost: f64,
    balance: f64,
}

/// Builds the Section-IV social graph over `users`: vertices are indices
/// into `users`, edges join pairs with `delta > threshold`, weighted by
/// `delta`.
pub fn build_social_graph<D>(users: &[UserId], delta: D, threshold: f64) -> SocialGraph
where
    D: Fn(UserId, UserId) -> f64,
{
    let mut graph = SocialGraph::new(users.len());
    for i in 0..users.len() {
        for j in i + 1..users.len() {
            let d = delta(users[i], users[j]);
            if d > threshold {
                graph
                    .add_edge(i, j, d)
                    .expect("indices in range, weight validated by caller");
            }
        }
    }
    graph
}

/// [`build_social_graph`] over dense ids from a compiled model: same strict
/// `δ > threshold` edge rule, same weights, but every δ is a CSR probe and
/// the edges go in through the bulk [`SocialGraph::from_pairwise`]
/// constructor instead of per-edge validation.
pub(crate) fn build_social_graph_compiled(
    model: &CompiledModel,
    users: &[u32],
    threshold: f64,
) -> SocialGraph {
    SocialGraph::from_pairwise(users.len(), |i, j| {
        let d = model.delta_dense(users[i], users[j]);
        (d > threshold).then_some(d)
    })
}

/// Per-associated-user epsilon (bits/s) mixed into the projected load:
/// negligible against any real traffic, but it breaks exact balance ties
/// toward spreading by association count — without it, a cold-started
/// model (all demand estimates zero) would project identical balance for
/// every distribution and stack the whole batch on one AP.
const MEMBER_EPSILON_BPS: f64 = 1.0;

/// Precomputed per-clique cost tables: the slot-entry cost `C(APᵢ)` of each
/// member against each slot's existing population, the pairwise δ within
/// the clique, and the per-member demand estimates.
///
/// The search evaluates up to `enumeration_limit` candidates, each of which
/// previously re-derived every `δ(u, w)` from scratch; building the tables
/// once turns scoring into pure table lookups (`O(c·(m̄ + c))` δ calls total
/// instead of per candidate) and makes candidate scoring a pure function —
/// the prerequisite for fanning the search across threads.
///
/// Both tables are flat row-major arrays (no per-row `Vec`), so scoring a
/// candidate walks contiguous memory: `slot_entry[u·m + s]` and
/// `pair[i·c + j]`.
struct CliqueCost {
    /// `slot_entry[u·m + s]` = Σ δ(clique[u], w) over slot `s`'s members.
    slot_entry: Vec<f64>,
    /// `pair[i·c + j]` = δ(clique[i], clique[j]); symmetric, zero diagonal.
    pair: Vec<f64>,
    /// Demand estimate per clique member.
    demands: Vec<f64>,
    /// Slot count `m` — the row stride of `slot_entry`.
    slots: usize,
}

impl CliqueCost {
    fn new(
        clique: &[UserId],
        slots: &[ApSlot],
        delta: &dyn Fn(UserId, UserId) -> f64,
        demand: &dyn Fn(UserId) -> f64,
    ) -> CliqueCost {
        let c = clique.len();
        let m = slots.len();
        let mut slot_entry = Vec::with_capacity(c * m);
        for &user in clique {
            for slot in slots {
                slot_entry.push(slot.members.iter().map(|&w| delta(user, w)).sum());
            }
        }
        let mut pair = vec![0.0; c * c];
        for i in 0..c {
            for j in i + 1..c {
                let d = delta(clique[i], clique[j]);
                pair[i * c + j] = d;
                pair[j * c + i] = d;
            }
        }
        let demands = clique.iter().map(|&user| demand(user)).collect();
        let member_total: usize = slots.iter().map(|s| s.members.len()).sum();
        Self::record_build(c, member_total);
        CliqueCost {
            slot_entry,
            pair,
            demands,
            slots: m,
        }
    }

    /// [`CliqueCost::new`] against the compiled data plane: the clique and
    /// the per-slot member lists are dense ids, every table cell comes from
    /// a CSR scan ([`CompiledModel::slot_cost`]) or probe instead of hash
    /// lookups, and the pair table is bulk-filled with u's CSR row and type
    /// hoisted per row ([`CompiledModel::fill_pair_table`]).
    /// Metric accounting is identical — `core.cost.delta_evals` counts one
    /// eval per (member, slot-resident) pair exactly as the hashed path
    /// does, so the counter keeps measuring work saved by the table.
    fn from_compiled(model: &CompiledModel, clique: &[u32], members: &[Vec<u32>]) -> CliqueCost {
        let c = clique.len();
        let m = members.len();
        let mut slot_entry = Vec::with_capacity(c * m);
        for &user in clique {
            for row in members {
                slot_entry.push(model.slot_cost(user, row));
            }
        }
        let mut pair = Vec::new();
        model.fill_pair_table(clique, &mut pair);
        let demands = clique
            .iter()
            .map(|&user| model.demand_dense(user))
            .collect();
        let member_total: usize = members.iter().map(|row| row.len()).sum();
        Self::record_build(c, member_total);
        CliqueCost {
            slot_entry,
            pair,
            demands,
            slots: m,
        }
    }

    fn record_build(c: usize, member_total: usize) {
        let registry = s3_obs::global();
        registry.counter(&COST_TABLE_BUILDS).inc();
        registry
            .counter(&COST_DELTA_EVALS)
            .add((c * member_total + c * (c.saturating_sub(1)) / 2) as u64);
    }

    /// Table cells a single [`CliqueCost::score`] call reads: one
    /// `slot_entry` cell per member plus every ordered pair of members.
    fn lookups_per_score(&self) -> u64 {
        let c = self.demands.len();
        (c + c * (c.saturating_sub(1)) / 2) as u64
    }

    /// Social cost + projected balance of a full assignment; the cost is
    /// `+∞` when a slot's bandwidth constraint would break. `scratch` is
    /// cleared and refilled — callers hold one per scoring run so the hot
    /// loop performs no per-candidate allocation. Arithmetic (accumulation
    /// order, capacity test, epsilon mix-in) is unchanged from the nested
    /// `Vec` version, so scores are bit-identical.
    fn score(
        &self,
        assignment: &[usize],
        slots: &SlotArrays,
        scratch: &mut ScoreScratch,
    ) -> (f64, f64) {
        let m = self.slots;
        let c = self.demands.len();
        scratch.added_demand.clear();
        scratch.added_demand.resize(m, 0.0);
        scratch.added_members.clear();
        scratch.added_members.resize(m, 0);
        let mut cost = 0.0;
        // Social cost: each placed user pays δ to existing members of its
        // slot and to clique members already placed on the same slot.
        for (idx, &slot) in assignment.iter().enumerate() {
            cost += self.slot_entry[idx * m + slot];
            for (prev_idx, &prev_slot) in assignment[..idx].iter().enumerate() {
                if prev_slot == slot {
                    cost += self.pair[prev_idx * c + idx];
                }
            }
            scratch.added_demand[slot] += self.demands[idx];
            scratch.added_members[slot] += 1;
        }
        // Bandwidth constraint: any overloaded slot poisons the distribution.
        scratch.loads.clear();
        for s in 0..m {
            let add = scratch.added_demand[s];
            let load = slots.load[s] + add;
            if load > slots.capacity[s] && add > 0.0 {
                return (f64::INFINITY, 0.0);
            }
            scratch.loads.push(
                load + (slots.member_count[s] + scratch.added_members[s]) as f64
                    * MEMBER_EPSILON_BPS,
            );
        }
        let balance = normalized_balance_index(&scratch.loads).unwrap_or(0.0);
        (cost, balance)
    }
}

/// Reusable per-candidate buffers for [`CliqueCost::score`]: the added
/// demand / member tallies and the projected load vector. One lives per
/// enumeration block (or beam scoring block), so steady-state scoring
/// allocates nothing per candidate.
#[derive(Debug, Clone, Default)]
struct ScoreScratch {
    added_demand: Vec<f64>,
    added_members: Vec<usize>,
    loads: Vec<f64>,
}

/// Structure-of-arrays snapshot of the slot states for the scoring loop:
/// three parallel arrays instead of a struct per slot, so the capacity
/// check and load projection stream through contiguous f64s. Built once
/// per [`search_distribution`] call.
struct SlotArrays {
    load: Vec<f64>,
    capacity: Vec<f64>,
    member_count: Vec<usize>,
}

impl SlotArrays {
    fn from_states(states: &[SlotState]) -> SlotArrays {
        SlotArrays {
            load: states.iter().map(|s| s.load).collect(),
            capacity: states.iter().map(|s| s.capacity).collect(),
            member_count: states.iter().map(|s| s.member_count).collect(),
        }
    }
}

/// Assigns every member of `clique` to a slot index, implementing the
/// enumerate-or-beam + top-fraction + balance rule. Always returns one slot
/// per member; when every distribution violates capacity the least-loaded
/// slots are used anyway (users must be served).
///
/// # Panics
///
/// Panics if `slots` is empty while `clique` is not.
pub fn assign_clique<D, W>(
    clique: &[UserId],
    slots: &[ApSlot],
    delta: D,
    demand: W,
    config: &S3Config,
) -> Vec<usize>
where
    D: Fn(UserId, UserId) -> f64,
    W: Fn(UserId) -> f64,
{
    if clique.is_empty() {
        return Vec::new();
    }
    assert!(!slots.is_empty(), "cannot assign a clique to zero APs");
    let cache = CliqueCost::new(clique, slots, &delta, &demand);
    let states: Vec<SlotState> = slots.iter().map(SlotState::of).collect();
    search_distribution(&cache, &states, config)
}

/// [`assign_clique`] against the compiled data plane: `clique` and the
/// per-slot `members` rows are dense ids (including [`crate::compiled::NO_USER`]
/// for unknown arrivals), `states` carries the identity-free slot loads.
/// Same search, same metrics, same answers — bit for bit.
///
/// # Panics
///
/// Panics if `states` is empty while `clique` is not, or when `members` and
/// `states` disagree on the slot count.
pub(crate) fn assign_clique_compiled(
    model: &CompiledModel,
    clique: &[u32],
    members: &[Vec<u32>],
    states: &[SlotState],
    config: &S3Config,
) -> Vec<usize> {
    if clique.is_empty() {
        return Vec::new();
    }
    assert!(!states.is_empty(), "cannot assign a clique to zero APs");
    assert_eq!(members.len(), states.len(), "one member row per slot");
    let cache = CliqueCost::from_compiled(model, clique, members);
    search_distribution(&cache, states, config)
}

/// The enumerate-or-beam + top-fraction + balance search both entry points
/// share once their cost tables are built.
fn search_distribution(cache: &CliqueCost, states: &[SlotState], config: &S3Config) -> Vec<usize> {
    let registry = s3_obs::global();
    registry.counter(&CLIQUES_ASSIGNED).inc();
    let c = cache.demands.len();
    registry.histogram(&CLIQUE_SIZE).observe(c as u64);
    let m = states.len();
    let threads = config.effective_threads();
    let slots = SlotArrays::from_states(states);

    let space: Option<usize> = m
        .checked_pow(c as u32)
        .filter(|&s| s <= config.enumeration_limit);
    let candidates: Vec<Candidate> = match space {
        Some(total) => enumerate_all(total, m, c, cache, &slots, threads),
        None => beam_search(m, c, cache, &slots, config.beam_width, threads),
    };

    select_best(candidates, config).unwrap_or_else(|| {
        registry.counter(&FALLBACKS).inc();
        fallback_least_loaded(&cache.demands, &slots)
    })
}

/// Fixed number of codes each enumeration work item decodes and scores.
/// A constant block size keeps the work split — and hence the candidate
/// order after the in-order merge — independent of the thread count.
const ENUM_BLOCK: usize = 512;

fn enumerate_all(
    total: usize,
    m: usize,
    c: usize,
    cache: &CliqueCost,
    slots: &SlotArrays,
    threads: usize,
) -> Vec<Candidate> {
    let registry = s3_obs::global();
    let enumerated = registry.counter(&CANDIDATES_ENUMERATED);
    let rejected = registry.counter(&CAPACITY_REJECTIONS);
    let lookups = registry.counter(&COST_LOOKUPS);
    let per_score = cache.lookups_per_score();
    let block_starts: Vec<usize> = (0..total).step_by(ENUM_BLOCK).collect();
    let blocks = s3_par::par_map(&block_starts, threads, |_, &start| {
        let end = (start + ENUM_BLOCK).min(total);
        let mut out = Vec::new();
        let mut assignment = vec![0usize; c];
        let mut scratch = ScoreScratch::default();
        for code in start..end {
            let mut x = code;
            for slot in assignment.iter_mut() {
                *slot = x % m;
                x /= m;
            }
            let (cost, balance) = cache.score(&assignment, slots, &mut scratch);
            if cost.is_finite() {
                out.push(Candidate {
                    assignment: assignment.clone(),
                    cost,
                    balance,
                });
            }
        }
        // One counter add per 512-code block, not per candidate, keeps the
        // atomics out of the scoring loop.
        let scored = (end - start) as u64;
        enumerated.add(scored);
        rejected.add(scored - out.len() as u64);
        lookups.add(scored * per_score);
        out
    });
    // Blocks come back in ascending code order, so the candidate list is
    // identical to a sequential scan over 0..total.
    blocks.into_iter().flatten().collect()
}

fn beam_search(
    m: usize,
    c: usize,
    cache: &CliqueCost,
    slots: &SlotArrays,
    beam_width: usize,
    threads: usize,
) -> Vec<Candidate> {
    let registry = s3_obs::global();
    let expansions = registry.counter(&BEAM_EXPANSIONS);
    let prunes = registry.counter(&BEAM_PRUNES);
    // Partial state: assignment prefix and its social cost so far.
    let mut beam: Vec<(Vec<usize>, f64)> = vec![(Vec::new(), 0.0)];
    for idx in 0..c {
        expansions.add(beam.len() as u64);
        // Expanding a prefix touches nothing but the cache, so the beam
        // fans out across threads; flattening in prefix order followed by a
        // *stable* sort reproduces the sequential beam exactly.
        let mut next: Vec<(Vec<usize>, f64)> =
            s3_par::par_map(&beam, threads, |_, (prefix, cost)| {
                let c = cache.demands.len();
                let mut children = Vec::with_capacity(m);
                for slot in 0..m {
                    let mut added = cache.slot_entry[idx * m + slot];
                    for (prev_idx, &prev_slot) in prefix.iter().enumerate() {
                        if prev_slot == slot {
                            added += cache.pair[prev_idx * c + idx];
                        }
                    }
                    let mut assignment = prefix.clone();
                    assignment.push(slot);
                    children.push((assignment, cost + added));
                }
                children
            })
            .into_iter()
            .flatten()
            .collect();
        next.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
        prunes.add(next.len().saturating_sub(beam_width) as u64);
        next.truncate(beam_width);
        beam = next;
        debug_assert!(beam.iter().all(|(a, _)| a.len() == idx + 1));
    }
    let enumerated = registry.counter(&CANDIDATES_ENUMERATED);
    let rejected = registry.counter(&CAPACITY_REJECTIONS);
    let lookups = registry.counter(&COST_LOOKUPS);
    enumerated.add(beam.len() as u64);
    lookups.add(beam.len() as u64 * cache.lookups_per_score());
    // Final scoring runs in fixed-size blocks like the exhaustive path, so
    // each work item reuses one scratch across its block; blocks come back
    // in beam order, preserving the sequential candidate list.
    let block_starts: Vec<usize> = (0..beam.len()).step_by(ENUM_BLOCK).collect();
    let survivors: Vec<Candidate> = s3_par::par_map(&block_starts, threads, |_, &start| {
        let end = (start + ENUM_BLOCK).min(beam.len());
        let mut scratch = ScoreScratch::default();
        let mut out = Vec::new();
        for (assignment, _) in &beam[start..end] {
            let (cost, balance) = cache.score(assignment, slots, &mut scratch);
            if cost.is_finite() {
                out.push(Candidate {
                    assignment: assignment.clone(),
                    cost,
                    balance,
                });
            }
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    rejected.add((beam.len() - survivors.len()) as u64);
    survivors
}

fn select_best(mut candidates: Vec<Candidate>, config: &S3Config) -> Option<Vec<usize>> {
    if candidates.is_empty() {
        return None;
    }
    candidates.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"));
    let mut keep = ((candidates.len() as f64 * config.top_fraction).ceil() as usize)
        .clamp(1, candidates.len());
    // Ties at the cut-off stay in: "top 30 % by cost" must not split a set
    // of equal-cost distributions arbitrarily, or the balance tie-break
    // never sees them.
    let boundary = candidates[keep - 1].cost;
    while keep < candidates.len() && candidates[keep].cost <= boundary + 1e-12 {
        keep += 1;
    }
    candidates.truncate(keep);
    candidates
        .into_iter()
        .max_by(|a, b| a.balance.partial_cmp(&b.balance).expect("finite balance"))
        .map(|c| c.assignment)
}

fn fallback_least_loaded(demands: &[f64], slots: &SlotArrays) -> Vec<usize> {
    let mut loads: Vec<f64> = slots.load.clone();
    demands
        .iter()
        .map(|&demand| {
            let slot = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
                .map(|(i, _)| i)
                .expect("slots non-empty");
            loads[slot] += demand;
            slot
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(i: u32) -> UserId {
        UserId::new(i)
    }

    fn empty_slots(m: usize) -> Vec<ApSlot> {
        (0..m)
            .map(|_| ApSlot {
                load: 0.0,
                capacity: 1e8,
                members: Vec::new(),
            })
            .collect()
    }

    fn config() -> S3Config {
        S3Config::default()
    }

    /// δ = 1 for every distinct pair.
    fn all_tied(a: UserId, b: UserId) -> f64 {
        if a == b {
            0.0
        } else {
            1.0
        }
    }

    #[test]
    fn tight_clique_is_spread_across_aps() {
        let clique = vec![user(1), user(2), user(3)];
        let slots = empty_slots(3);
        let picks = assign_clique(&clique, &slots, all_tied, |_| 1e4, &config());
        let distinct: std::collections::HashSet<usize> = picks.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            3,
            "tight clique must use all APs: {picks:?}"
        );
    }

    #[test]
    fn clique_larger_than_ap_count_minimizes_collisions() {
        let clique: Vec<UserId> = (0..4).map(user).collect();
        let slots = empty_slots(2);
        let picks = assign_clique(&clique, &slots, all_tied, |_| 1e4, &config());
        // Optimal split is 2+2: exactly two intra-AP pairs (cost 2).
        let on_zero = picks.iter().filter(|&&p| p == 0).count();
        assert_eq!(on_zero, 2, "picks {picks:?}");
    }

    #[test]
    fn avoids_aps_holding_social_partners() {
        // User 1 arrives; user 9 (strongly related) already sits on AP 0.
        let clique = vec![user(1)];
        let mut slots = empty_slots(2);
        slots[0].members.push(user(9));
        let delta = |a: UserId, b: UserId| {
            let pair = (a.raw().min(b.raw()), a.raw().max(b.raw()));
            if pair == (1, 9) {
                0.9
            } else {
                0.0
            }
        };
        let picks = assign_clique(&clique, &slots, delta, |_| 1e4, &config());
        assert_eq!(picks, vec![1]);
    }

    #[test]
    fn respects_capacity_constraint() {
        // AP 0 is nearly full; the arrival's demand only fits AP 1, even
        // though AP 0 is socially free and AP 1 holds a partner.
        let clique = vec![user(1)];
        let mut slots = empty_slots(2);
        slots[0].load = 9.9e7;
        slots[0].capacity = 1e8;
        slots[1].members.push(user(9));
        let delta = |a: UserId, b: UserId| {
            if UserId::new(1) == a.min(b) && UserId::new(9) == a.max(b) {
                1.0
            } else {
                0.0
            }
        };
        let picks = assign_clique(&clique, &slots, delta, |_| 5e6, &config());
        assert_eq!(picks, vec![1], "capacity must override social cost");
    }

    #[test]
    fn all_overloaded_falls_back_to_least_loaded() {
        let clique = vec![user(1), user(2)];
        let mut slots = empty_slots(2);
        slots[0].load = 2e8;
        slots[1].load = 3e8; // both over capacity 1e8
        let picks = assign_clique(&clique, &slots, all_tied, |_| 1e6, &config());
        assert_eq!(picks.len(), 2);
        assert_eq!(picks[0], 0, "least loaded first in fallback");
    }

    #[test]
    fn zero_delta_prefers_balanced_loads() {
        // No social signal: the balance tie-break must pick the idle AP.
        let clique = vec![user(1)];
        let mut slots = empty_slots(2);
        slots[0].load = 5e6;
        let picks = assign_clique(&clique, &slots, |_, _| 0.0, |_| 1e6, &config());
        assert_eq!(picks, vec![1]);
    }

    #[test]
    fn beam_search_matches_enumeration_on_small_cases() {
        let clique: Vec<UserId> = (0..3).map(user).collect();
        let mut slots = empty_slots(3);
        slots[0].members.push(user(10));
        let delta = |a: UserId, b: UserId| {
            // 0-1 strongly tied; 10 tied to 2.
            let (lo, hi) = (a.raw().min(b.raw()), a.raw().max(b.raw()));
            match (lo, hi) {
                (0, 1) => 0.8,
                (2, 10) => 0.9,
                _ => 0.05,
            }
        };
        let full = assign_clique(&clique, &slots, delta, |_| 1e4, &config());
        let beamed = assign_clique(
            &clique,
            &slots,
            delta,
            |_| 1e4,
            &S3Config {
                enumeration_limit: 0, // force beam
                ..config()
            },
        );
        let cache = CliqueCost::new(&clique, &slots, &delta, &|_: UserId| 1e4);
        let states: Vec<SlotState> = slots.iter().map(SlotState::of).collect();
        let arrays = SlotArrays::from_states(&states);
        let mut scratch = ScoreScratch::default();
        let mut cost = |assignment: &[usize]| cache.score(assignment, &arrays, &mut scratch).0;
        assert!((cost(&full) - cost(&beamed)).abs() < 1e-9);
    }

    #[test]
    fn empty_clique_is_empty_assignment() {
        let picks = assign_clique(&[], &empty_slots(2), all_tied, |_| 0.0, &config());
        assert!(picks.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero APs")]
    fn no_slots_panics() {
        let _ = assign_clique(&[user(1)], &[], all_tied, |_| 0.0, &config());
    }

    #[test]
    fn social_graph_builder_applies_threshold() {
        let users = vec![user(1), user(2), user(3)];
        let delta = |a: UserId, b: UserId| {
            let (lo, hi) = (a.raw().min(b.raw()), a.raw().max(b.raw()));
            match (lo, hi) {
                (1, 2) => 0.8,
                (1, 3) => 0.3, // exactly at threshold: NOT an edge (strict >)
                _ => 0.1,
            }
        };
        let g = build_social_graph(&users, delta, 0.3);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.weight(0, 1), 0.8);
    }
}
