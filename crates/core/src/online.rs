//! Incremental (nightly) learning — the deployment path of the paper's
//! future work ("we will implement S³ in our campus WLAN").
//!
//! A production controller cannot re-mine three months of logs every
//! night. [`IncrementalLearner`] keeps the sufficient statistics of the
//! S³ model — per-pair encounter and co-leaving counts, a rolling window
//! of per-user daily realm volumes, and the per-user demand EWMA — and
//! ingests one day of session records at a time. [`IncrementalLearner::
//! build_model`] then assembles a [`SocialModel`] from the current
//! statistics (re-running only the cheap k-means step).
//!
//! Semantics match batch learning except at day boundaries: events whose
//! pair of sessions straddles midnight are attributed to the day of the
//! *first* session, and co-leavings across the boundary of two ingested
//! chunks are missed (a few seconds around midnight; negligible and
//! documented).

use std::collections::{HashMap, VecDeque};

use s3_stats::kmeans::{self, KMeansConfig};
use s3_trace::events::{extract_coleavings, extract_encounters, UserPair};
use s3_trace::TraceStore;
use s3_types::{AppMix, BitsPerSec, UserId, APP_CATEGORY_COUNT};

use crate::learning::SocialModel;
use crate::profile::median_demand;
use crate::S3Config;

/// Rolling per-user profile window: one volume vector per ingested day.
#[derive(Debug, Clone, Default)]
struct ProfileWindow {
    /// `(day, per-realm volume)` entries, oldest first, capped at the
    /// look-back length.
    days: VecDeque<(u64, [f64; APP_CATEGORY_COUNT])>,
}

impl ProfileWindow {
    fn push(&mut self, day: u64, volumes: [f64; APP_CATEGORY_COUNT], lookback: u64) {
        self.days.push_back((day, volumes));
        while self.days.len() as u64 > lookback {
            self.days.pop_front();
        }
    }

    fn aggregate(&self) -> Option<AppMix> {
        let mut total = [0.0; APP_CATEGORY_COUNT];
        for (_, v) in &self.days {
            for (t, x) in total.iter_mut().zip(v) {
                *t += x;
            }
        }
        AppMix::from_volumes(total).ok()
    }
}

/// Maintains S³'s sufficient statistics across daily ingests.
#[derive(Debug, Clone)]
pub struct IncrementalLearner {
    config: S3Config,
    seed: u64,
    encounters: HashMap<UserPair, u32>,
    coleavings: HashMap<UserPair, u32>,
    profiles: HashMap<UserId, ProfileWindow>,
    demand: HashMap<UserId, f64>,
    days_ingested: u64,
}

impl IncrementalLearner {
    /// Creates an empty learner.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails validation.
    pub fn new(config: S3Config, seed: u64) -> Self {
        config.validate();
        IncrementalLearner {
            config,
            seed,
            encounters: HashMap::new(),
            coleavings: HashMap::new(),
            profiles: HashMap::new(),
            demand: HashMap::new(),
            days_ingested: 0,
        }
    }

    /// Number of days ingested so far.
    pub fn days_ingested(&self) -> u64 {
        self.days_ingested
    }

    /// Number of pairs with at least one encounter.
    pub fn known_pairs(&self) -> usize {
        self.encounters.len()
    }

    /// Ingests the session records of one day (`day` is the calendar index
    /// the records belong to; callers slice their log per day, e.g. with
    /// [`TraceStore::slice_days`]).
    pub fn ingest_day(&mut self, store: &TraceStore, day: u64) {
        // Pairwise events within the day's records. Saturating adds: a
        // lifetime of ingests must clamp rather than wrap the counters.
        for (pair, count) in extract_encounters(store, self.config.encounter_min_overlap) {
            let slot = self.encounters.entry(pair).or_insert(0);
            *slot = slot.saturating_add(count);
        }
        for (pair, count) in extract_coleavings(store, self.config.coleave_window) {
            let slot = self.coleavings.entry(pair).or_insert(0);
            *slot = slot.saturating_add(count);
        }
        // Profiles and demand.
        for user in store.users() {
            let volumes = store.user_day_volumes(user, day);
            let mut raw = [0.0; APP_CATEGORY_COUNT];
            let mut total = 0.0;
            for (slot, v) in raw.iter_mut().zip(volumes.iter()) {
                *slot = v.as_f64();
                total += v.as_f64();
            }
            if total > 0.0 {
                self.profiles
                    .entry(user)
                    .or_default()
                    .push(day, raw, self.config.lookback_days);
            }
            for session in store.sessions_of(user) {
                if session.connect.day() != day {
                    continue;
                }
                let rate = session.mean_rate().as_f64();
                if rate <= 0.0 {
                    continue;
                }
                let entry = self.demand.entry(user).or_insert(rate);
                *entry = (1.0 - self.config.demand_ewma) * *entry + self.config.demand_ewma * rate;
            }
        }
        self.days_ingested += 1;
    }

    /// Whether the learner has ingested fewer days than the configured
    /// look-back window — models built now will carry the stale flag and
    /// the selector will fall back to LLF (see
    /// [`crate::learning::SocialModel::is_stale`]).
    pub fn is_warming_up(&self) -> bool {
        self.days_ingested < self.config.lookback_days
    }

    /// Assembles the current model: computes `P(L|E)`, clusters the rolled
    /// profiles (fixed `k` from the config, else 4 — a nightly job does not
    /// re-run the gap statistic) and builds the type matrix. The model is
    /// marked stale while the learner [`is_warming_up`](Self::is_warming_up).
    pub fn build_model(&self) -> SocialModel {
        // P(L|E) with the same clamping as the batch path.
        let mut pair_probability = HashMap::with_capacity(self.encounters.len());
        for (&pair, &enc) in &self.encounters {
            if enc == 0 {
                continue;
            }
            let co = self.coleavings.get(&pair).copied().unwrap_or(0);
            pair_probability.insert(pair, (co as f64 / enc as f64).min(1.0));
        }

        // Cluster the current window profiles.
        let mut users: Vec<UserId> = self
            .profiles
            .iter()
            .filter(|(_, w)| w.aggregate().is_some())
            .map(|(&u, _)| u)
            .collect();
        users.sort_unstable();
        let points: Vec<Vec<f64>> = users
            .iter()
            .map(|u| {
                self.profiles[u]
                    .aggregate()
                    .expect("filtered")
                    .shares()
                    .to_vec()
            })
            .collect();
        let k = self.config.fixed_k.unwrap_or(4).min(points.len());
        let (user_type, centroids) = if points.len() >= 2 && k >= 1 {
            match kmeans::fit(&points, k, &KMeansConfig::default(), self.seed) {
                Ok(fit) => {
                    let assignments: HashMap<UserId, usize> = users
                        .iter()
                        .zip(&fit.assignments)
                        .map(|(&u, &a)| (u, a))
                        .collect();
                    let centroids: Vec<AppMix> = fit
                        .centroids
                        .iter()
                        .map(|c| {
                            let mut arr = [0.0; APP_CATEGORY_COUNT];
                            for (slot, &x) in arr.iter_mut().zip(c) {
                                *slot = x.max(0.0);
                            }
                            AppMix::from_volumes(arr).unwrap_or_default()
                        })
                        .collect();
                    (assignments, centroids)
                }
                Err(_) => (HashMap::new(), Vec::new()),
            }
        } else {
            (HashMap::new(), Vec::new())
        };

        let type_matrix =
            SocialModel::type_matrix_from(centroids.len(), &user_type, &pair_probability);

        let demand: HashMap<UserId, BitsPerSec> = self
            .demand
            .iter()
            .map(|(&u, &w)| (u, BitsPerSec::new(w)))
            .collect();
        let fallback = median_demand(&demand);

        SocialModel::from_parts(
            pair_probability,
            user_type,
            type_matrix,
            centroids,
            demand,
            fallback,
            self.config.alpha,
            self.is_warming_up(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_trace::{concentrated_volumes, SessionRecord};
    use s3_types::{ApId, AppCategory, Bytes, ControllerId, Timestamp};

    fn rec(user: u32, ap: u32, start: u64, end: u64, cat: AppCategory) -> SessionRecord {
        SessionRecord {
            user: UserId::new(user),
            ap: ApId::new(ap),
            controller: ControllerId::new(0),
            connect: Timestamp::from_secs(start),
            disconnect: Timestamp::from_secs(end),
            volume_by_app: concentrated_volumes(cat, Bytes::megabytes(10)),
        }
    }

    /// Ten days of a co-leaving pair plus a loner with a distinct profile.
    fn daily_records(day: u64) -> Vec<SessionRecord> {
        let base = day * 86_400 + 10 * 3_600;
        vec![
            rec(1, 0, base, base + 7_200, AppCategory::P2p),
            rec(2, 0, base + 30, base + 7_230, AppCategory::P2p),
            rec(3, 1, base, base + 20_000, AppCategory::Email),
        ]
    }

    fn config() -> S3Config {
        S3Config {
            fixed_k: Some(2),
            ..S3Config::default()
        }
    }

    #[test]
    fn incremental_matches_batch_on_day_sliced_logs() {
        let mut all = Vec::new();
        let mut learner = IncrementalLearner::new(config(), 1);
        for day in 0..10 {
            let records = daily_records(day);
            all.extend(records.clone());
            learner.ingest_day(&TraceStore::new(records), day);
        }
        assert_eq!(learner.days_ingested(), 10);
        let incremental = learner.build_model();
        let batch = SocialModel::learn(&TraceStore::new(all), &config(), 1);

        // Pairwise probabilities agree exactly: no event in this fixture
        // straddles midnight.
        for (a, b) in [(1u32, 2u32), (1, 3), (2, 3)] {
            let (ua, ub) = (UserId::new(a), UserId::new(b));
            assert!(
                (incremental.delta(ua, ub) - batch.delta(ua, ub)).abs() < 1e-9,
                "delta({a},{b}): incremental {} vs batch {}",
                incremental.delta(ua, ub),
                batch.delta(ua, ub)
            );
        }
        assert_eq!(incremental.known_pairs(), batch.known_pairs());
        assert_eq!(incremental.type_count(), batch.type_count());
    }

    #[test]
    fn profile_window_evicts_old_days() {
        let mut w = ProfileWindow::default();
        for day in 0..20 {
            w.push(day, [day as f64 + 1.0, 0.0, 0.0, 0.0, 0.0, 0.0], 5);
        }
        assert_eq!(w.days.len(), 5);
        assert_eq!(w.days.front().unwrap().0, 15, "oldest surviving day");
        let mix = w.aggregate().unwrap();
        assert_eq!(mix.share(AppCategory::Im), 1.0);
    }

    #[test]
    fn lookback_limits_profile_memory() {
        let mut learner = IncrementalLearner::new(
            S3Config {
                lookback_days: 3,
                fixed_k: Some(2),
                ..S3Config::default()
            },
            2,
        );
        // User 1 is P2P for 5 days, then e-mail for 3 days: after the
        // window rolls, the profile must be pure e-mail.
        for day in 0..5 {
            let base = day * 86_400 + 3_600;
            learner.ingest_day(
                &TraceStore::new(vec![
                    rec(1, 0, base, base + 600, AppCategory::P2p),
                    rec(2, 1, base, base + 600, AppCategory::WebBrowsing),
                ]),
                day,
            );
        }
        for day in 5..8 {
            let base = day * 86_400 + 3_600;
            learner.ingest_day(
                &TraceStore::new(vec![
                    rec(1, 0, base, base + 600, AppCategory::Email),
                    rec(2, 1, base, base + 600, AppCategory::WebBrowsing),
                ]),
                day,
            );
        }
        let window = &learner.profiles[&UserId::new(1)];
        let mix = window.aggregate().unwrap();
        assert_eq!(mix.share(AppCategory::P2p), 0.0, "old realm evicted");
        assert_eq!(mix.share(AppCategory::Email), 1.0);
    }

    #[test]
    fn models_are_stale_until_lookback_is_covered() {
        let mut learner = IncrementalLearner::new(
            S3Config {
                lookback_days: 3,
                fixed_k: Some(2),
                ..S3Config::default()
            },
            1,
        );
        assert!(learner.is_warming_up());
        assert!(learner.build_model().is_stale());
        for day in 0..3 {
            learner.ingest_day(&TraceStore::new(daily_records(day)), day);
        }
        assert!(!learner.is_warming_up());
        assert!(!learner.build_model().is_stale());
    }

    #[test]
    fn empty_learner_builds_trivial_model() {
        let learner = IncrementalLearner::new(config(), 3);
        let model = learner.build_model();
        assert_eq!(model.known_pairs(), 0);
        assert_eq!(model.type_count(), 0);
        assert_eq!(model.delta(UserId::new(1), UserId::new(2)), 0.0);
    }

    #[test]
    fn demand_ewma_updates_across_days() {
        let mut learner = IncrementalLearner::new(config(), 4);
        for day in 0..3 {
            learner.ingest_day(&TraceStore::new(daily_records(day)), day);
        }
        let model = learner.build_model();
        assert!(model.estimated_demand(UserId::new(1)).as_f64() > 0.0);
    }

    #[test]
    fn ingest_order_is_immaterial_for_pair_counts() {
        let mut forward = IncrementalLearner::new(config(), 5);
        let mut backward = IncrementalLearner::new(config(), 5);
        for day in 0..6 {
            forward.ingest_day(&TraceStore::new(daily_records(day)), day);
        }
        for day in (0..6).rev() {
            backward.ingest_day(&TraceStore::new(daily_records(day)), day);
        }
        // Event statistics are counters, so ingest order cannot matter.
        // (Profile windows legitimately differ: they keep the most recent
        // days *ingested*, which depend on order.)
        assert_eq!(forward.known_pairs(), backward.known_pairs());
        assert_eq!(forward.encounters, backward.encounters);
        assert_eq!(forward.coleavings, backward.coleavings);
    }
}
