//! S³ — the Social-aware AP Selection Scheme (the paper's contribution).
//!
//! S³ learns, from historical association logs, *which users tend to leave
//! the network together*, and uses that knowledge at arrival time to spread
//! socially tight users across APs — so that when a group co-leaves, the
//! load drop is absorbed by many APs instead of cratering one. No session
//! is ever migrated; user experience is untouched.
//!
//! The pipeline (Sections III-D and IV of the paper):
//!
//! 1. **Event mining** — encounters and co-leavings per user pair
//!    ([`s3_trace::events`]), giving the conditional probability
//!    `P(L(u,v) | E(u,v))`;
//! 2. **Profiling** — per-user six-realm application profiles over a
//!    look-back window ([`profile`]), plus an EWMA bandwidth-demand
//!    estimate `w(u)`;
//! 3. **Typing** — k-means over profiles with `k` chosen by the gap
//!    statistic, and the empirical co-leave probability matrix
//!    `T(typeᵢ, typeⱼ)` (Table I);
//! 4. **Social relation index** — `δ(u,v) = P(L|E) + α·T(type_u, type_v)`
//!    ([`SocialModel::delta`]);
//! 5. **AP selection** — the online [`S3Selector`]: for each arrival (or
//!    batch of simultaneous arrivals), place users so the added social
//!    affinity per AP is minimal, subject to `Σ w(u) ≤ W(i)`, breaking
//!    near-ties in favour of the assignment with the best projected
//!    balance index (Algorithm 1, implemented in [`batch`]).
//!
//! # Example
//!
//! ```
//! use s3_core::{S3Config, S3Selector, SocialModel};
//! use s3_trace::generator::{CampusConfig, CampusGenerator};
//! use s3_trace::TraceStore;
//! use s3_wlan::{selector::LeastLoadedFirst, SimConfig, SimEngine, Topology};
//!
//! // Generate a campus, train on the first two days, select on the third.
//! let campus = CampusGenerator::new(CampusConfig::tiny(), 7).generate();
//! let topology = Topology::from_campus(&campus.config);
//! let engine = SimEngine::new(topology.clone(), SimConfig::default());
//!
//! let bootstrap = engine.run(&campus.demands, &mut LeastLoadedFirst::new());
//! let history = TraceStore::new(bootstrap.records);
//!
//! let config = S3Config::default();
//! let model = SocialModel::learn(&history.slice_days(0, 1), &config, 1);
//! let mut s3 = S3Selector::new(model, config);
//! let result = engine.run(&campus.demands, &mut s3);
//! assert_eq!(result.records.len(), campus.demands.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod compiled;
mod config;
mod learning;
pub mod online;
pub mod profile;
pub mod registry;
mod selector;

pub use compiled::CompiledModel;
pub use config::S3Config;
pub use learning::{SocialModel, TypeMatrix};
pub use online::IncrementalLearner;
pub use registry::{default_registry, strategy_registry};
pub use selector::S3Selector;
