//! Per-user application profiles and bandwidth-demand estimation.
//!
//! The paper represents a user by the normalized traffic volumes of the six
//! application realms over the last `n` days (Fig. 6 shows `n ≈ 15`
//! suffices) and estimates the bandwidth demand `w(u)` of each user from
//! history (citing multiscale traffic predictability work); we use an EWMA
//! over the user's past session mean rates.

use std::collections::HashMap;

use s3_trace::TraceStore;
use s3_types::{AppMix, BitsPerSec, UserId, APP_CATEGORY_COUNT};

/// Builds the profile of `user` from days `last_day−lookback+1 ..= last_day`
/// of `store`. Returns `None` when the user generated no traffic in the
/// window (no profile exists).
pub fn window_profile(
    store: &TraceStore,
    user: UserId,
    last_day: u64,
    lookback: u64,
) -> Option<AppMix> {
    let first_day = last_day.saturating_sub(lookback.saturating_sub(1));
    let volumes = store.user_window_volumes(user, first_day, last_day);
    let mut raw = [0.0; APP_CATEGORY_COUNT];
    for (slot, v) in raw.iter_mut().zip(volumes.iter()) {
        *slot = v.as_f64();
    }
    AppMix::from_volumes(raw).ok()
}

/// Builds window profiles for every user in the store. Users with no
/// traffic in the window are omitted.
pub fn all_window_profiles(
    store: &TraceStore,
    last_day: u64,
    lookback: u64,
) -> HashMap<UserId, AppMix> {
    let mut out = HashMap::new();
    for user in store.users() {
        if let Some(mix) = window_profile(store, user, last_day, lookback) {
            out.insert(user, mix);
        }
    }
    out
}

/// Number of 3-hour bins in the temporal usage profile.
pub const TEMPORAL_BIN_COUNT: usize = 8;

/// The user's *temporal* usage profile: normalized traffic shares over
/// eight 3-hour bins of the day, aggregated over
/// `last_day−lookback+1 ..= last_day`.
///
/// This is the paper's future-work direction ("examine more aspects in
/// characterizing the network usage profiles"): two users with identical
/// application mixes but disjoint hours are less likely to co-leave than
/// two users online at the same times. Returns `None` when the user has no
/// traffic in the window.
pub fn temporal_profile(
    store: &TraceStore,
    user: UserId,
    last_day: u64,
    lookback: u64,
) -> Option<[f64; TEMPORAL_BIN_COUNT]> {
    let first_day = last_day.saturating_sub(lookback.saturating_sub(1));
    let mut bins = [0.0f64; TEMPORAL_BIN_COUNT];
    let secs_per_bin = s3_types::SECS_PER_DAY / TEMPORAL_BIN_COUNT as u64;
    for session in store.sessions_of(user) {
        let day = session.connect.day();
        if day < first_day || day > last_day {
            continue;
        }
        // Attribute the session's volume across the bins it touches
        // (uniform spread, same convention as the day accounting).
        for (bin, slot) in bins.iter_mut().enumerate() {
            let from = s3_types::Timestamp::from_secs(
                day * s3_types::SECS_PER_DAY + bin as u64 * secs_per_bin,
            );
            let to = from + s3_types::TimeDelta::secs(secs_per_bin);
            *slot += session.volume_within(from, to).as_f64();
        }
        // Long sessions can cross midnight; credit the next day's bins too.
        if session.disconnect.day() > day {
            for (bin, slot) in bins.iter_mut().enumerate() {
                let from = s3_types::Timestamp::from_secs(
                    (day + 1) * s3_types::SECS_PER_DAY + bin as u64 * secs_per_bin,
                );
                let to = from + s3_types::TimeDelta::secs(secs_per_bin);
                *slot += session.volume_within(from, to).as_f64();
            }
        }
    }
    let total: f64 = bins.iter().sum();
    if total <= 0.0 {
        return None;
    }
    for b in &mut bins {
        *b /= total;
    }
    Some(bins)
}

/// A combined feature vector for clustering: the six application shares
/// followed by the eight temporal shares, each block summing to 1 so both
/// aspects carry comparable weight. Returns `None` when either half is
/// missing.
pub fn combined_features(
    store: &TraceStore,
    user: UserId,
    last_day: u64,
    lookback: u64,
) -> Option<Vec<f64>> {
    let mix = window_profile(store, user, last_day, lookback)?;
    let temporal = temporal_profile(store, user, last_day, lookback)?;
    let mut features = Vec::with_capacity(APP_CATEGORY_COUNT + TEMPORAL_BIN_COUNT);
    features.extend_from_slice(mix.shares());
    features.extend_from_slice(&temporal);
    Some(features)
}

/// EWMA bandwidth-demand estimates `w(u)` over each user's session mean
/// rates, in session order: `w ← (1−λ)·w + λ·rate`.
///
/// Sessions with zero duration or volume are skipped. Users with no usable
/// session are omitted.
///
/// # Panics
///
/// Panics if `ewma` is outside `(0, 1]`.
pub fn demand_estimates(store: &TraceStore, ewma: f64) -> HashMap<UserId, BitsPerSec> {
    assert!(
        ewma > 0.0 && ewma <= 1.0,
        "ewma weight must be in (0,1], got {ewma}"
    );
    let mut out: HashMap<UserId, f64> = HashMap::new();
    for user in store.users() {
        let mut estimate: Option<f64> = None;
        for session in store.sessions_of(user) {
            let rate = session.mean_rate().as_f64();
            if rate <= 0.0 {
                continue;
            }
            estimate = Some(match estimate {
                None => rate,
                Some(w) => (1.0 - ewma) * w + ewma * rate,
            });
        }
        if let Some(w) = estimate {
            out.insert(user, w);
        }
    }
    out.into_iter()
        .map(|(u, w)| (u, BitsPerSec::new(w)))
        .collect()
}

/// The median of a demand table — the fallback estimate for users the
/// model has never seen. Returns zero for an empty table.
pub fn median_demand(demands: &HashMap<UserId, BitsPerSec>) -> BitsPerSec {
    if demands.is_empty() {
        return BitsPerSec::ZERO;
    }
    let mut rates: Vec<f64> = demands.values().map(|d| d.as_f64()).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    BitsPerSec::new(rates[rates.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_trace::SessionRecord;
    use s3_types::{ApId, AppCategory, Bytes, ControllerId, Timestamp};

    fn rec_with_mix(user: u32, day: u64, im_mb: u64, web_mb: u64, duration: u64) -> SessionRecord {
        let mut volume_by_app = [Bytes::ZERO; 6];
        volume_by_app[AppCategory::Im.index()] = Bytes::megabytes(im_mb);
        volume_by_app[AppCategory::WebBrowsing.index()] = Bytes::megabytes(web_mb);
        let start = day * 86_400 + 36_000;
        SessionRecord {
            user: UserId::new(user),
            ap: ApId::new(0),
            controller: ControllerId::new(0),
            connect: Timestamp::from_secs(start),
            disconnect: Timestamp::from_secs(start + duration),
            volume_by_app,
        }
    }

    #[test]
    fn window_profile_normalizes_window_volumes() {
        let store = TraceStore::new(vec![
            rec_with_mix(1, 0, 10, 0, 600),
            rec_with_mix(1, 1, 0, 30, 600),
        ]);
        let mix = window_profile(&store, UserId::new(1), 1, 2).unwrap();
        assert!((mix.share(AppCategory::Im) - 0.25).abs() < 1e-6);
        assert!((mix.share(AppCategory::WebBrowsing) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn window_profile_respects_lookback() {
        let store = TraceStore::new(vec![
            rec_with_mix(1, 0, 100, 0, 600), // outside a 1-day lookback at day 1
            rec_with_mix(1, 1, 0, 30, 600),
        ]);
        let mix = window_profile(&store, UserId::new(1), 1, 1).unwrap();
        assert_eq!(mix.share(AppCategory::Im), 0.0);
        assert_eq!(mix.share(AppCategory::WebBrowsing), 1.0);
    }

    #[test]
    fn missing_users_have_no_profile() {
        let store = TraceStore::new(vec![rec_with_mix(1, 0, 1, 0, 600)]);
        assert!(window_profile(&store, UserId::new(9), 0, 5).is_none());
        // A user whose traffic lies outside the window also has none.
        assert!(window_profile(&store, UserId::new(1), 9, 2).is_none());
    }

    #[test]
    fn all_profiles_cover_active_users_only() {
        let store = TraceStore::new(vec![
            rec_with_mix(1, 0, 1, 0, 600),
            rec_with_mix(2, 0, 0, 1, 600),
            rec_with_mix(3, 5, 1, 1, 600), // outside window
        ]);
        let profiles = all_window_profiles(&store, 0, 3);
        assert_eq!(profiles.len(), 2);
        assert!(profiles.contains_key(&UserId::new(1)));
        assert!(!profiles.contains_key(&UserId::new(3)));
    }

    #[test]
    fn demand_ewma_tracks_recent_sessions() {
        // Two sessions: 8 Mb over 100 s = 80 kbps, then 16 Mb over 100 s.
        let mk = |day: u64, mb: u64| {
            let mut volume_by_app = [Bytes::ZERO; 6];
            volume_by_app[0] = Bytes::megabytes(mb);
            let start = day * 86_400;
            SessionRecord {
                user: UserId::new(1),
                ap: ApId::new(0),
                controller: ControllerId::new(0),
                connect: Timestamp::from_secs(start),
                disconnect: Timestamp::from_secs(start + 100),
                volume_by_app,
            }
        };
        let store = TraceStore::new(vec![mk(0, 1), mk(1, 2)]);
        let demands = demand_estimates(&store, 0.5);
        let w = demands[&UserId::new(1)].as_f64();
        let r1 = 1e6 * 8.0 / 100.0;
        let r2 = 2e6 * 8.0 / 100.0;
        assert!((w - (0.5 * r1 + 0.5 * r2)).abs() < 1.0);
    }

    #[test]
    fn demand_skips_zero_sessions() {
        let mut rec = rec_with_mix(1, 0, 0, 0, 600);
        rec.volume_by_app = [Bytes::ZERO; 6];
        let store = TraceStore::new(vec![rec]);
        assert!(demand_estimates(&store, 0.3).is_empty());
    }

    #[test]
    #[should_panic(expected = "ewma weight")]
    fn demand_rejects_bad_ewma() {
        let store = TraceStore::new(vec![]);
        let _ = demand_estimates(&store, 0.0);
    }

    #[test]
    fn temporal_profile_places_traffic_in_the_right_bins() {
        // A session at 10:00–10:30 lands entirely in bin 3 (09:00–12:00).
        let store = TraceStore::new(vec![rec_with_mix(1, 0, 10, 0, 1_800)]);
        let t = temporal_profile(&store, UserId::new(1), 0, 5).unwrap();
        assert!((t[3] - 1.0).abs() < 1e-9, "bins: {t:?}");
        assert!((t.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn temporal_profile_splits_across_bins() {
        // 11:00–13:00 straddles bins 3 (09–12) and 4 (12–15) evenly.
        let start = 11 * 3_600;
        let store = TraceStore::new(vec![SessionRecord {
            user: UserId::new(1),
            ap: ApId::new(0),
            controller: ControllerId::new(0),
            connect: Timestamp::from_secs(start),
            disconnect: Timestamp::from_secs(start + 2 * 3_600),
            volume_by_app: {
                let mut v = [Bytes::ZERO; 6];
                v[0] = Bytes::megabytes(10);
                v
            },
        }]);
        let t = temporal_profile(&store, UserId::new(1), 0, 1).unwrap();
        assert!((t[3] - 0.5).abs() < 1e-6, "bins: {t:?}");
        assert!((t[4] - 0.5).abs() < 1e-6, "bins: {t:?}");
    }

    #[test]
    fn temporal_profile_none_without_traffic() {
        let store = TraceStore::new(vec![rec_with_mix(1, 5, 1, 0, 600)]);
        assert!(temporal_profile(&store, UserId::new(1), 0, 1).is_none());
        assert!(temporal_profile(&store, UserId::new(9), 5, 1).is_none());
    }

    #[test]
    fn combined_features_concatenate_both_blocks() {
        let store = TraceStore::new(vec![rec_with_mix(1, 0, 3, 1, 600)]);
        let f = combined_features(&store, UserId::new(1), 0, 5).unwrap();
        assert_eq!(f.len(), 6 + TEMPORAL_BIN_COUNT);
        let app_sum: f64 = f[..6].iter().sum();
        let time_sum: f64 = f[6..].iter().sum();
        assert!((app_sum - 1.0).abs() < 1e-9);
        assert!((time_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn night_owls_and_larks_have_distant_temporal_profiles() {
        let mk = |user: u32, hour: u64| {
            let start = hour * 3_600;
            SessionRecord {
                user: UserId::new(user),
                ap: ApId::new(0),
                controller: ControllerId::new(0),
                connect: Timestamp::from_secs(start),
                disconnect: Timestamp::from_secs(start + 1_800),
                volume_by_app: {
                    let mut v = [Bytes::ZERO; 6];
                    v[0] = Bytes::megabytes(5);
                    v
                },
            }
        };
        let store = TraceStore::new(vec![mk(1, 9), mk(2, 22)]);
        let a = temporal_profile(&store, UserId::new(1), 0, 1).unwrap();
        let b = temporal_profile(&store, UserId::new(2), 0, 1).unwrap();
        let distance: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!((distance - 2.0).abs() < 1e-9, "completely disjoint hours");
    }

    #[test]
    fn median_demand_fallback() {
        let mut demands = HashMap::new();
        assert_eq!(median_demand(&demands), BitsPerSec::ZERO);
        demands.insert(UserId::new(1), BitsPerSec::new(100.0));
        demands.insert(UserId::new(2), BitsPerSec::new(300.0));
        demands.insert(UserId::new(3), BitsPerSec::new(200.0));
        assert_eq!(median_demand(&demands), BitsPerSec::new(200.0));
    }
}
