//! The complete default [`StrategyRegistry`]: the wlan crate's baselines
//! and contenders plus the S³ strategy itself.
//!
//! `s3-wlan` cannot register S³ — it does not know the model type — so the
//! layering is: [`s3_wlan::strategy::register_baselines`] (llf,
//! least-users, rssi, random), then `s3` here, then
//! [`s3_wlan::strategy::register_contenders`] (flow-lb, mab, workload).
//! Consumers (the CLI, the ablation grid) call [`strategy_registry`] and
//! never hard-code a policy list.
//!
//! The S³ factory is `needs_training`: callers train a [`SocialModel`]
//! once (an LLF replay of the training prefix) and pass it through
//! [`s3_wlan::strategy::BuildContext::artifact`]; each shard's factory
//! call clones the model
//! into its own [`S3Selector`].

use std::sync::OnceLock;

use s3_wlan::strategy::{
    register_baselines, register_contenders, StrategyCaps, StrategyError, StrategyRegistry,
};

use crate::{S3Config, S3Selector, SocialModel};

/// Builds a fresh copy of the default registry (every strategy the
/// workspace ships). Prefer [`strategy_registry`] unless the registry is
/// being extended.
pub fn default_registry() -> StrategyRegistry {
    let mut reg = StrategyRegistry::new();
    register_baselines(&mut reg);
    reg.register(
        "s3",
        "social-aware selection from a trained co-leave model (the paper)",
        StrategyCaps {
            needs_training: true,
            shardable: true,
            produces_meta: true,
        },
        Box::new(|ctx| {
            let model = ctx
                .artifact::<SocialModel>()
                .ok_or(StrategyError::MissingArtifact("s3"))?;
            let config = S3Config {
                threads: ctx.threads,
                ..S3Config::default()
            };
            Ok(Box::new(S3Selector::new(model.clone(), config)))
        }),
    );
    register_contenders(&mut reg);
    reg
}

/// The process-wide default registry.
pub fn strategy_registry() -> &'static StrategyRegistry {
    static REGISTRY: OnceLock<StrategyRegistry> = OnceLock::new();
    REGISTRY.get_or_init(default_registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_wlan::strategy::BuildContext;

    #[test]
    fn default_registry_lists_all_eight_strategies() {
        let names: Vec<&str> = strategy_registry().names().collect();
        assert_eq!(
            names,
            vec![
                "llf",
                "least-users",
                "rssi",
                "random",
                "s3",
                "flow-lb",
                "mab",
                "workload"
            ]
        );
    }

    #[test]
    fn s3_needs_a_model_artifact() {
        let reg = strategy_registry();
        let caps = reg.get("s3").unwrap().caps();
        assert!(caps.needs_training && caps.shardable && caps.produces_meta);
        let err = reg
            .build("s3", &BuildContext::new(1, 0))
            .err()
            .expect("no artifact must fail");
        assert_eq!(err, StrategyError::MissingArtifact("s3"));
    }

    #[test]
    fn s3_builds_from_a_trained_model() {
        use s3_trace::TraceStore;
        let model = SocialModel::learn(&TraceStore::new(Vec::new()), &S3Config::default(), 1);
        let ctx = BuildContext {
            seed: 1,
            shard: 0,
            threads: 1,
            artifact: Some(&model),
        };
        let selector = strategy_registry().build("s3", &ctx).unwrap();
        assert_eq!(selector.name(), "s3");
    }
}
