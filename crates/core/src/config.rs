//! S³ tuning parameters, defaulting to the paper's chosen values.

use s3_types::TimeDelta;

/// All knobs of the S³ pipeline. `Default` reproduces the configuration
/// the paper settles on after its parameter study (Section V-B): α = 0.3,
/// a five-minute co-leaving extraction window, a 15-day look-back, and the
/// 0.3 social-edge threshold with a top-30 % distribution short-list.
#[derive(Debug, Clone, PartialEq)]
pub struct S3Config {
    /// Weight `α` of the type-matrix term in `δ(u,v)`.
    pub alpha: f64,
    /// Window for extracting co-leaving events.
    pub coleave_window: TimeDelta,
    /// Minimum session overlap for an encounter event.
    pub encounter_min_overlap: TimeDelta,
    /// Social-graph edge threshold on `δ`.
    pub edge_threshold: f64,
    /// Days of history used for profiles and typing.
    pub lookback_days: u64,
    /// Fraction of lowest-social-cost distributions short-listed before the
    /// balance-index tie-break.
    pub top_fraction: f64,
    /// Largest `k` the gap statistic explores; `None` fixes `k` instead.
    pub k_max: usize,
    /// Fixed number of user types; when `Some(k)` the gap statistic is
    /// skipped.
    pub fixed_k: Option<usize>,
    /// EWMA weight of the most recent session in the demand estimate.
    pub demand_ewma: f64,
    /// Full-enumeration cap: enumerate all `mᶜ` clique distributions only
    /// while `mᶜ` stays at or below this; beam-search otherwise.
    pub enumeration_limit: usize,
    /// Beam width of the fallback distribution search.
    pub beam_width: usize,
    /// Extend the clustering features with the user's temporal (hour-of-
    /// day) usage profile — the paper's future-work direction. Off by
    /// default to match the published pipeline.
    pub temporal_features: bool,
    /// Worker threads for training (event mining, clustering) and the
    /// batch distribution search; `0` means "auto" (resolved through
    /// [`s3_par::resolve_threads`]). Every parallel path is deterministic,
    /// so results are identical for any value.
    pub threads: usize,
}

impl Default for S3Config {
    fn default() -> Self {
        S3Config {
            alpha: 0.3,
            coleave_window: TimeDelta::minutes(5),
            encounter_min_overlap: TimeDelta::minutes(10),
            edge_threshold: 0.3,
            lookback_days: 15,
            top_fraction: 0.3,
            k_max: 8,
            fixed_k: None,
            demand_ewma: 0.3,
            enumeration_limit: 20_000,
            beam_width: 256,
            temporal_features: false,
            threads: 1,
        }
    }
}

impl S3Config {
    /// The effective worker-thread count: `threads`, with `0` resolved via
    /// [`s3_par::resolve_threads`] (environment, then available cores).
    pub fn effective_threads(&self) -> usize {
        s3_par::resolve_threads(Some(self.threads).filter(|&t| t > 0))
    }
}

impl S3Config {
    /// Validates parameter ranges, panicking with a clear message on
    /// nonsense (fail-fast for experiment sweeps).
    ///
    /// # Panics
    ///
    /// Panics when a field is outside its documented range.
    pub fn validate(&self) {
        assert!(
            self.alpha.is_finite() && self.alpha >= 0.0,
            "alpha must be finite and non-negative, got {}",
            self.alpha
        );
        assert!(
            !self.coleave_window.is_zero(),
            "coleave_window must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.top_fraction) && self.top_fraction > 0.0,
            "top_fraction must be in (0,1], got {}",
            self.top_fraction
        );
        assert!(
            self.edge_threshold.is_finite() && self.edge_threshold >= 0.0,
            "edge_threshold must be finite and non-negative"
        );
        assert!(self.lookback_days > 0, "lookback_days must be positive");
        assert!(
            (0.0..=1.0).contains(&self.demand_ewma) && self.demand_ewma > 0.0,
            "demand_ewma must be in (0,1]"
        );
        assert!(self.beam_width > 0, "beam_width must be positive");
        if let Some(k) = self.fixed_k {
            assert!(k > 0, "fixed_k must be positive");
        } else {
            assert!(self.k_max > 0, "k_max must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper() {
        let c = S3Config::default();
        assert_eq!(c.alpha, 0.3);
        assert_eq!(c.coleave_window, TimeDelta::minutes(5));
        assert_eq!(c.edge_threshold, 0.3);
        assert_eq!(c.lookback_days, 15);
        assert_eq!(c.top_fraction, 0.3);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_negative_alpha() {
        S3Config {
            alpha: -0.1,
            ..S3Config::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "coleave_window")]
    fn rejects_zero_window() {
        S3Config {
            coleave_window: TimeDelta::ZERO,
            ..S3Config::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "top_fraction")]
    fn rejects_zero_top_fraction() {
        S3Config {
            top_fraction: 0.0,
            ..S3Config::default()
        }
        .validate();
    }

    #[test]
    fn fixed_k_skips_k_max_check() {
        S3Config {
            fixed_k: Some(4),
            k_max: 0,
            ..S3Config::default()
        }
        .validate();
    }
}
