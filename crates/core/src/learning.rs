//! The learning stage: from a historical trace to a [`SocialModel`].
//!
//! Mirrors Sections III-D and IV of the paper:
//!
//! * encounters and co-leavings are mined per pair and aggregated into
//!   `P(L(u,v) | E(u,v))`;
//! * user profiles over the look-back window are clustered with k-means,
//!   `k` chosen by the gap statistic (the paper finds `k = 4`);
//! * the type matrix `T(typeᵢ, typeⱼ)` is the mean co-leave probability
//!   between users of the two types (Table I);
//! * the social relation index is
//!   `δ(u,v) = P(L|E)(u,v) + α·T(type_u, type_v)`.

use std::collections::HashMap;

use s3_obs::{Desc, HistogramDesc, Stability, Unit};
use s3_stats::gap::{gap_statistic, GapConfig};
use s3_stats::kmeans::{self, KMeansConfig};
use s3_trace::events::{
    coleave_given_encounter, extract_coleavings_par, extract_encounters_par, UserPair,
};
use s3_trace::TraceStore;
use s3_types::{AppMix, BitsPerSec, UserId};

use crate::profile::{all_window_profiles, demand_estimates, median_demand};
use crate::S3Config;

// Learning-stage metrics (documented in docs/METRICS.md). Model-size
// metrics are counters (totals across all learns), not gauges: sweep
// binaries learn many models concurrently, and a last-write-wins gauge
// would make the snapshot depend on worker scheduling.
static LEARNS: Desc = Desc {
    name: "core.model.learns",
    help: "Social models learned from a trace window",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static KNOWN_PAIRS: Desc = Desc {
    name: "core.model.known_pairs",
    help: "User pairs with a learned P(co-leave | encounter), summed over all learned models",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static TYPES: Desc = Desc {
    name: "core.model.types",
    help: "User types (clusters), summed over all learned models",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static LEARN_MICROS: HistogramDesc = HistogramDesc {
    name: "core.model.learn_micros",
    help: "Wall-clock duration of each SocialModel::learn call",
    unit: Unit::Micros,
    stability: Stability::Volatile,
    bounds: &[1_000, 10_000, 100_000, 1_000_000, 10_000_000, 60_000_000],
};

/// The empirical co-leave probability matrix between user types — the
/// paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeMatrix {
    k: usize,
    values: Vec<f64>,
}

impl TypeMatrix {
    /// An all-zero `k × k` matrix.
    pub fn zeros(k: usize) -> Self {
        TypeMatrix {
            k,
            values: vec![0.0; k * k],
        }
    }

    /// Number of types.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `T(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.k && j < self.k, "type index out of range");
        self.values[i * self.k + j]
    }

    fn set(&mut self, i: usize, j: usize, v: f64) {
        self.values[i * self.k + j] = v;
        self.values[j * self.k + i] = v;
    }

    /// Mean of the diagonal entries (the same-type co-leave probability).
    pub fn diagonal_mean(&self) -> f64 {
        if self.k == 0 {
            return 0.0;
        }
        (0..self.k).map(|i| self.get(i, i)).sum::<f64>() / self.k as f64
    }

    /// Mean of the off-diagonal entries.
    pub fn off_diagonal_mean(&self) -> f64 {
        if self.k < 2 {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for i in 0..self.k {
            for j in 0..self.k {
                if i != j {
                    total += self.get(i, j);
                    count += 1;
                }
            }
        }
        total / count as f64
    }
}

/// Everything S³ learned from history. Query with [`SocialModel::delta`].
#[derive(Debug, Clone)]
pub struct SocialModel {
    /// `P(L|E)` per pair (pairs that encountered at least once).
    pair_probability: HashMap<UserPair, f64>,
    /// Cluster assignment per user.
    user_type: HashMap<UserId, usize>,
    /// The type matrix.
    type_matrix: TypeMatrix,
    /// Cluster centroids in realm space (for inspection / Fig. 8).
    centroids: Vec<AppMix>,
    /// Per-user demand estimates `w(u)`.
    demand: HashMap<UserId, BitsPerSec>,
    /// Fallback demand for unseen users.
    fallback_demand: BitsPerSec,
    /// The α used by `delta`.
    alpha: f64,
    /// Whether the producer judged the model under-trained (see
    /// [`SocialModel::is_stale`]).
    stale: bool,
}

impl SocialModel {
    /// Assembles a model from already-computed parts — the back door used
    /// by the incremental learner ([`crate::online::IncrementalLearner`]),
    /// which maintains the statistics itself across days. `stale` marks a
    /// model whose ingested history is shorter than the configured
    /// look-back window.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        pair_probability: HashMap<UserPair, f64>,
        user_type: HashMap<UserId, usize>,
        type_matrix: TypeMatrix,
        centroids: Vec<AppMix>,
        demand: HashMap<UserId, BitsPerSec>,
        fallback_demand: BitsPerSec,
        alpha: f64,
        stale: bool,
    ) -> SocialModel {
        SocialModel {
            pair_probability,
            user_type,
            type_matrix,
            centroids,
            demand,
            fallback_demand,
            alpha,
            stale,
        }
    }

    /// Estimates the type matrix from assignments and pair probabilities —
    /// exposed within the crate for the incremental learner.
    pub(crate) fn type_matrix_from(
        k: usize,
        user_type: &HashMap<UserId, usize>,
        pair_probability: &HashMap<UserPair, f64>,
    ) -> TypeMatrix {
        Self::estimate_type_matrix(k, user_type, pair_probability)
    }

    /// Learns the model from `store` under `config`. `seed` drives the
    /// clustering; identical inputs give identical models.
    ///
    /// Degenerate inputs degrade gracefully: an empty store yields a model
    /// whose `delta` is identically zero (S³ then behaves like LLF).
    pub fn learn(store: &TraceStore, config: &S3Config, seed: u64) -> SocialModel {
        config.validate();
        let registry = s3_obs::global();
        let _span = registry.timer(&LEARN_MICROS);
        let threads = config.effective_threads();
        let encounters = extract_encounters_par(store, config.encounter_min_overlap, threads);
        let coleavings = extract_coleavings_par(store, config.coleave_window, threads);
        let pair_probability = coleave_given_encounter(&encounters, &coleavings);

        let last_day = store.day_range().map(|(_, last)| last).unwrap_or(0);
        let profiles = all_window_profiles(store, last_day, config.lookback_days);

        let (user_type, centroids) = Self::cluster_users(store, &profiles, last_day, config, seed);
        let k = centroids.len();
        let type_matrix = Self::estimate_type_matrix(k, &user_type, &pair_probability);

        let demand = demand_estimates(store, config.demand_ewma);
        let fallback_demand = median_demand(&demand);

        registry.counter(&LEARNS).inc();
        registry
            .counter(&KNOWN_PAIRS)
            .add(pair_probability.len() as u64);
        registry.counter(&TYPES).add(k as u64);

        SocialModel {
            pair_probability,
            user_type,
            type_matrix,
            centroids,
            demand,
            fallback_demand,
            alpha: config.alpha,
            // Batch learning sees whatever history the caller chose to
            // train on; only the incremental path tracks ingested days
            // against the look-back window.
            stale: false,
        }
    }

    fn cluster_users(
        store: &TraceStore,
        profiles: &HashMap<UserId, AppMix>,
        last_day: u64,
        config: &S3Config,
        seed: u64,
    ) -> (HashMap<UserId, usize>, Vec<AppMix>) {
        let mut users: Vec<UserId> = profiles.keys().copied().collect();
        users.sort_unstable();
        let points: Vec<Vec<f64>> = if config.temporal_features {
            // Future-work variant: application shares ⊕ hour-of-day shares.
            let features: Vec<(UserId, Vec<f64>)> = users
                .iter()
                .filter_map(|&u| {
                    crate::profile::combined_features(store, u, last_day, config.lookback_days)
                        .map(|f| (u, f))
                })
                .collect();
            users = features.iter().map(|&(u, _)| u).collect();
            features.into_iter().map(|(_, f)| f).collect()
        } else {
            users
                .iter()
                .map(|u| profiles[u].shares().to_vec())
                .collect()
        };
        if points.len() < 2 {
            return (HashMap::new(), Vec::new());
        }
        let threads = config.effective_threads();
        let k = match config.fixed_k {
            Some(k) => k.min(points.len()),
            None => {
                let k_max = config.k_max.min(points.len());
                // The gap statistic fans its independent fits across the
                // workers; its inner k-means runs stay sequential so the
                // pool is not oversubscribed.
                let gap_config = GapConfig {
                    threads,
                    ..GapConfig::default()
                };
                match gap_statistic(&points, k_max, &gap_config, seed) {
                    Ok(result) => result.chosen_k,
                    Err(_) => return (HashMap::new(), Vec::new()),
                }
            }
        };
        let kmeans_config = KMeansConfig {
            threads,
            ..KMeansConfig::default()
        };
        let Ok(fit) = kmeans::fit(&points, k, &kmeans_config, seed) else {
            return (HashMap::new(), Vec::new());
        };
        let assignments: HashMap<UserId, usize> = users
            .iter()
            .zip(&fit.assignments)
            .map(|(&u, &a)| (u, a))
            .collect();
        // With temporal features the centroid has 14 dimensions; the
        // reported AppMix keeps the application block (zip truncates) and
        // renormalizes it.
        let centroids: Vec<AppMix> = fit
            .centroids
            .iter()
            .map(|c| {
                let mut arr = [0.0; s3_types::APP_CATEGORY_COUNT];
                for (slot, &x) in arr.iter_mut().zip(c) {
                    *slot = x.max(0.0);
                }
                AppMix::from_volumes(arr).unwrap_or_default()
            })
            .collect();
        (assignments, centroids)
    }

    fn estimate_type_matrix(
        k: usize,
        user_type: &HashMap<UserId, usize>,
        pair_probability: &HashMap<UserPair, f64>,
    ) -> TypeMatrix {
        let mut matrix = TypeMatrix::zeros(k);
        if k == 0 {
            return matrix;
        }
        let mut sums = vec![0.0; k * k];
        let mut counts = vec![0u32; k * k];
        for (pair, &p) in pair_probability {
            let (Some(&ti), Some(&tj)) = (user_type.get(&pair.0), user_type.get(&pair.1)) else {
                continue;
            };
            sums[ti * k + tj] += p;
            counts[ti * k + tj] += 1;
            if ti != tj {
                sums[tj * k + ti] += p;
                counts[tj * k + ti] += 1;
            }
        }
        for i in 0..k {
            for j in i..k {
                let idx = i * k + j;
                if counts[idx] > 0 {
                    matrix.set(i, j, sums[idx] / counts[idx] as f64);
                }
            }
        }
        matrix
    }

    /// The full learned pair-probability table — the input the compiled
    /// data plane freezes into CSR form ([`crate::CompiledModel`]).
    pub(crate) fn pair_probabilities(&self) -> &HashMap<UserPair, f64> {
        &self.pair_probability
    }

    /// The full user → type assignment map.
    pub(crate) fn user_types(&self) -> &HashMap<UserId, usize> {
        &self.user_type
    }

    /// The full user → demand-estimate map.
    pub(crate) fn demands(&self) -> &HashMap<UserId, BitsPerSec> {
        &self.demand
    }

    /// The population-median fallback demand for unseen users.
    pub(crate) fn fallback_demand(&self) -> BitsPerSec {
        self.fallback_demand
    }

    /// The social relation index
    /// `δ(u,v) = P(L(u,v)|E(u,v)) + α·T(type_u, type_v)`.
    ///
    /// Unknown pairs contribute only the type term; users without a type
    /// contribute only the pair term; both unknown → 0 (no relation).
    pub fn delta(&self, u: UserId, v: UserId) -> f64 {
        let Some(pair) = UserPair::new(u, v) else {
            return 0.0;
        };
        let pair_term = self.pair_probability.get(&pair).copied().unwrap_or(0.0);
        let type_term = match (self.user_type.get(&u), self.user_type.get(&v)) {
            (Some(&ti), Some(&tj)) => self.type_matrix.get(ti, tj),
            _ => 0.0,
        };
        pair_term + self.alpha * type_term
    }

    /// The learned type of `user`, if any.
    pub fn user_type(&self, user: UserId) -> Option<usize> {
        self.user_type.get(&user).copied()
    }

    /// Number of learned types (0 when clustering was impossible).
    pub fn type_count(&self) -> usize {
        self.type_matrix.k()
    }

    /// The learned type matrix (Table I).
    pub fn type_matrix(&self) -> &TypeMatrix {
        &self.type_matrix
    }

    /// Cluster centroids in realm space (Fig. 8).
    pub fn centroids(&self) -> &[AppMix] {
        &self.centroids
    }

    /// Number of pairs with a learned `P(L|E)`.
    pub fn known_pairs(&self) -> usize {
        self.pair_probability.len()
    }

    /// The demand estimate `w(user)`, falling back to the population
    /// median for unseen users.
    pub fn estimated_demand(&self, user: UserId) -> BitsPerSec {
        self.demand
            .get(&user)
            .copied()
            .unwrap_or(self.fallback_demand)
    }

    /// The α this model applies in [`SocialModel::delta`].
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Whether the producer marked the model under-trained: the
    /// incremental learner sets this when it has ingested fewer days than
    /// the configured look-back window. A stale model scores pairs from a
    /// partial history, which can systematically mis-rank cliques — the
    /// selector falls back to LLF instead of trusting it
    /// (see [`crate::S3Selector`]).
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// True when the model cannot distinguish any user pair: no pair has a
    /// learned `P(L|E)`, so the pair term is zero everywhere — and the type
    /// matrix, being estimated from those very pair probabilities, is
    /// all-zero too. `delta` is identically zero and social scoring would
    /// silently degenerate; the selector short-circuits to LLF.
    pub fn is_trivial(&self) -> bool {
        self.pair_probability.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_trace::SessionRecord;
    use s3_types::{ApId, AppCategory, Bytes, ControllerId, Timestamp};

    /// Builds a store where users 1,2 co-leave repeatedly (same AP) and
    /// user 3 is unrelated, with distinct app mixes.
    fn social_store() -> TraceStore {
        let mut records = Vec::new();
        let mk = |user: u32, ap: u32, start: u64, end: u64, cat: AppCategory| {
            let mut volume_by_app = [Bytes::ZERO; 6];
            volume_by_app[cat.index()] = Bytes::megabytes(10);
            SessionRecord {
                user: UserId::new(user),
                ap: ApId::new(ap),
                controller: ControllerId::new(0),
                connect: Timestamp::from_secs(start),
                disconnect: Timestamp::from_secs(end),
                volume_by_app,
            }
        };
        for day in 0..10u64 {
            let base = day * 86_400 + 10 * 3_600;
            // Users 1 and 2: two hours together, leave within a minute.
            records.push(mk(1, 0, base, base + 7_200, AppCategory::P2p));
            records.push(mk(2, 0, base + 60, base + 7_230, AppCategory::P2p));
            // User 3: present on another AP, leaves hours later.
            records.push(mk(3, 1, base, base + 20_000, AppCategory::Email));
            // User 4: shares AP 0 with 1 and 2 but leaves much later.
            records.push(mk(4, 0, base, base + 15_000, AppCategory::WebBrowsing));
        }
        TraceStore::new(records)
    }

    fn config() -> S3Config {
        S3Config {
            fixed_k: Some(2),
            ..S3Config::default()
        }
    }

    #[test]
    fn coleaving_pair_has_high_delta() {
        let model = SocialModel::learn(&social_store(), &config(), 1);
        let d12 = model.delta(UserId::new(1), UserId::new(2));
        let d14 = model.delta(UserId::new(1), UserId::new(4));
        assert!(d12 > 0.9, "repeat co-leavers should be near 1, got {d12}");
        assert!(d12 > d14, "co-leavers must outrank co-locators");
    }

    #[test]
    fn delta_is_symmetric() {
        let model = SocialModel::learn(&social_store(), &config(), 1);
        for (a, b) in [(1u32, 2u32), (1, 3), (2, 4)] {
            let ab = model.delta(UserId::new(a), UserId::new(b));
            let ba = model.delta(UserId::new(b), UserId::new(a));
            assert!((ab - ba).abs() < 1e-12);
        }
    }

    #[test]
    fn delta_of_self_is_zero() {
        let model = SocialModel::learn(&social_store(), &config(), 1);
        assert_eq!(model.delta(UserId::new(1), UserId::new(1)), 0.0);
    }

    #[test]
    fn unknown_users_fall_back_to_zero() {
        let model = SocialModel::learn(&social_store(), &config(), 1);
        assert_eq!(model.delta(UserId::new(100), UserId::new(101)), 0.0);
    }

    #[test]
    fn empty_store_gives_trivial_model() {
        let model = SocialModel::learn(&TraceStore::new(vec![]), &config(), 1);
        assert_eq!(model.type_count(), 0);
        assert_eq!(model.known_pairs(), 0);
        assert_eq!(model.delta(UserId::new(1), UserId::new(2)), 0.0);
        assert_eq!(model.estimated_demand(UserId::new(1)), BitsPerSec::ZERO);
        assert!(model.is_trivial());
    }

    #[test]
    fn batch_learning_never_marks_stale() {
        // Staleness is a property of the incremental path's ingested-days
        // counter; a batch model trained on a short window is simply what
        // the caller asked for.
        let model = SocialModel::learn(&social_store(), &config(), 1);
        assert!(!model.is_stale());
        assert!(!model.is_trivial());
        let empty = SocialModel::learn(&TraceStore::new(vec![]), &config(), 1);
        assert!(!empty.is_stale());
    }

    #[test]
    fn clustering_separates_profiles() {
        // Six P2P-dominant users and six e-mail-dominant users with solo
        // sessions: unambiguous two-cluster structure.
        let mk = |user: u32, ap: u32, day: u64, cat: AppCategory| {
            let mut volume_by_app = [Bytes::ZERO; 6];
            volume_by_app[cat.index()] = Bytes::megabytes(10);
            let base = day * 86_400 + 10 * 3_600 + user as u64 * 3_600;
            SessionRecord {
                user: UserId::new(user),
                ap: ApId::new(ap),
                controller: ControllerId::new(0),
                connect: Timestamp::from_secs(base),
                disconnect: Timestamp::from_secs(base + 1_800),
                volume_by_app,
            }
        };
        let mut records = Vec::new();
        for day in 0..3u64 {
            for u in 0..6u32 {
                records.push(mk(u, u % 3, day, AppCategory::P2p));
                records.push(mk(u + 6, 3 + u % 3, day, AppCategory::Email));
            }
        }
        let model = SocialModel::learn(&TraceStore::new(records), &config(), 3);
        let t0 = model.user_type(UserId::new(0)).unwrap();
        let t6 = model.user_type(UserId::new(6)).unwrap();
        assert_ne!(t0, t6, "P2P and e-mail users must be in different clusters");
        for u in 0..6u32 {
            assert_eq!(model.user_type(UserId::new(u)), Some(t0));
            assert_eq!(model.user_type(UserId::new(u + 6)), Some(t6));
        }
        assert_eq!(model.centroids().len(), 2);
    }

    #[test]
    fn demand_estimates_are_positive_for_active_users() {
        let model = SocialModel::learn(&social_store(), &config(), 1);
        assert!(model.estimated_demand(UserId::new(1)).as_f64() > 0.0);
        // Unseen user gets the median fallback, also positive here.
        assert!(model.estimated_demand(UserId::new(999)).as_f64() > 0.0);
    }

    #[test]
    fn type_matrix_shape_and_symmetry() {
        let model = SocialModel::learn(&social_store(), &config(), 1);
        let m = model.type_matrix();
        assert_eq!(m.k(), 2);
        for i in 0..2 {
            for j in 0..2 {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
                assert!(m.get(i, j) >= 0.0 && m.get(i, j) <= 1.0);
            }
        }
    }

    #[test]
    fn learning_is_deterministic() {
        let a = SocialModel::learn(&social_store(), &config(), 9);
        let b = SocialModel::learn(&social_store(), &config(), 9);
        assert_eq!(
            a.delta(UserId::new(1), UserId::new(2)),
            b.delta(UserId::new(1), UserId::new(2))
        );
        assert_eq!(a.type_count(), b.type_count());
    }

    #[test]
    fn temporal_features_separate_cotemporal_users() {
        // Four users, all pure web-browsing: two morning people, two night
        // people. Application-only clustering cannot split them; temporal
        // features can.
        let mk = |user: u32, day: u64, hour: u64| {
            let start = day * 86_400 + hour * 3_600;
            let mut volume_by_app = [Bytes::ZERO; 6];
            volume_by_app[AppCategory::WebBrowsing.index()] = Bytes::megabytes(10);
            SessionRecord {
                user: UserId::new(user),
                ap: ApId::new(user % 2),
                controller: ControllerId::new(0),
                connect: Timestamp::from_secs(start),
                disconnect: Timestamp::from_secs(start + 1_800),
                volume_by_app,
            }
        };
        let mut records = Vec::new();
        for day in 0..5 {
            records.push(mk(1, day, 9));
            records.push(mk(2, day, 9));
            records.push(mk(3, day, 22));
            records.push(mk(4, day, 22));
        }
        let store = TraceStore::new(records);
        let temporal_config = S3Config {
            fixed_k: Some(2),
            temporal_features: true,
            ..S3Config::default()
        };
        let model = SocialModel::learn(&store, &temporal_config, 3);
        let t1 = model.user_type(UserId::new(1)).unwrap();
        let t2 = model.user_type(UserId::new(2)).unwrap();
        let t3 = model.user_type(UserId::new(3)).unwrap();
        let t4 = model.user_type(UserId::new(4)).unwrap();
        assert_eq!(t1, t2, "morning pair together");
        assert_eq!(t3, t4, "night pair together");
        assert_ne!(t1, t3, "temporal features must split the day shifts");
    }

    #[test]
    fn type_matrix_helpers() {
        let mut m = TypeMatrix::zeros(3);
        m.set(0, 0, 0.6);
        m.set(1, 1, 0.5);
        m.set(2, 2, 0.7);
        m.set(0, 1, 0.2);
        m.set(0, 2, 0.1);
        m.set(1, 2, 0.3);
        assert!((m.diagonal_mean() - 0.6).abs() < 1e-12);
        assert!((m.off_diagonal_mean() - 0.2).abs() < 1e-12);
        assert!(m.diagonal_mean() > m.off_diagonal_mean());
        assert_eq!(TypeMatrix::zeros(0).diagonal_mean(), 0.0);
        assert_eq!(TypeMatrix::zeros(1).off_diagonal_mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "type index out of range")]
    fn type_matrix_bounds() {
        TypeMatrix::zeros(2).get(2, 0);
    }
}
