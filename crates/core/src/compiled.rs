//! The compiled social-model data plane.
//!
//! [`SocialModel`] is the *learning-side* representation: hash maps keyed
//! by [`UserId`] and [`UserPair`](s3_trace::events::UserPair), convenient
//! to build incrementally but
//! expensive to query — every `δ(u,v)` evaluation pays two-to-three
//! SipHash probes, and the selector evaluates `δ` thousands of times per
//! arrival batch (`O(batch²)` in the social-graph build plus
//! `O(clique × AP-members)` in every cost table).
//!
//! [`CompiledModel`] freezes a trained model into flat, dense storage:
//!
//! * every user the model knows anything about is **interned** to a dense
//!   `u32` (first-seen order replaced by sorted-id order, so compilation
//!   is deterministic — the `s3-trace` interner idiom applied to the
//!   model's own id space);
//! * `user_type` becomes a `Vec<u8>` and the per-user demand estimate a
//!   `Vec<f64>`, both indexed by dense id;
//! * the type matrix is a flat row-major `k × k` slice;
//! * the positive `P(L|E)` entries become a **CSR adjacency**: one sorted
//!   neighbor row per user, so the pair term of `δ` is a binary search
//!   over a short row instead of a hash probe, and the per-AP social cost
//!   `Σ_{w∈S(AP)} δ(u,w)` is a scan of the AP's member list against u's
//!   row with zero hashing and zero allocation ([`CompiledModel::slot_cost`]).
//!
//! # Determinism
//!
//! The compiled plane is **bit-identical** to the hashed plane (enforced
//! by the property suite in `tests/compiled_props.rs`):
//!
//! * [`CompiledModel::delta`] evaluates the exact expression of
//!   [`SocialModel::delta`] (`pair_term + α · type_term`) on the exact
//!   same `f64` inputs, so every δ is bit-equal;
//! * [`CompiledModel::slot_cost`] accumulates member contributions **in
//!   member order**, exactly like the hashed path's
//!   `members.iter().map(δ).sum()`. A classic two-pointer merge over
//!   sorted lists was rejected: it would reorder a floating-point sum and
//!   break the byte-identical-CSV contract (see `docs/PERF.md`);
//! * unknown users intern to the [`NO_USER`] sentinel and contribute
//!   exactly the `+0.0` the hash misses contributed.

use std::collections::HashMap;

use s3_obs::{Desc, Stability, Unit};
use s3_types::{BitsPerSec, UserId};

use crate::SocialModel;

// Compiled-plane metrics (documented in docs/METRICS.md). Counters (totals
// across all compiles), not gauges, for the same reason as
// `core.model.known_pairs`: sweep binaries compile many models from
// parallel workers and a last-write-wins gauge would break snapshot
// stability across thread counts.
static COMPILED_USERS: Desc = Desc {
    name: "core.model.compiled_users",
    help: "Users interned to dense ids by compiled social models, summed over all compiles",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static CSR_EDGES: Desc = Desc {
    name: "core.model.csr_edges",
    help:
        "Directed CSR adjacency entries across compiled models (twice the undirected known pairs)",
    unit: Unit::Count,
    stability: Stability::Stable,
};

/// Dense-id sentinel for a user the model has never seen. Every query
/// treats it as "no relations, no type, fallback demand" — exactly what
/// the hash-map misses of the uncompiled path produce.
pub const NO_USER: u32 = u32::MAX;

/// Type sentinel for a user the clustering never assigned.
const NO_TYPE: u8 = u8::MAX;

/// A [`SocialModel`] frozen into dense, allocation-free query form.
///
/// Build one with [`CompiledModel::compile`]; the selector does so once at
/// construction and serves every `select`/`select_batch` from it. All
/// queries are bit-identical to the hashed [`SocialModel`] equivalents.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    /// Sorted raw user ids; the dense id of a user is its index here.
    users: Vec<u32>,
    /// Cluster assignment per dense user ([`NO_TYPE`] when unclustered).
    user_type: Vec<u8>,
    /// Demand estimate `w(u)` in bits/s per dense user.
    demand: Vec<f64>,
    /// Fallback demand for unseen users (population median).
    fallback_demand: f64,
    /// Number of user types.
    k: usize,
    /// Flat row-major `k × k` type matrix.
    type_matrix: Vec<f64>,
    /// CSR row boundaries: user `i`'s neighbors live at
    /// `neighbors[row_start[i]..row_start[i + 1]]`.
    row_start: Vec<u32>,
    /// Concatenated neighbor rows, each sorted by dense id.
    neighbors: Vec<u32>,
    /// `P(L|E)` parallel to `neighbors`.
    pair_prob: Vec<f64>,
    /// The α applied by `delta`.
    alpha: f64,
    /// Carried over from [`SocialModel::is_trivial`].
    trivial: bool,
    /// Carried over from [`SocialModel::is_stale`].
    stale: bool,
}

impl CompiledModel {
    /// Freezes `model` into dense form. Deterministic: the same model
    /// always compiles to the same tables regardless of hash-map iteration
    /// order (users are interned in sorted-id order and CSR rows are
    /// sorted).
    ///
    /// # Panics
    ///
    /// Panics if the model has 255 or more user types (the dense type
    /// store is a `Vec<u8>`; the gap statistic chooses single digits).
    pub fn compile(model: &SocialModel) -> CompiledModel {
        let pairs = model.pair_probabilities();
        let types = model.user_types();
        let demands = model.demands();

        // Intern every user the model knows anything about, in sorted-id
        // order so dense ids are independent of hash iteration order.
        let mut users: Vec<u32> = Vec::with_capacity(types.len() + demands.len() + pairs.len() * 2);
        users.extend(types.keys().map(|u| u.raw()));
        users.extend(demands.keys().map(|u| u.raw()));
        for pair in pairs.keys() {
            users.push(pair.0.raw());
            users.push(pair.1.raw());
        }
        users.sort_unstable();
        users.dedup();
        let n = users.len();
        assert!(n < NO_USER as usize, "compiled model: dense id overflow");
        let dense = |raw: u32| -> usize {
            users
                .binary_search(&raw)
                .expect("every referenced user was collected")
        };

        let k = model.type_count();
        assert!(
            k < NO_TYPE as usize,
            "compiled model supports at most {} user types, got {k}",
            NO_TYPE - 1
        );
        let mut user_type = vec![NO_TYPE; n];
        for (&user, &t) in types {
            debug_assert!(t < k, "type index {t} out of range for k = {k}");
            user_type[dense(user.raw())] = t as u8;
        }
        let mut type_matrix = vec![0.0; k * k];
        if k > 0 {
            for (i, row) in type_matrix.chunks_mut(k).enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    *cell = model.type_matrix().get(i, j);
                }
            }
        }

        let fallback_demand = model.fallback_demand().as_f64();
        let mut demand = vec![fallback_demand; n];
        for (&user, &d) in demands {
            demand[dense(user.raw())] = d.as_f64();
        }

        // CSR over the positive pair probabilities, both directions. The
        // (row, col) keys are unique, so the unstable sort is fully
        // deterministic despite the hash-map source order.
        let mut entries: Vec<(u32, u32, f64)> = Vec::with_capacity(pairs.len() * 2);
        for (pair, &p) in pairs {
            let (a, b) = (dense(pair.0.raw()) as u32, dense(pair.1.raw()) as u32);
            entries.push((a, b, p));
            entries.push((b, a, p));
        }
        assert!(
            entries.len() < u32::MAX as usize,
            "compiled model: CSR overflow"
        );
        entries.sort_unstable_by_key(|x| (x.0, x.1));
        let mut row_start = vec![0u32; n + 1];
        for &(row, _, _) in &entries {
            row_start[row as usize + 1] += 1;
        }
        for i in 0..n {
            row_start[i + 1] += row_start[i];
        }
        let neighbors: Vec<u32> = entries.iter().map(|e| e.1).collect();
        let pair_prob: Vec<f64> = entries.iter().map(|e| e.2).collect();

        let registry = s3_obs::global();
        registry.counter(&COMPILED_USERS).add(n as u64);
        registry.counter(&CSR_EDGES).add(neighbors.len() as u64);

        CompiledModel {
            users,
            user_type,
            demand,
            fallback_demand,
            k,
            type_matrix,
            row_start,
            neighbors,
            pair_prob,
            alpha: model.alpha(),
            trivial: model.is_trivial(),
            stale: model.is_stale(),
        }
    }

    /// Number of interned users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Stored CSR adjacency entries (twice the undirected known pairs).
    pub fn csr_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of user types.
    pub fn type_count(&self) -> usize {
        self.k
    }

    /// The α this model applies in [`CompiledModel::delta`].
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Whether the source model was trivial ([`SocialModel::is_trivial`]).
    pub fn is_trivial(&self) -> bool {
        self.trivial
    }

    /// Whether the source model was stale ([`SocialModel::is_stale`]).
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// The dense id of `user`, if the model knows it (binary search over
    /// the sorted intern table — no hashing).
    pub fn dense_id(&self, user: UserId) -> Option<u32> {
        self.users.binary_search(&user.raw()).ok().map(|i| i as u32)
    }

    /// The dense id of `user`, or [`NO_USER`] when unknown.
    pub fn dense_or_unknown(&self, user: UserId) -> u32 {
        self.dense_id(user).unwrap_or(NO_USER)
    }

    /// The social relation index by [`UserId`] — bit-identical to
    /// [`SocialModel::delta`].
    pub fn delta(&self, u: UserId, v: UserId) -> f64 {
        self.delta_dense(self.dense_or_unknown(u), self.dense_or_unknown(v))
    }

    /// The social relation index by dense id. [`NO_USER`] on either side —
    /// or `i == j` — is 0, matching the hashed path's miss behavior.
    ///
    /// # Panics
    ///
    /// Panics when a non-sentinel id is out of range; dense ids must come
    /// from [`CompiledModel::dense_id`] on the same model.
    #[inline]
    pub fn delta_dense(&self, i: u32, j: u32) -> f64 {
        if i == j || i == NO_USER || j == NO_USER {
            return 0.0;
        }
        let pair_term = self.pair_term(i, j);
        let (ti, tj) = (self.user_type[i as usize], self.user_type[j as usize]);
        let type_term = if ti == NO_TYPE || tj == NO_TYPE {
            0.0
        } else {
            self.type_matrix[ti as usize * self.k + tj as usize]
        };
        // Exactly the SocialModel::delta expression, on the same inputs.
        pair_term + self.alpha * type_term
    }

    /// `P(L|E)(i, j)`: one binary search over i's sorted CSR row.
    #[inline]
    fn pair_term(&self, i: u32, j: u32) -> f64 {
        let (start, end) = self.row(i);
        match self.neighbors[start..end].binary_search(&j) {
            Ok(pos) => self.pair_prob[start + pos],
            Err(_) => 0.0,
        }
    }

    #[inline]
    fn row(&self, i: u32) -> (usize, usize) {
        (
            self.row_start[i as usize] as usize,
            self.row_start[i as usize + 1] as usize,
        )
    }

    /// The CSR neighbor row of dense user `i` as `(neighbor, P(L|E))`
    /// pairs, sorted by neighbor id.
    pub fn neighbors_of(&self, i: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let (start, end) = self.row(i);
        self.neighbors[start..end]
            .iter()
            .copied()
            .zip(self.pair_prob[start..end].iter().copied())
    }

    /// The demand estimate for dense user `i` in bits/s ([`NO_USER`] gets
    /// the population-median fallback).
    #[inline]
    pub fn demand_dense(&self, i: u32) -> f64 {
        if i == NO_USER {
            self.fallback_demand
        } else {
            self.demand[i as usize]
        }
    }

    /// The demand estimate by [`UserId`] — bit-identical to
    /// [`SocialModel::estimated_demand`].
    pub fn estimated_demand(&self, user: UserId) -> BitsPerSec {
        BitsPerSec::new(self.demand_dense(self.dense_or_unknown(user)))
    }

    /// The added social cost of placing dense user `u` on an AP whose
    /// member list is `members`: `Σ_{w∈members} δ(u, w)`, with zero
    /// hashing and zero allocation.
    ///
    /// Contributions accumulate **in member order** — bit-identical to the
    /// hashed path's `members.iter().map(|&w| delta(u, w)).sum::<f64>()`,
    /// including std's float `Sum` quirk of folding from `-0.0` (the IEEE
    /// additive identity): an empty member list yields `-0.0`, and the
    /// first member — even one contributing `+0.0`, like a [`NO_USER`]
    /// sentinel or `u` itself — flips the accumulator to `+0.0` (every δ
    /// is non-negative, so `-0.0` can never reappear).
    pub fn slot_cost(&self, u: u32, members: &[u32]) -> f64 {
        let mut cost = -0.0f64;
        if u == NO_USER {
            // Every contribution is a hash miss: +0.0 per member.
            if !members.is_empty() {
                cost += 0.0;
            }
            return cost;
        }
        let (start, end) = self.row(u);
        let row = &self.neighbors[start..end];
        let probs = &self.pair_prob[start..end];
        let tu = self.user_type[u as usize];
        if row.is_empty() && tu == NO_TYPE {
            // No pair term, no type term: an all-zero scan.
            if !members.is_empty() {
                cost += 0.0;
            }
            return cost;
        }
        for &w in members {
            let contribution = if w == u || w == NO_USER {
                0.0
            } else {
                let pair_term = match row.binary_search(&w) {
                    Ok(pos) => probs[pos],
                    Err(_) => 0.0,
                };
                let tw = self.user_type[w as usize];
                let type_term = if tu == NO_TYPE || tw == NO_TYPE {
                    0.0
                } else {
                    self.type_matrix[tu as usize * self.k + tw as usize]
                };
                pair_term + self.alpha * type_term
            };
            cost += contribution;
        }
        cost
    }

    /// Translates a [`UserId`] slice into dense ids appended to `out`
    /// (unknown users become [`NO_USER`]). The scratch-filling helper of
    /// the selector hot path.
    pub fn extend_dense(&self, users: impl IntoIterator<Item = UserId>, out: &mut Vec<u32>) {
        out.extend(users.into_iter().map(|u| self.dense_or_unknown(u)));
    }

    /// Fills `out` with the flat `c × c` pairwise δ table of `clique`
    /// (row-major, symmetric, zero diagonal): cell `i·c + j` is
    /// bit-identical to `delta_dense(clique[i], clique[j])`, but u's CSR
    /// row and type are hoisted once per row instead of re-derived per
    /// pair. Sentinel ([`NO_USER`]) and duplicate entries leave their
    /// cells at the exact `0.0` `delta_dense` returns for them.
    pub(crate) fn fill_pair_table(&self, clique: &[u32], out: &mut Vec<f64>) {
        let c = clique.len();
        out.clear();
        out.resize(c * c, 0.0);
        for i in 0..c {
            let u = clique[i];
            if u == NO_USER {
                continue;
            }
            let (start, end) = self.row(u);
            let row = &self.neighbors[start..end];
            let probs = &self.pair_prob[start..end];
            let tu = self.user_type[u as usize];
            for j in i + 1..c {
                let v = clique[j];
                if v == NO_USER || v == u {
                    continue;
                }
                let pair_term = match row.binary_search(&v) {
                    Ok(pos) => probs[pos],
                    Err(_) => 0.0,
                };
                let tv = self.user_type[v as usize];
                let type_term = if tu == NO_TYPE || tv == NO_TYPE {
                    0.0
                } else {
                    self.type_matrix[tu as usize * self.k + tv as usize]
                };
                // Exactly the delta_dense expression, on the same inputs.
                let d = pair_term + self.alpha * type_term;
                out[i * c + j] = d;
                out[j * c + i] = d;
            }
        }
    }
}

/// Compares a compiled model against its source, field by relevant field —
/// used by tests; kept here so it can see the internals.
#[doc(hidden)]
pub fn verify_against(compiled: &CompiledModel, model: &SocialModel) -> Result<(), String> {
    let types: &HashMap<UserId, usize> = model.user_types();
    for (&user, &t) in types {
        let d = compiled
            .dense_id(user)
            .ok_or_else(|| format!("typed user {user} not interned"))?;
        if compiled.user_type[d as usize] as usize != t {
            return Err(format!("type mismatch for {user}"));
        }
    }
    if compiled.csr_entries() != model.known_pairs() * 2 {
        return Err(format!(
            "CSR entries {} != 2 × known pairs {}",
            compiled.csr_entries(),
            model.known_pairs()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::S3Config;
    use s3_trace::{SessionRecord, TraceStore};
    use s3_types::{ApId, AppCategory, Bytes, ControllerId, Timestamp};

    fn social_store() -> TraceStore {
        let mut records = Vec::new();
        let mk = |user: u32, ap: u32, start: u64, end: u64, cat: AppCategory| {
            let mut volume_by_app = [Bytes::ZERO; 6];
            volume_by_app[cat.index()] = Bytes::megabytes(10);
            SessionRecord {
                user: UserId::new(user),
                ap: ApId::new(ap),
                controller: ControllerId::new(0),
                connect: Timestamp::from_secs(start),
                disconnect: Timestamp::from_secs(end),
                volume_by_app,
            }
        };
        for day in 0..10u64 {
            let base = day * 86_400 + 10 * 3_600;
            records.push(mk(1, 0, base, base + 7_200, AppCategory::P2p));
            records.push(mk(2, 0, base + 60, base + 7_230, AppCategory::P2p));
            records.push(mk(3, 1, base, base + 20_000, AppCategory::Email));
            records.push(mk(4, 0, base, base + 15_000, AppCategory::WebBrowsing));
        }
        TraceStore::new(records)
    }

    fn learned() -> (SocialModel, CompiledModel) {
        let config = S3Config {
            fixed_k: Some(2),
            ..S3Config::default()
        };
        let model = SocialModel::learn(&social_store(), &config, 1);
        let compiled = CompiledModel::compile(&model);
        (model, compiled)
    }

    #[test]
    fn delta_bit_equals_hashed_path() {
        let (model, compiled) = learned();
        for a in 0..6u32 {
            for b in 0..6u32 {
                let (u, v) = (UserId::new(a), UserId::new(b));
                assert_eq!(
                    compiled.delta(u, v).to_bits(),
                    model.delta(u, v).to_bits(),
                    "delta({u}, {v}) diverged"
                );
            }
        }
    }

    #[test]
    fn demand_bit_equals_hashed_path() {
        let (model, compiled) = learned();
        for a in [0u32, 1, 2, 3, 4, 999, u32::MAX] {
            let u = UserId::new(a);
            assert_eq!(
                compiled.estimated_demand(u).as_f64().to_bits(),
                model.estimated_demand(u).as_f64().to_bits(),
            );
        }
    }

    #[test]
    fn slot_cost_matches_member_order_sum() {
        let (model, compiled) = learned();
        let members: Vec<UserId> = [4u32, 2, 99, 1, 3].into_iter().map(UserId::new).collect();
        let mut dense = Vec::new();
        compiled.extend_dense(members.iter().copied(), &mut dense);
        for a in 1..=4u32 {
            let u = UserId::new(a);
            let hashed: f64 = members.iter().map(|&w| model.delta(u, w)).sum();
            let fast = compiled.slot_cost(compiled.dense_or_unknown(u), &dense);
            assert_eq!(fast.to_bits(), hashed.to_bits(), "slot cost for {u}");
        }
        // Unknown arriving user: all contributions are hash misses.
        let hashed: f64 = members
            .iter()
            .map(|&w| model.delta(UserId::new(500), w))
            .sum();
        assert_eq!(
            compiled.slot_cost(NO_USER, &dense).to_bits(),
            hashed.to_bits()
        );
        // Empty member list: std's float `Sum` folds from -0.0, and so do we.
        let empty: f64 = [].iter().map(|&w| model.delta(UserId::new(1), w)).sum();
        assert_eq!(empty.to_bits(), (-0.0f64).to_bits());
        assert_eq!(compiled.slot_cost(0, &[]).to_bits(), empty.to_bits());
        assert_eq!(compiled.slot_cost(NO_USER, &[]).to_bits(), empty.to_bits());
    }

    #[test]
    fn interning_is_sorted_and_invertible() {
        let (model, compiled) = learned();
        assert!(compiled.user_count() >= 4);
        let mut prev = None;
        for raw in [1u32, 2, 3, 4] {
            let d = compiled.dense_id(UserId::new(raw)).expect("known user");
            if let Some(p) = prev {
                assert!(d > p, "dense ids follow sorted raw order");
            }
            prev = Some(d);
        }
        assert_eq!(compiled.dense_id(UserId::new(12_345)), None);
        assert_eq!(compiled.dense_or_unknown(UserId::new(12_345)), NO_USER);
        verify_against(&compiled, &model).expect("compiled tables consistent");
    }

    #[test]
    fn csr_rows_are_sorted_and_symmetric() {
        let (_, compiled) = learned();
        assert!(compiled.csr_entries() > 0);
        for i in 0..compiled.user_count() as u32 {
            let row: Vec<(u32, f64)> = compiled.neighbors_of(i).collect();
            assert!(row.windows(2).all(|w| w[0].0 < w[1].0), "row {i} sorted");
            for &(j, p) in &row {
                let back = compiled
                    .neighbors_of(j)
                    .find(|&(w, _)| w == i)
                    .expect("symmetric entry");
                assert_eq!(back.1.to_bits(), p.to_bits());
            }
        }
    }

    #[test]
    fn trivial_and_stale_flags_survive_compilation() {
        let config = S3Config::default();
        let empty = SocialModel::learn(&TraceStore::new(vec![]), &config, 0);
        let compiled = CompiledModel::compile(&empty);
        assert!(compiled.is_trivial());
        assert!(!compiled.is_stale());
        assert_eq!(compiled.user_count(), 0);
        assert_eq!(compiled.csr_entries(), 0);
        assert_eq!(compiled.delta(UserId::new(1), UserId::new(2)), 0.0);
        assert_eq!(
            compiled.estimated_demand(UserId::new(1)),
            empty.estimated_demand(UserId::new(1))
        );
    }
}
