//! The S³ selector: the online AP-selection policy of Algorithm 1.
//!
//! Single arrivals take the cost path directly: the arriving user is a
//! clique of one, so the AP minimizing the added social affinity
//! `C(APᵢ) = Σ_{w∈S(APᵢ)} δ(u,w)` wins, with ∞ where the bandwidth
//! constraint breaks and the balance index breaking near-ties (which
//! degenerates to LLF when the user has no social relations — the paper's
//! explicit fallback).
//!
//! Simultaneous arrivals (class start) run the full Algorithm 1: build the
//! δ-threshold graph over the batch, peel maximum cliques, and distribute
//! each clique via [`crate::batch::assign_clique`].
//!
//! Every decision runs on the **compiled data plane** (see
//! [`crate::compiled`] and `docs/PERF.md`): the selector freezes its
//! [`SocialModel`] into a [`CompiledModel`] once at construction and keeps
//! a reusable [`Scratch`] of dense member buffers, slot states, and clique
//! working vectors — so the hot path does no hashing and, after the first
//! request warms the buffers, no allocation. The answers are bit-identical
//! to the hashed path (enforced by `tests/compiled_props.rs`).

use s3_graph::clique::{CliqueBudget, CliqueWorkspace};
use s3_graph::partition::clique_partition_in;
use s3_obs::{Desc, Stability, Unit};
use s3_wlan::selector::{
    ApSelector, ApView, ArrivalUser, DecisionMeta, LeastLoadedFirst, SelectionContext,
};

use crate::batch::{assign_clique_compiled, build_social_graph_compiled, SlotState};
use crate::compiled::CompiledModel;
use crate::{S3Config, SocialModel};

// Degradation metrics (documented in docs/METRICS.md): a selector running
// on an unusable model must be *visible*, never a silent mis-score.
static DEGRADED_MODELS: Desc = Desc {
    name: "core.selector.degraded_models",
    help: "S3 selectors constructed over a stale or trivially-empty model (LLF fallback engaged)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static DEGRADED_SELECTIONS: Desc = Desc {
    name: "core.selector.degraded_selections",
    help: "Selection requests (single or batch) answered by the LLF fallback of a degraded S3 selector",
    unit: Unit::Count,
    stability: Stability::Stable,
};

/// The S³ policy. Construct with a trained [`SocialModel`].
///
/// A model that cannot be trusted — trivially empty
/// ([`SocialModel::is_trivial`]) or stale
/// ([`SocialModel::is_stale`], i.e. built from fewer ingested days than
/// the configured look-back) — engages the **LLF fallback**: every request
/// is answered exactly like [`LeastLoadedFirst`] and counted in the
/// `core.selector.degraded_*` warning metrics, instead of panicking or
/// silently mis-scoring from a partial history. This is the paper's own
/// fallback (S³ degenerates to LLF for users without social relations)
/// promoted to a whole-model guard.
#[derive(Debug, Clone)]
pub struct S3Selector {
    model: SocialModel,
    /// The model frozen into dense query form, built once in `new`.
    compiled: CompiledModel,
    config: S3Config,
    degraded: bool,
    /// The LLF fallback policy, constructed once (degraded requests are a
    /// steady state, not an error path — they must allocate nothing).
    fallback: LeastLoadedFirst,
    scratch: Scratch,
    /// Per-user decision metadata of the most recent batch (clique index
    /// in partition order, degraded flag) — what the engine's decision
    /// trace records alongside each placement.
    last_meta: Vec<DecisionMeta>,
}

/// Reusable working memory for the selection hot path. Buffers grow to the
/// controller's AP count and the largest batch once, then every later
/// request runs allocation-free.
#[derive(Debug, Clone, Default)]
struct Scratch {
    /// Dense member ids per slot: existing associations plus arrivals
    /// already placed earlier in this batch, in association order.
    members: Vec<Vec<u32>>,
    /// Identity-free slot states fed to the distribution search.
    states: Vec<SlotState>,
    /// Dense-id translation of the current arrival batch.
    arrivals: Vec<u32>,
    /// Demand estimate per arrival, computed once and reused for both the
    /// cost tables and the projected-load updates.
    demands: Vec<f64>,
    /// Dense ids of the clique currently being distributed.
    clique: Vec<u32>,
    /// Reusable buffers for the per-batch clique extraction (adjacency,
    /// candidate, and weight rows survive across batches).
    clique_ws: CliqueWorkspace,
}

impl S3Selector {
    /// Creates the selector from a trained model, compiling it into the
    /// dense data plane ([`CompiledModel`]) the hot path runs on.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails validation (see [`S3Config::validate`]).
    pub fn new(model: SocialModel, config: S3Config) -> Self {
        config.validate();
        let degraded = model.is_trivial() || model.is_stale();
        if degraded {
            s3_obs::global().counter(&DEGRADED_MODELS).inc();
        }
        let compiled = CompiledModel::compile(&model);
        S3Selector {
            model,
            compiled,
            config,
            degraded,
            fallback: LeastLoadedFirst::new(),
            scratch: Scratch::default(),
            last_meta: Vec::new(),
        }
    }

    /// Whether the LLF fallback is engaged (stale or trivial model).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The underlying model (for inspection and experiment reporting).
    pub fn model(&self) -> &SocialModel {
        &self.model
    }

    /// The compiled view the hot path queries.
    pub fn compiled_model(&self) -> &CompiledModel {
        &self.compiled
    }

    /// The configuration in force.
    pub fn config(&self) -> &S3Config {
        &self.config
    }

    // S³ scores mutate slot membership clique by clique; the scratch holds
    // one dense member buffer per slot (association order preserved) plus
    // the identity-free SlotState rows, refilled — not reallocated — per
    // request. This replaces the per-request owned `ApSlot` collection the
    // hashed path paid for.
    fn prepare_slots(&mut self, candidates: &[ApView<'_>]) {
        let compiled = &self.compiled;
        let scratch = &mut self.scratch;
        scratch.members.resize_with(candidates.len(), Vec::new);
        scratch.states.clear();
        for (row, view) in scratch.members.iter_mut().zip(candidates) {
            row.clear();
            compiled.extend_dense(view.associated(), row);
            scratch.states.push(SlotState {
                load: view.load.as_f64(),
                capacity: view.capacity.as_f64(),
                member_count: row.len(),
            });
        }
    }
}

impl ApSelector for S3Selector {
    fn name(&self) -> &str {
        "s3"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize {
        if self.degraded {
            s3_obs::global().counter(&DEGRADED_SELECTIONS).inc();
            return self.fallback.select(ctx);
        }
        self.prepare_slots(ctx.candidates);
        let arrival = [self.compiled.dense_or_unknown(ctx.arrival.user)];
        let picks = assign_clique_compiled(
            &self.compiled,
            &arrival,
            &self.scratch.members,
            &self.scratch.states,
            &self.config,
        );
        picks[0]
    }

    fn last_batch_meta(&self) -> Option<&[DecisionMeta]> {
        Some(&self.last_meta)
    }

    fn select_batch(&mut self, users: &[ArrivalUser], candidates: &[ApView<'_>]) -> Vec<usize> {
        if users.is_empty() {
            self.last_meta.clear();
            return Vec::new();
        }
        if self.degraded {
            s3_obs::global().counter(&DEGRADED_SELECTIONS).inc();
            self.last_meta.clear();
            self.last_meta.resize(
                users.len(),
                DecisionMeta {
                    clique: None,
                    degraded: true,
                },
            );
            return self.fallback.select_batch(users, candidates);
        }
        self.prepare_slots(candidates);
        self.last_meta.clear();
        self.last_meta.resize(users.len(), DecisionMeta::default());
        let compiled = &self.compiled;
        let scratch = &mut self.scratch;
        scratch.arrivals.clear();
        scratch.demands.clear();
        for user in users {
            let dense = compiled.dense_or_unknown(user.user);
            scratch.arrivals.push(dense);
            // Demand is evaluated once per arrival and reused for both the
            // cost tables and the projected-load updates below.
            scratch.demands.push(compiled.demand_dense(dense));
        }
        let graph =
            build_social_graph_compiled(compiled, &scratch.arrivals, self.config.edge_threshold);
        // Cliques come out largest/heaviest first; isolated users trail as
        // singletons — the paper's processing order. The workspace keeps the
        // kernel's adjacency/candidate/weight buffers warm across batches.
        let cliques = clique_partition_in(&graph, CliqueBudget::default(), &mut scratch.clique_ws);

        let mut picks = vec![usize::MAX; users.len()];
        for (clique_idx, clique) in cliques.iter().enumerate() {
            scratch.clique.clear();
            for &vertex in &clique.vertices {
                scratch.clique.push(scratch.arrivals[vertex]);
            }
            let assignment = assign_clique_compiled(
                compiled,
                &scratch.clique,
                &scratch.members,
                &scratch.states,
                &self.config,
            );
            for (&vertex, &slot) in clique.vertices.iter().zip(&assignment) {
                picks[vertex] = slot;
                self.last_meta[vertex] = DecisionMeta {
                    clique: Some(clique_idx as u32),
                    degraded: false,
                };
                scratch.states[slot].load += scratch.demands[vertex];
                scratch.states[slot].member_count += 1;
                scratch.members[slot].push(scratch.arrivals[vertex]);
            }
        }
        debug_assert!(picks.iter().all(|&p| p != usize::MAX));
        picks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_trace::generator::{CampusConfig, CampusGenerator};
    use s3_trace::TraceStore;
    use s3_types::{ApId, BitsPerSec, Timestamp, UserId};
    use s3_wlan::selector::{views_of, ApCandidate, LeastLoadedFirst};
    use s3_wlan::{SimConfig, SimEngine, Topology};

    fn trained_selector() -> S3Selector {
        let campus = CampusGenerator::new(CampusConfig::tiny(), 5).generate();
        let topology = Topology::from_campus(&campus.config);
        let engine = SimEngine::new(topology, SimConfig::default());
        let bootstrap = engine.run(&campus.demands, &mut LeastLoadedFirst::new());
        let history = TraceStore::new(bootstrap.records);
        let config = S3Config {
            fixed_k: Some(4),
            ..S3Config::default()
        };
        let model = SocialModel::learn(&history, &config, 1);
        S3Selector::new(model, config)
    }

    fn candidate(ap: u32, load_mbps: f64, associated: Vec<u32>) -> ApCandidate {
        ApCandidate {
            ap: ApId::new(ap),
            load: BitsPerSec::mbps(load_mbps),
            capacity: BitsPerSec::mbps(100.0),
            associated: associated.into_iter().map(UserId::new).collect(),
        }
    }

    fn arrival(user: u32, n_candidates: usize) -> ArrivalUser {
        ArrivalUser {
            user: UserId::new(user),
            now: Timestamp::from_secs(0),
            demand_hint: BitsPerSec::mbps(1.0),
            rssi: vec![-50.0; n_candidates],
        }
    }

    #[test]
    fn untrained_model_behaves_like_load_balancer() {
        let model = SocialModel::learn(&TraceStore::new(vec![]), &S3Config::default(), 0);
        let mut s3 = S3Selector::new(model, S3Config::default());
        assert!(s3.is_degraded(), "an empty model must engage the fallback");
        let candidates = vec![candidate(0, 10.0, vec![]), candidate(1, 1.0, vec![])];
        let views = views_of(&candidates);
        let a = arrival(1, 2);
        let ctx = SelectionContext {
            arrival: &a,
            candidates: &views,
        };
        assert_eq!(s3.select(&ctx), 1, "idle AP wins on balance tie-break");
        assert_eq!(s3.name(), "s3");
    }

    #[test]
    fn trained_selector_is_not_degraded() {
        assert!(!trained_selector().is_degraded());
    }

    #[test]
    fn stale_model_falls_back_to_llf_everywhere() {
        use crate::IncrementalLearner;
        use s3_trace::{concentrated_volumes, SessionRecord};
        use s3_types::{AppCategory, Bytes, ControllerId};
        // One ingested day against the default 15-day look-back: the model
        // has real pairs but is marked stale.
        let mut records = Vec::new();
        for user in 1..=3u32 {
            records.push(SessionRecord {
                user: UserId::new(user),
                ap: ApId::new(0),
                controller: ControllerId::new(0),
                connect: Timestamp::from_secs(30_000 + user as u64),
                disconnect: Timestamp::from_secs(37_200 + user as u64 * 10),
                volume_by_app: concentrated_volumes(AppCategory::P2p, Bytes::megabytes(20)),
            });
        }
        let config = S3Config {
            fixed_k: Some(1),
            ..S3Config::default()
        };
        let mut learner = IncrementalLearner::new(config.clone(), 2);
        learner.ingest_day(&TraceStore::new(records), 0);
        let model = learner.build_model();
        assert!(model.is_stale());
        assert!(
            !model.is_trivial(),
            "the pairs exist — staleness is the issue"
        );
        let mut s3 = S3Selector::new(model, config);
        assert!(s3.is_degraded());

        // Every request must answer exactly like LLF — including batches,
        // where trusting the half-trained clique scores would mis-place.
        let candidates = vec![
            candidate(0, 5.0, vec![]),
            candidate(1, 2.0, vec![9]),
            candidate(2, 7.0, vec![]),
        ];
        let views = views_of(&candidates);
        let a = arrival(1, 3);
        let ctx = SelectionContext {
            arrival: &a,
            candidates: &views,
        };
        let mut llf = LeastLoadedFirst::new();
        assert_eq!(s3.select(&ctx), llf.select(&ctx));
        let users: Vec<ArrivalUser> = (1..=3).map(|u| arrival(u, 3)).collect();
        assert_eq!(
            s3.select_batch(&users, &views),
            llf.select_batch(&users, &views)
        );
    }

    #[test]
    fn batch_spreads_a_planted_clique() {
        // Train a model by hand via a trace where users 1..=3 co-leave
        // daily — then present them as a simultaneous batch.
        use s3_trace::SessionRecord;
        use s3_types::{AppCategory, Bytes, ControllerId};
        let mut records = Vec::new();
        for day in 0..8u64 {
            for user in 1..=3u32 {
                let base = day * 86_400 + 30_000;
                let mut volume_by_app = [Bytes::ZERO; 6];
                volume_by_app[AppCategory::P2p.index()] = Bytes::megabytes(20);
                records.push(SessionRecord {
                    user: UserId::new(user),
                    ap: ApId::new(0),
                    controller: ControllerId::new(0),
                    connect: Timestamp::from_secs(base + user as u64),
                    disconnect: Timestamp::from_secs(base + 7_200 + user as u64 * 10),
                    volume_by_app,
                });
            }
        }
        let store = TraceStore::new(records);
        let config = S3Config {
            fixed_k: Some(1),
            ..S3Config::default()
        };
        let model = SocialModel::learn(&store, &config, 2);
        assert!(
            model.delta(UserId::new(1), UserId::new(2)) > 0.3,
            "planted pair must clear the edge threshold"
        );
        let mut s3 = S3Selector::new(model, config);
        let candidates = vec![
            candidate(0, 0.0, vec![]),
            candidate(1, 0.0, vec![]),
            candidate(2, 0.0, vec![]),
        ];
        let views = views_of(&candidates);
        let users: Vec<ArrivalUser> = (1..=3).map(|u| arrival(u, 3)).collect();
        let picks = s3.select_batch(&users, &views);
        let distinct: std::collections::HashSet<usize> = picks.iter().copied().collect();
        assert_eq!(distinct.len(), 3, "clique must be spread: {picks:?}");
    }

    #[test]
    fn single_select_avoids_social_partner() {
        use s3_trace::SessionRecord;
        use s3_types::{AppCategory, Bytes, ControllerId};
        let mut records = Vec::new();
        for day in 0..8u64 {
            for user in [1u32, 2] {
                let base = day * 86_400 + 30_000;
                let mut volume_by_app = [Bytes::ZERO; 6];
                volume_by_app[AppCategory::Video.index()] = Bytes::megabytes(20);
                records.push(SessionRecord {
                    user: UserId::new(user),
                    ap: ApId::new(0),
                    controller: ControllerId::new(0),
                    connect: Timestamp::from_secs(base),
                    disconnect: Timestamp::from_secs(base + 3_600 + user as u64 * 5),
                    volume_by_app,
                });
            }
        }
        let config = S3Config {
            fixed_k: Some(1),
            ..S3Config::default()
        };
        let model = SocialModel::learn(&TraceStore::new(records), &config, 3);
        let mut s3 = S3Selector::new(model, config);
        // User 2 sits on AP 0, which is otherwise *less* loaded.
        let candidates = vec![candidate(0, 0.5, vec![2]), candidate(1, 1.0, vec![])];
        let views = views_of(&candidates);
        let a = arrival(1, 2);
        let ctx = SelectionContext {
            arrival: &a,
            candidates: &views,
        };
        assert_eq!(s3.select(&ctx), 1, "avoid the AP holding the partner");
    }

    #[test]
    fn end_to_end_run_places_every_demand() {
        let mut s3 = trained_selector();
        let campus = CampusGenerator::new(CampusConfig::tiny(), 5).generate();
        let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
        let result = engine.run(&campus.demands, &mut s3);
        assert_eq!(result.records.len(), campus.demands.len());
        assert_eq!(result.rejected, 0);
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut s3 = trained_selector();
        let candidates = vec![candidate(0, 0.0, vec![])];
        let views = views_of(&candidates);
        assert!(s3.select_batch(&[], &views).is_empty());
    }

    #[test]
    fn accessors_expose_model_and_config() {
        let s3 = trained_selector();
        assert!(s3.config().alpha > 0.0);
        let _ = s3.model().type_count();
    }
}
