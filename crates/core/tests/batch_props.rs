//! Property tests for the Algorithm-1 distribution search.

use proptest::prelude::*;

use s3_core::batch::{assign_clique, build_social_graph, ApSlot};
use s3_core::S3Config;
use s3_types::UserId;

fn slots_strategy() -> impl Strategy<Value = Vec<ApSlot>> {
    prop::collection::vec((0.0f64..5e7, prop::collection::vec(0u32..100, 0..6)), 1..6).prop_map(
        |rows| {
            rows.into_iter()
                .map(|(load, members)| ApSlot {
                    load,
                    capacity: 1e8,
                    members: members.into_iter().map(UserId::new).collect(),
                })
                .collect()
        },
    )
}

/// A deterministic pseudo-random δ in `[0, 1)` from the pair identity.
fn hash_delta(a: UserId, b: UserId) -> f64 {
    if a == b {
        return 0.0;
    }
    let (lo, hi) = (a.raw().min(b.raw()) as u64, a.raw().max(b.raw()) as u64);
    let mut h = lo.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ hi.rotate_left(31);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    (h % 1_000) as f64 / 1_000.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn assignment_is_total_and_in_range(
        slots in slots_strategy(),
        clique in prop::collection::vec(200u32..260, 0..6),
    ) {
        let clique: Vec<UserId> = clique.into_iter().map(UserId::new).collect();
        let picks = assign_clique(
            &clique,
            &slots,
            hash_delta,
            |_| 1e5,
            &S3Config::default(),
        );
        prop_assert_eq!(picks.len(), clique.len());
        prop_assert!(picks.iter().all(|&p| p < slots.len()));
    }

    #[test]
    fn beam_and_enumeration_agree_on_cost_ordering(
        slots in slots_strategy(),
        clique in prop::collection::vec(200u32..230, 1..4),
    ) {
        let clique: Vec<UserId> = clique.into_iter().map(UserId::new).collect();
        let exhaustive = assign_clique(
            &clique, &slots, hash_delta, |_| 1e5, &S3Config::default(),
        );
        let beamed = assign_clique(
            &clique, &slots, hash_delta, |_| 1e5,
            &S3Config { enumeration_limit: 0, ..S3Config::default() },
        );
        // The two searches may pick different argmins among near-ties, but
        // a wide beam over a tiny clique must cover the whole space, so the
        // social cost of both assignments must match exactly.
        let cost = |assignment: &[usize]| -> f64 {
            let mut total = 0.0;
            for (i, (&u, &slot)) in clique.iter().zip(assignment).enumerate() {
                for &w in &slots[slot].members {
                    total += hash_delta(u, w);
                }
                for (j, &prev) in assignment[..i].iter().enumerate() {
                    if prev == slot {
                        total += hash_delta(u, clique[j]);
                    }
                }
            }
            total
        };
        prop_assert!((cost(&exhaustive) - cost(&beamed)).abs() < 1e-9);
    }

    #[test]
    fn capacity_violations_are_avoided_when_possible(
        clique in prop::collection::vec(200u32..220, 1..4),
    ) {
        let clique: Vec<UserId> = clique.into_iter().map(UserId::new).collect();
        // Slot 0 is full; slot 1 is empty with ample capacity.
        let slots = vec![
            ApSlot { load: 9.99e7, capacity: 1e8, members: vec![] },
            ApSlot { load: 0.0, capacity: 1e8, members: vec![] },
        ];
        let demand = 1e6; // each user clearly overflows slot 0
        let picks = assign_clique(&clique, &slots, hash_delta, |_| demand, &S3Config::default());
        // At least one feasible distribution exists (everyone on slot 1),
        // so nobody may land on the full slot 0 unless slot 1 would also
        // overflow (it cannot: 3 users × 1 Mb/s ≪ 100 Mb/s).
        prop_assert!(picks.iter().all(|&p| p == 1), "picks {picks:?}");
    }

    #[test]
    fn social_graph_edges_match_delta_threshold(
        users in prop::collection::vec(0u32..40, 2..10),
        threshold in 0.0f64..1.0,
    ) {
        let users: Vec<UserId> = {
            let set: std::collections::BTreeSet<u32> = users.into_iter().collect();
            set.into_iter().map(UserId::new).collect()
        };
        let g = build_social_graph(&users, hash_delta, threshold);
        for i in 0..users.len() {
            for j in i + 1..users.len() {
                let expected = hash_delta(users[i], users[j]) > threshold;
                prop_assert_eq!(g.has_edge(i, j), expected);
                if expected {
                    prop_assert!((g.weight(i, j) - hash_delta(users[i], users[j])).abs() < 1e-12);
                }
            }
        }
    }
}
