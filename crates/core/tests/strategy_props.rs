//! Property tests over *every* strategy in the default registry: for
//! arbitrary demand streams each registered strategy must return valid
//! candidate indices (the engine indexes the candidate list with the pick,
//! so an invalid index aborts the run), serve every demand, and stay
//! inside the topology.

use proptest::prelude::*;

use s3_core::{strategy_registry, S3Config, SocialModel};
use s3_trace::generator::CampusConfig;
use s3_trace::{SessionDemand, TraceStore};
use s3_types::{AppCategory, BuildingId, Bytes, ControllerId, Timestamp, UserId};
use s3_wlan::{BuildContext, SimConfig, SimEngine, Topology};

fn arbitrary_demands() -> impl Strategy<Value = Vec<SessionDemand>> {
    prop::collection::vec(
        (
            0u32..30,      // user
            0usize..2,     // building
            0u64..200_000, // arrive
            60u64..20_000, // duration
            0u64..500,     // megabytes
            0usize..6,     // category
        ),
        1..50,
    )
    .prop_map(|rows| {
        let mut demands: Vec<SessionDemand> = rows
            .into_iter()
            .map(|(user, building, arrive, len, mb, cat)| {
                let mut volume_by_app = [Bytes::ZERO; 6];
                volume_by_app[AppCategory::from_index(cat).unwrap().index()] = Bytes::megabytes(mb);
                SessionDemand {
                    user: UserId::new(user),
                    building: BuildingId::new(building as u32),
                    controller: ControllerId::new(building as u32),
                    arrive: Timestamp::from_secs(arrive),
                    depart: Timestamp::from_secs(arrive + len),
                    volume_by_app,
                }
            })
            .collect();
        demands.sort_by_key(|d| (d.arrive, d.user));
        demands
    })
}

/// An S³ model trained on an empty log — structurally valid, all-default
/// social indices — so the `needs_training` entry can run over arbitrary
/// demands too.
fn empty_model() -> SocialModel {
    SocialModel::learn(&TraceStore::new(Vec::new()), &S3Config::default(), 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_registered_strategy_upholds_engine_invariants(
        demands in arbitrary_demands(),
        seed in 0u64..50,
    ) {
        let engine = SimEngine::new(
            Topology::from_campus(&CampusConfig::tiny()),
            SimConfig::default(),
        );
        let registry = strategy_registry();
        let model = empty_model();
        for entry in registry.entries() {
            let artifact = entry
                .caps()
                .needs_training
                .then_some(&model as &(dyn std::any::Any + Send + Sync));
            let mut selector = entry
                .build(&BuildContext { seed, shard: 0, threads: 1, artifact })
                .expect("every registered strategy builds");
            // `run` asserts pick < candidates.len() on every decision; an
            // out-of-range index panics here rather than mis-placing.
            let result = engine.run(&demands, selector.as_mut());
            prop_assert_eq!(
                result.records.len() + result.rejected,
                demands.len(),
                "strategy {} lost demands", entry.name()
            );
            for r in &result.records {
                prop_assert!(
                    engine.topology().aps_of_controller(r.controller).contains(&r.ap),
                    "strategy {} placed {:?} outside controller {:?}",
                    entry.name(), r.ap, r.controller
                );
            }
        }
    }
}
