//! The registry refactor must not change a single decision: for every
//! policy that predates the [`s3_core::strategy_registry`], a replay
//! through a registry-built selector must produce records identical to a
//! replay through the directly-constructed selector it replaced.

use s3_core::{strategy_registry, S3Config, S3Selector, SocialModel};
use s3_trace::generator::{CampusConfig, CampusGenerator};
use s3_trace::TraceStore;
use s3_wlan::selector::{ApSelector, LeastLoadedFirst, LeastUsers, RandomSelector, StrongestRssi};
use s3_wlan::{BuildContext, SimConfig, SimEngine, Topology};

const SEED: u64 = 42;

fn campus() -> (SimEngine, Vec<s3_trace::SessionDemand>) {
    let campus = CampusGenerator::new(CampusConfig::tiny(), SEED).generate();
    let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
    (engine, campus.demands)
}

fn registry_run(policy: &str, artifact: Option<&SocialModel>) -> Vec<s3_trace::SessionRecord> {
    let (engine, demands) = campus();
    let mut selector = strategy_registry()
        .build(
            policy,
            &BuildContext {
                seed: SEED,
                shard: 0,
                threads: 1,
                artifact: artifact.map(|m| m as &(dyn std::any::Any + Send + Sync)),
            },
        )
        .expect("registered policy builds");
    engine.run(&demands, selector.as_mut()).records
}

fn direct_run(selector: &mut dyn ApSelector) -> Vec<s3_trace::SessionRecord> {
    let (engine, demands) = campus();
    engine.run(&demands, selector).records
}

#[test]
fn llf_matches_direct_construction() {
    assert_eq!(
        registry_run("llf", None),
        direct_run(&mut LeastLoadedFirst::new())
    );
}

#[test]
fn least_users_matches_direct_construction() {
    assert_eq!(
        registry_run("least-users", None),
        direct_run(&mut LeastUsers::new())
    );
}

#[test]
fn rssi_matches_direct_construction() {
    assert_eq!(
        registry_run("rssi", None),
        direct_run(&mut StrongestRssi::new())
    );
}

#[test]
fn random_matches_direct_construction() {
    assert_eq!(
        registry_run("random", None),
        direct_run(&mut RandomSelector::new(SEED))
    );
}

#[test]
fn s3_matches_direct_construction() {
    // Train once the way the CLI does (LLF replay of the first day), then
    // compare a registry-built S³ against a hand-built one on the same
    // model clone.
    let (engine, demands) = campus();
    let history: Vec<_> = demands
        .iter()
        .filter(|d| d.arrive.day() < 1)
        .cloned()
        .collect();
    let log = TraceStore::new(engine.run(&history, &mut LeastLoadedFirst::new()).records);
    let config = S3Config {
        threads: 1,
        ..S3Config::default()
    };
    let model = SocialModel::learn(&log, &config, SEED);

    let mut direct = S3Selector::new(model.clone(), config);
    assert_eq!(registry_run("s3", Some(&model)), direct_run(&mut direct));
}
