//! Property tests pinning the compiled data plane to the hashed one.
//!
//! The whole point of [`CompiledModel`] is that it is a pure
//! representation change: over models learned from *arbitrary* traces —
//! including empty ones, single-user ones, and traces touching ids at the
//! very top of the `u32` range — every `delta` and `estimated_demand`
//! must be **bit-equal** (`f64::to_bits`) to the hashed [`SocialModel`],
//! for known, unknown, self, and overflow-id query pairs alike. Anything
//! weaker would let the byte-identical-CSV contract rot silently.

use proptest::prelude::*;

use s3_core::{CompiledModel, IncrementalLearner, S3Config, S3Selector, SocialModel};
use s3_trace::{SessionRecord, TraceStore};
use s3_types::{ApId, Bytes, ControllerId, Timestamp, UserId};

/// Raw user-id pool: a dense block plus ids at the top of the `u32` range,
/// so interning and CSR construction see overflow-adjacent ids.
fn user_id_strategy() -> impl Strategy<Value = u32> {
    // Values 24..30 fold onto u32::MAX - 0..=5 (the vendored proptest has
    // no `prop_oneof`; an explicit fold keeps the same id mix).
    (0u32..30).prop_map(|x| if x < 24 { x } else { u32::MAX - (x - 24) })
}

fn records_strategy() -> impl Strategy<Value = Vec<SessionRecord>> {
    prop::collection::vec(
        (
            user_id_strategy(),
            0u32..4,       // ap
            0u64..4,       // day
            0u64..7_200,   // connect offset within the day
            60u64..10_000, // duration
            0usize..6,     // dominant app realm
        ),
        0..40,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(user, ap, day, offset, duration, realm)| {
                let connect = day * 86_400 + 28_800 + offset;
                let mut volume_by_app = [Bytes::ZERO; 6];
                volume_by_app[realm] = Bytes::megabytes(5);
                SessionRecord {
                    user: UserId::new(user),
                    ap: ApId::new(ap),
                    controller: ControllerId::new(0),
                    connect: Timestamp::from_secs(connect),
                    disconnect: Timestamp::from_secs(connect + duration),
                    volume_by_app,
                }
            })
            .collect()
    })
}

fn config() -> S3Config {
    S3Config {
        fixed_k: Some(2),
        ..S3Config::default()
    }
}

/// Query ids: every id the trace touched, plus unknowns, plus the extremes.
fn query_ids(records: &[SessionRecord]) -> Vec<UserId> {
    let mut ids: Vec<u32> = records.iter().map(|r| r.user.raw()).collect();
    ids.extend([0, 999, 1_000_000, u32::MAX - 1, u32::MAX]);
    ids.sort_unstable();
    ids.dedup();
    ids.into_iter().map(UserId::new).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delta_bit_equals_hashed_model(records in records_strategy(), seed in 0u64..8) {
        let model = SocialModel::learn(&TraceStore::new(records.clone()), &config(), seed);
        let compiled = CompiledModel::compile(&model);
        let ids = query_ids(&records);
        for &u in &ids {
            for &v in &ids {
                // Includes self pairs (u == v) and unknown/overflow ids.
                prop_assert_eq!(
                    compiled.delta(u, v).to_bits(),
                    model.delta(u, v).to_bits(),
                    "delta({}, {}) diverged", u, v
                );
            }
        }
    }

    #[test]
    fn demand_bit_equals_hashed_model(records in records_strategy(), seed in 0u64..8) {
        let model = SocialModel::learn(&TraceStore::new(records.clone()), &config(), seed);
        let compiled = CompiledModel::compile(&model);
        for &u in &query_ids(&records) {
            prop_assert_eq!(
                compiled.estimated_demand(u).as_f64().to_bits(),
                model.estimated_demand(u).as_f64().to_bits(),
                "estimated_demand({}) diverged", u
            );
        }
    }

    #[test]
    fn slot_cost_bit_equals_member_order_sum(
        records in records_strategy(),
        members in prop::collection::vec(
            // 24..29 folds onto the unknown-id block 900..905.
            (0u32..29).prop_map(|x| if x < 24 { x } else { 900 + (x - 24) }),
            0..10,
        ),
        seed in 0u64..4,
    ) {
        let model = SocialModel::learn(&TraceStore::new(records.clone()), &config(), seed);
        let compiled = CompiledModel::compile(&model);
        let member_ids: Vec<UserId> = members.into_iter().map(UserId::new).collect();
        let mut dense = Vec::new();
        compiled.extend_dense(member_ids.iter().copied(), &mut dense);
        for &u in &query_ids(&records) {
            let hashed: f64 = member_ids.iter().map(|&w| model.delta(u, w)).sum();
            let fast = compiled.slot_cost(compiled.dense_or_unknown(u), &dense);
            prop_assert_eq!(fast.to_bits(), hashed.to_bits(), "slot cost for {}", u);
        }
    }

    #[test]
    fn compiled_size_metrics_match_model(records in records_strategy(), seed in 0u64..4) {
        let model = SocialModel::learn(&TraceStore::new(records), &config(), seed);
        let compiled = CompiledModel::compile(&model);
        prop_assert_eq!(compiled.csr_entries(), model.known_pairs() * 2);
        prop_assert_eq!(compiled.alpha().to_bits(), model.alpha().to_bits());
        prop_assert_eq!(compiled.is_trivial(), model.is_trivial());
        prop_assert_eq!(compiled.is_stale(), model.is_stale());
        prop_assert_eq!(compiled.type_count(), model.type_count());
    }
}

/// Compiling a trivial (empty) model preserves the degradation flags, and
/// the selector built over it still engages the LLF fallback — compilation
/// must never "launder" an unusable model into a trusted one.
#[test]
fn trivial_model_survives_compilation_and_keeps_llf_fallback() {
    let model = SocialModel::learn(&TraceStore::new(vec![]), &config(), 0);
    assert!(model.is_trivial());
    let compiled = CompiledModel::compile(&model);
    assert!(compiled.is_trivial());
    assert!(!compiled.is_stale());
    assert_eq!(compiled.user_count(), 0);
    assert_eq!(compiled.csr_entries(), 0);
    let selector = S3Selector::new(model, config());
    assert!(
        selector.is_degraded(),
        "trivial model must fall back to LLF"
    );
    assert!(selector.compiled_model().is_trivial());
}

/// Same for a stale model from the incremental learner: one ingested day
/// against the default 15-day look-back.
#[test]
fn stale_model_survives_compilation_and_keeps_llf_fallback() {
    let mut records = Vec::new();
    for user in 1..=3u32 {
        let mut volume_by_app = [Bytes::ZERO; 6];
        volume_by_app[0] = Bytes::megabytes(20);
        records.push(SessionRecord {
            user: UserId::new(user),
            ap: ApId::new(0),
            controller: ControllerId::new(0),
            connect: Timestamp::from_secs(30_000 + user as u64),
            disconnect: Timestamp::from_secs(37_200 + user as u64 * 10),
            volume_by_app,
        });
    }
    let config = S3Config {
        fixed_k: Some(1),
        ..S3Config::default()
    };
    let mut learner = IncrementalLearner::new(config.clone(), 2);
    learner.ingest_day(&TraceStore::new(records), 0);
    let model = learner.build_model();
    assert!(model.is_stale());
    assert!(!model.is_trivial());
    let compiled = CompiledModel::compile(&model);
    assert!(compiled.is_stale());
    assert!(!compiled.is_trivial());
    let selector = S3Selector::new(model, config);
    assert!(selector.is_degraded(), "stale model must fall back to LLF");
}
