//! Serializable point-in-time captures of a [`crate::Registry`].
//!
//! The wire formats are versioned by [`SCHEMA_VERSION`] and documented in
//! `docs/METRICS.md`. JSON is the primary format (self-describing, parsed
//! back by [`Snapshot::parse_json`] for the `s3wlan summary` subcommand);
//! CSV is a flat alternative for spreadsheet-style diffing. Both writers
//! are deterministic: metrics appear in name order and numbers format
//! identically on every platform, so two snapshots of equal registries are
//! byte-identical files.

use std::fmt::Write as _;
use std::path::Path;

use crate::json;
use crate::registry::Stability;

/// Identifier of the snapshot wire format, embedded in every file this
/// crate writes. Bump when the JSON/CSV layout changes incompatibly.
pub const SCHEMA_VERSION: &str = "s3-obs/1";

/// What kind of metric a [`MetricSnapshot`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64` total.
    Counter,
    /// Last-write-wins `f64` level.
    Gauge,
    /// Fixed-bucket `u64` distribution.
    Histogram,
}

impl MetricKind {
    /// The lowercase token used in snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    fn from_str(s: &str) -> Option<MetricKind> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// One histogram bucket: the count of observations `<= le`, exclusive of
/// lower buckets (i.e. per-bucket, not cumulative). `le: None` is the
/// overflow bucket (`le = +inf`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramBucket {
    /// Inclusive upper bound, or `None` for the overflow bucket.
    pub le: Option<u64>,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// The captured value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(f64),
    /// Histogram state.
    Histogram {
        /// Total observations.
        count: u64,
        /// Sum of observed values (wrapping `u64`).
        sum: u64,
        /// Per-bucket counts, last bucket is overflow (`le = None`).
        buckets: Vec<HistogramBucket>,
    },
}

/// One metric captured at snapshot time: descriptor fields plus value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Dot-separated metric name.
    pub name: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// Unit token (see [`crate::Unit::as_str`]).
    pub unit: String,
    /// Stability class.
    pub stability: Stability,
    /// One-line description.
    pub help: String,
    /// Captured value.
    pub value: MetricValue,
}

/// A point-in-time capture of a registry: schema version plus the metrics
/// in name order.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The wire-format version ([`SCHEMA_VERSION`] for snapshots produced
    /// by this crate).
    pub schema: String,
    /// Captured metrics, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

/// Why a snapshot could not be parsed or written.
#[derive(Debug)]
pub enum SnapshotError {
    /// The document is not valid JSON.
    Json(String),
    /// The document is valid JSON but not a valid snapshot (missing or
    /// ill-typed field).
    Schema(String),
    /// An I/O failure while reading or writing a snapshot file.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Json(msg) => write!(f, "invalid JSON: {msg}"),
            SnapshotError::Schema(msg) => write!(f, "invalid snapshot: {msg}"),
            SnapshotError::Io(err) => write!(f, "snapshot I/O error: {err}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(err: std::io::Error) -> Self {
        SnapshotError::Io(err)
    }
}

/// Formats an `f64` gauge value deterministically: integral values print
/// without a fractional part (`3` not `3.0`), everything else uses the
/// shortest round-trip form Rust's formatter produces.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Snapshot {
    /// A copy containing only [`Stability::Stable`] metrics — the set that
    /// is byte-identical across thread counts for a fixed seed. This is
    /// what `--metrics-out` writes.
    pub fn stable_only(&self) -> Snapshot {
        Snapshot {
            schema: self.schema.clone(),
            metrics: self
                .metrics
                .iter()
                .filter(|m| m.stability == Stability::Stable)
                .cloned()
                .collect(),
        }
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes to the versioned JSON format (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"");
        json::escape_into(&mut out, &self.schema);
        out.push_str("\",\n  \"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": \"");
            json::escape_into(&mut out, &m.name);
            out.push_str("\", \"kind\": \"");
            out.push_str(m.kind.as_str());
            out.push_str("\", \"unit\": \"");
            json::escape_into(&mut out, &m.unit);
            out.push_str("\", \"stability\": \"");
            out.push_str(m.stability.as_str());
            out.push_str("\", \"help\": \"");
            json::escape_into(&mut out, &m.help);
            out.push_str("\", ");
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"value\": {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"value\": {}", fmt_f64(*v));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let _ = write!(out, "\"count\": {count}, \"sum\": {sum}, \"buckets\": [");
                    for (j, b) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        match b.le {
                            Some(le) => {
                                let _ = write!(out, "{{\"le\": {le}, \"count\": {}}}", b.count);
                            }
                            None => {
                                let _ = write!(out, "{{\"le\": null, \"count\": {}}}", b.count);
                            }
                        }
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Serializes to the flat CSV format: a `schema` row, then one row per
    /// scalar field with columns `name,kind,unit,stability,field,value`.
    /// Histograms expand to `count`, `sum`, and one `le_<bound>` /
    /// `le_inf` row per bucket.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,kind,unit,stability,field,value\n");
        let _ = writeln!(out, "schema,,,,version,{}", self.schema);
        for m in &self.metrics {
            let prefix = format!(
                "{},{},{},{}",
                m.name,
                m.kind.as_str(),
                m.unit,
                m.stability.as_str()
            );
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{prefix},value,{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{prefix},value,{}", fmt_f64(*v));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let _ = writeln!(out, "{prefix},count,{count}");
                    let _ = writeln!(out, "{prefix},sum,{sum}");
                    for b in buckets {
                        match b.le {
                            Some(le) => {
                                let _ = writeln!(out, "{prefix},le_{le},{}", b.count);
                            }
                            None => {
                                let _ = writeln!(out, "{prefix},le_inf,{}", b.count);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Parses a document produced by [`Snapshot::to_json`]. Unknown schema
    /// versions and malformed metrics are rejected with
    /// [`SnapshotError::Schema`].
    pub fn parse_json(input: &str) -> Result<Snapshot, SnapshotError> {
        let doc = json::parse(input).map_err(SnapshotError::Json)?;
        let schema = doc
            .get("schema")
            .and_then(|v| v.as_str())
            .ok_or_else(|| SnapshotError::Schema("missing \"schema\" string".into()))?
            .to_string();
        if schema != SCHEMA_VERSION {
            return Err(SnapshotError::Schema(format!(
                "unsupported schema {schema:?} (this build reads {SCHEMA_VERSION:?})"
            )));
        }
        let raw_metrics = doc
            .get("metrics")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| SnapshotError::Schema("missing \"metrics\" array".into()))?;
        let mut metrics = Vec::with_capacity(raw_metrics.len());
        for raw in raw_metrics {
            metrics.push(Self::parse_metric(raw)?);
        }
        Ok(Snapshot { schema, metrics })
    }

    fn parse_metric(raw: &json::Value) -> Result<MetricSnapshot, SnapshotError> {
        let field_str = |key: &str| -> Result<String, SnapshotError> {
            raw.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| SnapshotError::Schema(format!("metric missing string {key:?}")))
        };
        let name = field_str("name")?;
        let kind_tok = field_str("kind")?;
        let kind = MetricKind::from_str(&kind_tok)
            .ok_or_else(|| SnapshotError::Schema(format!("unknown kind {kind_tok:?}")))?;
        let unit = field_str("unit")?;
        let stability = match field_str("stability")?.as_str() {
            "stable" => Stability::Stable,
            "volatile" => Stability::Volatile,
            other => {
                return Err(SnapshotError::Schema(format!(
                    "unknown stability {other:?}"
                )))
            }
        };
        let help = field_str("help")?;
        let value = match kind {
            MetricKind::Counter => {
                MetricValue::Counter(raw.get("value").and_then(|v| v.as_u64()).ok_or_else(
                    || SnapshotError::Schema(format!("counter {name:?} missing u64 value")),
                )?)
            }
            MetricKind::Gauge => {
                MetricValue::Gauge(raw.get("value").and_then(|v| v.as_f64()).ok_or_else(|| {
                    SnapshotError::Schema(format!("gauge {name:?} missing numeric value"))
                })?)
            }
            MetricKind::Histogram => {
                let count = raw.get("count").and_then(|v| v.as_u64()).ok_or_else(|| {
                    SnapshotError::Schema(format!("histogram {name:?} missing count"))
                })?;
                let sum = raw.get("sum").and_then(|v| v.as_u64()).ok_or_else(|| {
                    SnapshotError::Schema(format!("histogram {name:?} missing sum"))
                })?;
                let raw_buckets = raw.get("buckets").and_then(|v| v.as_arr()).ok_or_else(|| {
                    SnapshotError::Schema(format!("histogram {name:?} missing buckets"))
                })?;
                let mut buckets = Vec::with_capacity(raw_buckets.len());
                for rb in raw_buckets {
                    let le = match rb.get("le") {
                        Some(json::Value::Null) => None,
                        Some(v) => Some(v.as_u64().ok_or_else(|| {
                            SnapshotError::Schema(format!(
                                "histogram {name:?} bucket bound must be u64 or null"
                            ))
                        })?),
                        None => {
                            return Err(SnapshotError::Schema(format!(
                                "histogram {name:?} bucket missing le"
                            )))
                        }
                    };
                    let bucket_count =
                        rb.get("count").and_then(|v| v.as_u64()).ok_or_else(|| {
                            SnapshotError::Schema(format!(
                                "histogram {name:?} bucket missing count"
                            ))
                        })?;
                    buckets.push(HistogramBucket {
                        le,
                        count: bucket_count,
                    });
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                }
            }
        };
        Ok(MetricSnapshot {
            name,
            kind,
            unit,
            stability,
            help,
            value,
        })
    }

    /// Renders a fixed-width human-readable table (the `s3wlan summary`
    /// output). Histograms show count, sum, mean, and the approximate p50
    /// and p95 derived from bucket upper bounds.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "metrics snapshot ({})", self.schema);
        if self.metrics.is_empty() {
            out.push_str("  (no metrics recorded)\n");
            return out;
        }
        let name_w = self
            .metrics
            .iter()
            .map(|m| m.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let _ = writeln!(
            out,
            "  {:<name_w$}  {:<9}  {:<6}  {:<9}  value",
            "name", "kind", "unit", "stability"
        );
        for m in &self.metrics {
            let rendered = match &m.value {
                MetricValue::Counter(v) => format!("{v}"),
                MetricValue::Gauge(v) => fmt_f64(*v),
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    if *count == 0 {
                        "count=0".to_string()
                    } else {
                        let mean = *sum as f64 / *count as f64;
                        let p50 = percentile_bound(buckets, *count, 0.50);
                        let p95 = percentile_bound(buckets, *count, 0.95);
                        format!(
                            "count={count} sum={sum} mean={:.1} p50<={p50} p95<={p95}",
                            mean
                        )
                    }
                }
            };
            let _ = writeln!(
                out,
                "  {:<name_w$}  {:<9}  {:<6}  {:<9}  {rendered}",
                m.name,
                m.kind.as_str(),
                m.unit,
                m.stability.as_str()
            );
        }
        out
    }

    /// Writes the snapshot to `path`, choosing the format by extension:
    /// `.csv` writes [`Snapshot::to_csv`], everything else writes
    /// [`Snapshot::to_json`].
    pub fn write_to_file(&self, path: &Path) -> Result<(), SnapshotError> {
        let body = if path.extension().and_then(|e| e.to_str()) == Some("csv") {
            self.to_csv()
        } else {
            self.to_json()
        };
        std::fs::write(path, body)?;
        Ok(())
    }
}

/// The bucket upper bound at or below which `q` of the observations fall
/// ("inf" for the overflow bucket).
fn percentile_bound(buckets: &[HistogramBucket], total: u64, q: f64) -> String {
    let target = (total as f64 * q).ceil() as u64;
    let mut cumulative = 0u64;
    for b in buckets {
        cumulative += b.count;
        if cumulative >= target {
            return match b.le {
                Some(le) => le.to_string(),
                None => "inf".to_string(),
            };
        }
    }
    "inf".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Desc, HistogramDesc, Registry, Unit};

    static C: Desc = Desc {
        name: "snap.counter",
        help: "a counter with \"quotes\"",
        unit: Unit::Count,
        stability: Stability::Stable,
    };
    static G: Desc = Desc {
        name: "snap.gauge",
        help: "a gauge",
        unit: Unit::Count,
        stability: Stability::Volatile,
    };
    static H: HistogramDesc = HistogramDesc {
        name: "snap.hist",
        help: "a histogram",
        unit: Unit::Micros,
        stability: Stability::Stable,
        bounds: &[10, 100],
    };

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter(&C).add(7);
        r.gauge(&G).set(2.25);
        let h = r.histogram(&H);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        r.snapshot()
    }

    #[test]
    fn empty_registry_snapshot_round_trips() {
        let r = Registry::new();
        let snap = r.snapshot();
        assert_eq!(snap.schema, SCHEMA_VERSION);
        assert!(snap.metrics.is_empty());
        let parsed = Snapshot::parse_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
        assert!(snap.render_table().contains("no metrics recorded"));
        assert_eq!(snap.to_csv().lines().count(), 2); // header + schema row
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample();
        let json = snap.to_json();
        let parsed = Snapshot::parse_json(&json).unwrap();
        assert_eq!(parsed, snap);
        // Serialization is deterministic.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn stable_only_drops_volatile_metrics() {
        let stable = sample().stable_only();
        assert!(stable.get("snap.counter").is_some());
        assert!(stable.get("snap.hist").is_some());
        assert!(stable.get("snap.gauge").is_none());
    }

    #[test]
    fn csv_expands_histogram_buckets() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("name,kind,unit,stability,field,value\n"));
        assert!(csv.contains("schema,,,,version,s3-obs/1"));
        assert!(csv.contains("snap.counter,counter,count,stable,value,7"));
        assert!(csv.contains("snap.hist,histogram,micros,stable,count,3"));
        assert!(csv.contains("snap.hist,histogram,micros,stable,sum,555"));
        assert!(csv.contains("snap.hist,histogram,micros,stable,le_10,1"));
        assert!(csv.contains("snap.hist,histogram,micros,stable,le_100,1"));
        assert!(csv.contains("snap.hist,histogram,micros,stable,le_inf,1"));
    }

    #[test]
    fn table_summarizes_histograms() {
        let table = sample().render_table();
        assert!(table.contains("snap.hist"));
        assert!(table.contains("count=3"));
        assert!(table.contains("mean=185.0"));
        assert!(table.contains("p50<=100"));
        assert!(table.contains("p95<=inf"));
    }

    #[test]
    fn unsupported_schema_is_rejected() {
        let doc = r#"{"schema": "s3-obs/99", "metrics": []}"#;
        match Snapshot::parse_json(doc) {
            Err(SnapshotError::Schema(msg)) => assert!(msg.contains("s3-obs/99")),
            other => panic!("expected schema error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(matches!(
            Snapshot::parse_json("not json"),
            Err(SnapshotError::Json(_))
        ));
        assert!(matches!(
            Snapshot::parse_json("{}"),
            Err(SnapshotError::Schema(_))
        ));
        let missing_value = format!(
            r#"{{"schema": "{SCHEMA_VERSION}", "metrics": [{{"name": "x", "kind": "counter", "unit": "count", "stability": "stable", "help": ""}}]}}"#
        );
        assert!(matches!(
            Snapshot::parse_json(&missing_value),
            Err(SnapshotError::Schema(_))
        ));
    }

    #[test]
    fn write_to_file_picks_format_by_extension() {
        let dir = std::env::temp_dir().join("s3_obs_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = sample();
        let json_path = dir.join("m.json");
        let csv_path = dir.join("m.csv");
        snap.write_to_file(&json_path).unwrap();
        snap.write_to_file(&csv_path).unwrap();
        let json_body = std::fs::read_to_string(&json_path).unwrap();
        let csv_body = std::fs::read_to_string(&csv_path).unwrap();
        assert_eq!(json_body, snap.to_json());
        assert_eq!(csv_body, snap.to_csv());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gauge_formatting_is_deterministic() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-2.0), "-2");
        assert_eq!(fmt_f64(2.25), "2.25");
        assert_eq!(fmt_f64(0.0), "0");
    }
}
