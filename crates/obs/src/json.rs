//! Minimal JSON reader used by [`crate::Snapshot::parse_json`].
//!
//! Numbers keep their raw source token so callers can parse them as `u64`
//! without a lossy round-trip through `f64`. Only what the snapshot codec
//! needs is implemented; malformed input yields an error string, never a
//! panic.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source token.
    Num(String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number token parsed as `u64`, if this is an integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The number token parsed as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let tok = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if tok.is_empty() || tok.parse::<f64>().is_err() {
        return Err(format!("invalid number {tok:?} at byte {start}"));
    }
    Ok(Value::Num(tok.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Snapshot output never emits surrogate pairs; map
                        // lone surrogates to U+FFFD rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' in array, got {other:?}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            other => return Err(format!("expected ',' or '}}' in object, got {other:?}")),
        }
    }
}

/// Escapes `s` as the body of a JSON string literal (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, null, true], "b": {"c": "x\ny"}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Value::Null);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[3], Value::Bool(true));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn u64_precision_is_preserved() {
        let v = parse(&format!("{{\"n\": {}}}", u64::MAX)).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{3b1}";
        let mut body = String::new();
        escape_into(&mut body, nasty);
        let doc = format!("\"{body}\"");
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }
}
