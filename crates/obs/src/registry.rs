//! Metric cells (counters, gauges, histograms, span timers) and the
//! registry that owns them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::snapshot::{HistogramBucket, MetricKind, MetricSnapshot, MetricValue, Snapshot};

/// The unit a metric's values are expressed in. Purely descriptive — it is
/// carried into snapshots and `docs/METRICS.md` so readers know how to
/// interpret the numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless event or item counts.
    Count,
    /// Bytes of traffic volume.
    Bytes,
    /// Wall-clock microseconds (span timers).
    Micros,
    /// Kilobits per second (load samples).
    Kbps,
    /// 10⁻⁹ units of a dimensionless quantity (e.g. centroid movement),
    /// quantized so histograms can stay integer-valued.
    Nanos,
}

impl Unit {
    /// The lowercase token used in snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Bytes => "bytes",
            Unit::Micros => "micros",
            Unit::Kbps => "kbps",
            Unit::Nanos => "nanos",
        }
    }
}

/// Whether a metric's value is a pure function of the workload and seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// Identical for every thread count and machine given the same input
    /// and seed. Stable metrics are what `--metrics-out` writes, and CI can
    /// diff them byte-for-byte.
    Stable,
    /// Depends on wall-clock time, scheduling, or the thread count (span
    /// timers, worker-spawn counts). Excluded from stable snapshots.
    Volatile,
}

impl Stability {
    /// The lowercase token used in snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            Stability::Stable => "stable",
            Stability::Volatile => "volatile",
        }
    }
}

/// Static descriptor of a counter or gauge. Declare one `static` per
/// metric; the descriptor's address doubles as its registration identity,
/// so each name must be declared in exactly one place.
#[derive(Debug)]
pub struct Desc {
    /// Dot-separated lowercase name, `<crate area>.<subsystem>.<what>`.
    pub name: &'static str,
    /// One-line human description (carried into snapshots).
    pub help: &'static str,
    /// Value unit.
    pub unit: Unit,
    /// Stability class.
    pub stability: Stability,
}

/// Static descriptor of a histogram: a [`Desc`] plus fixed bucket bounds.
///
/// `bounds` are inclusive upper bounds, strictly increasing and non-empty;
/// an implicit overflow bucket (`le = inf`) catches everything above the
/// last bound, and values below `bounds[0]` land in the first bucket (there
/// is no separate underflow bucket — the first bound *is* the underflow
/// boundary).
#[derive(Debug)]
pub struct HistogramDesc {
    /// Dot-separated lowercase name.
    pub name: &'static str,
    /// One-line human description.
    pub help: &'static str,
    /// Value unit.
    pub unit: Unit,
    /// Stability class.
    pub stability: Stability,
    /// Inclusive upper bounds, strictly increasing, non-empty.
    pub bounds: &'static [u64],
}

/// A monotonically increasing `u64` counter. Cheap to clone (an `Arc`);
/// safe to add from any thread — `u64` addition is associative, so totals
/// are independent of scheduling.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge.
///
/// Unlike counters, concurrent `set`s race (whichever lands last wins), so
/// stable gauges must only be set from sequential sections — end-of-run
/// model sizes, configuration echoes, and the like.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge. Non-finite values are stored as `0.0` so snapshots
    /// always serialize to valid JSON.
    pub fn set(&self, v: f64) {
        let v = if v.is_finite() { v } else { 0.0 };
        self.cell.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    bounds: &'static [u64],
    /// One bucket per bound plus the trailing overflow bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket `u64` histogram. Bucket counts and the `u64` sum are all
/// plain additions, so concurrent observation from worker threads yields
/// exactly the sequential totals.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        // First bound >= v; everything above the last bound overflows.
        let idx = self.core.bounds.partition_point(|&b| b < v);
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts, one per bound plus the trailing overflow bucket
    /// (not cumulative).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// RAII wall-clock timer: records the elapsed time since construction, in
/// microseconds, into its histogram when dropped.
///
/// Obtained from [`Registry::timer`]; the backing histogram must be
/// [`Stability::Volatile`] — wall time is never reproducible.
#[derive(Debug)]
pub struct SpanTimer {
    hist: Histogram,
    start: Instant,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let micros = self.start.elapsed().as_micros();
        self.hist.observe(u64::try_from(micros).unwrap_or(u64::MAX));
    }
}

#[derive(Debug)]
enum Slot {
    Counter(&'static Desc, Counter),
    Gauge(&'static Desc, Gauge),
    Histogram(&'static HistogramDesc, Histogram),
}

impl Slot {
    fn desc_addr(&self) -> usize {
        match self {
            Slot::Counter(d, _) => *d as *const Desc as usize,
            Slot::Gauge(d, _) => *d as *const Desc as usize,
            Slot::Histogram(d, _) => *d as *const HistogramDesc as usize,
        }
    }
}

/// A set of metrics addressed by name, snapshot in name order.
///
/// The registry is thread-safe: handle lookup takes a mutex (fetch handles
/// once per operation, outside inner loops), but the handles themselves are
/// lock-free atomics. All mutation is associative `u64` addition, which is
/// what lets instrumented code run under `s3-par` without perturbing the
/// workspace's byte-identical-output guarantee.
#[derive(Debug)]
pub struct Registry {
    slots: Mutex<BTreeMap<&'static str, Slot>>,
}

impl Registry {
    /// Creates an empty registry. `const`, so registries can live in
    /// statics (see [`crate::global`]).
    pub const fn new() -> Registry {
        Registry {
            slots: Mutex::new(BTreeMap::new()),
        }
    }

    /// Returns the counter registered under `desc`, registering it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered with a different
    /// descriptor or as a different metric kind — each metric must be
    /// declared by exactly one `static` descriptor.
    pub fn counter(&self, desc: &'static Desc) -> Counter {
        let mut slots = self.slots.lock().expect("registry poisoned");
        let slot = slots.entry(desc.name).or_insert_with(|| {
            Slot::Counter(
                desc,
                Counter {
                    cell: Arc::new(AtomicU64::new(0)),
                },
            )
        });
        Self::check_identity(slot, desc.name, desc as *const Desc as usize);
        match slot {
            Slot::Counter(_, c) => c.clone(),
            _ => panic!("metric {:?} is not a counter", desc.name),
        }
    }

    /// Returns the gauge registered under `desc`, registering it on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics on descriptor or kind conflicts, as for [`Registry::counter`].
    pub fn gauge(&self, desc: &'static Desc) -> Gauge {
        let mut slots = self.slots.lock().expect("registry poisoned");
        let slot = slots.entry(desc.name).or_insert_with(|| {
            Slot::Gauge(
                desc,
                Gauge {
                    cell: Arc::new(AtomicU64::new(0f64.to_bits())),
                },
            )
        });
        Self::check_identity(slot, desc.name, desc as *const Desc as usize);
        match slot {
            Slot::Gauge(_, g) => g.clone(),
            _ => panic!("metric {:?} is not a gauge", desc.name),
        }
    }

    /// Returns the histogram registered under `desc`, registering it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics on descriptor or kind conflicts, and if `desc.bounds` is
    /// empty or not strictly increasing.
    pub fn histogram(&self, desc: &'static HistogramDesc) -> Histogram {
        assert!(
            !desc.bounds.is_empty(),
            "histogram {:?} needs at least one bucket bound",
            desc.name
        );
        assert!(
            desc.bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {:?} bounds must be strictly increasing",
            desc.name
        );
        let mut slots = self.slots.lock().expect("registry poisoned");
        let slot = slots.entry(desc.name).or_insert_with(|| {
            let buckets: Box<[AtomicU64]> =
                (0..=desc.bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Slot::Histogram(
                desc,
                Histogram {
                    core: Arc::new(HistogramCore {
                        bounds: desc.bounds,
                        buckets,
                        count: AtomicU64::new(0),
                        sum: AtomicU64::new(0),
                    }),
                },
            )
        });
        Self::check_identity(slot, desc.name, desc as *const HistogramDesc as usize);
        match slot {
            Slot::Histogram(_, h) => h.clone(),
            _ => panic!("metric {:?} is not a histogram", desc.name),
        }
    }

    /// Starts a wall-clock span over the histogram registered under `desc`
    /// (elapsed microseconds recorded on drop).
    ///
    /// # Panics
    ///
    /// Panics if `desc` is [`Stability::Stable`] — wall time is inherently
    /// volatile and must never leak into stable snapshots.
    pub fn timer(&self, desc: &'static HistogramDesc) -> SpanTimer {
        assert_eq!(
            desc.stability,
            Stability::Volatile,
            "span timer {:?} must be declared volatile: wall time is not reproducible",
            desc.name
        );
        SpanTimer {
            hist: self.histogram(desc),
            start: Instant::now(),
        }
    }

    fn check_identity(slot: &Slot, name: &str, desc_addr: usize) {
        assert_eq!(
            slot.desc_addr(),
            desc_addr,
            "metric {name:?} registered from two different descriptors; \
             declare each metric as a single static"
        );
    }

    /// Resets every registered metric to zero, keeping registrations.
    /// Intended for tests that need a clean slate within one process.
    pub fn reset(&self) {
        let slots = self.slots.lock().expect("registry poisoned");
        for slot in slots.values() {
            match slot {
                Slot::Counter(_, c) => c.cell.store(0, Ordering::Relaxed),
                Slot::Gauge(_, g) => g.cell.store(0f64.to_bits(), Ordering::Relaxed),
                Slot::Histogram(_, h) => {
                    for b in h.core.buckets.iter() {
                        b.store(0, Ordering::Relaxed);
                    }
                    h.core.count.store(0, Ordering::Relaxed);
                    h.core.sum.store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Captures the current value of every registered metric, in name
    /// order. The result is self-contained (owned strings), so it can be
    /// serialized, filtered, or compared after the registry moves on.
    pub fn snapshot(&self) -> Snapshot {
        let slots = self.slots.lock().expect("registry poisoned");
        let metrics = slots
            .values()
            .map(|slot| match slot {
                Slot::Counter(desc, c) => MetricSnapshot {
                    name: desc.name.to_string(),
                    kind: MetricKind::Counter,
                    unit: desc.unit.as_str().to_string(),
                    stability: desc.stability,
                    help: desc.help.to_string(),
                    value: MetricValue::Counter(c.get()),
                },
                Slot::Gauge(desc, g) => MetricSnapshot {
                    name: desc.name.to_string(),
                    kind: MetricKind::Gauge,
                    unit: desc.unit.as_str().to_string(),
                    stability: desc.stability,
                    help: desc.help.to_string(),
                    value: MetricValue::Gauge(g.get()),
                },
                Slot::Histogram(desc, h) => {
                    let counts = h.bucket_counts();
                    let buckets = desc
                        .bounds
                        .iter()
                        .map(|&b| Some(b))
                        .chain(std::iter::once(None))
                        .zip(counts)
                        .map(|(le, count)| HistogramBucket { le, count })
                        .collect();
                    MetricSnapshot {
                        name: desc.name.to_string(),
                        kind: MetricKind::Histogram,
                        unit: desc.unit.as_str().to_string(),
                        stability: desc.stability,
                        help: desc.help.to_string(),
                        value: MetricValue::Histogram {
                            count: h.count(),
                            sum: h.sum(),
                            buckets,
                        },
                    }
                }
            })
            .collect();
        Snapshot {
            schema: crate::SCHEMA_VERSION.to_string(),
            metrics,
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static C: Desc = Desc {
        name: "test.counter",
        help: "a counter",
        unit: Unit::Count,
        stability: Stability::Stable,
    };
    static G: Desc = Desc {
        name: "test.gauge",
        help: "a gauge",
        unit: Unit::Count,
        stability: Stability::Stable,
    };
    static H: HistogramDesc = HistogramDesc {
        name: "test.hist",
        help: "a histogram",
        unit: Unit::Count,
        stability: Stability::Stable,
        bounds: &[10, 100, 1000],
    };
    static T: HistogramDesc = HistogramDesc {
        name: "test.timer_micros",
        help: "a timer",
        unit: Unit::Micros,
        stability: Stability::Volatile,
        bounds: &[1_000, 1_000_000],
    };

    #[test]
    fn counter_accumulates() {
        let r = Registry::new();
        r.counter(&C).inc();
        r.counter(&C).add(41);
        assert_eq!(r.counter(&C).get(), 42);
    }

    #[test]
    fn gauge_last_write_wins_and_sanitizes() {
        let r = Registry::new();
        r.gauge(&G).set(1.5);
        r.gauge(&G).set(2.5);
        assert_eq!(r.gauge(&G).get(), 2.5);
        r.gauge(&G).set(f64::NAN);
        assert_eq!(r.gauge(&G).get(), 0.0);
    }

    #[test]
    fn histogram_bucketing_underflow_exact_and_overflow() {
        let r = Registry::new();
        let h = r.histogram(&H);
        h.observe(0); // below first bound -> first bucket
        h.observe(10); // exactly on a bound -> that bucket (inclusive)
        h.observe(11); // just above -> next bucket
        h.observe(1000); // last bound, inclusive
        h.observe(1001); // overflow bucket
        h.observe(u64::MAX); // extreme overflow
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), u64::MAX.wrapping_add(10 + 11 + 1000 + 1001));
    }

    #[test]
    fn histogram_sum_wraps_rather_than_panics() {
        // Saturation isn't worth a CAS loop; wrapping is documented by the
        // fetch_add semantics and unreachable for real workloads.
        let r = Registry::new();
        let h = r.histogram(&H);
        h.observe(u64::MAX);
        h.observe(2);
        assert_eq!(h.sum(), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let r = Registry::new();
        let c = r.counter(&C);
        let h = r.histogram(&H);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i % 2000);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }

    #[test]
    fn timer_records_micros_on_drop() {
        let r = Registry::new();
        {
            let _t = r.timer(&T);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let hist = r.histogram(&T);
        assert_eq!(hist.count(), 1);
        assert!(hist.sum() >= 2_000, "slept 2ms, recorded {}us", hist.sum());
    }

    #[test]
    #[should_panic(expected = "must be declared volatile")]
    fn stable_timer_panics() {
        let r = Registry::new();
        let _ = r.timer(&H);
    }

    #[test]
    #[should_panic(expected = "two different descriptors")]
    fn duplicate_name_panics() {
        static C2: Desc = Desc {
            name: "test.counter",
            help: "an impostor",
            unit: Unit::Count,
            stability: Stability::Stable,
        };
        let r = Registry::new();
        r.counter(&C).inc();
        let _ = r.counter(&C2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        static BAD: HistogramDesc = HistogramDesc {
            name: "test.bad_bounds",
            help: "",
            unit: Unit::Count,
            stability: Stability::Stable,
            bounds: &[10, 10],
        };
        let r = Registry::new();
        let _ = r.histogram(&BAD);
    }

    #[test]
    #[should_panic(expected = "at least one bucket bound")]
    fn empty_bounds_panic() {
        static EMPTY: HistogramDesc = HistogramDesc {
            name: "test.empty_bounds",
            help: "",
            unit: Unit::Count,
            stability: Stability::Stable,
            bounds: &[],
        };
        let r = Registry::new();
        let _ = r.histogram(&EMPTY);
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let r = Registry::new();
        r.counter(&C).add(7);
        r.gauge(&G).set(3.0);
        r.histogram(&H).observe(50);
        r.reset();
        assert_eq!(r.counter(&C).get(), 0);
        assert_eq!(r.gauge(&G).get(), 0.0);
        assert_eq!(r.histogram(&H).count(), 0);
        assert_eq!(r.snapshot().metrics.len(), 3);
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let r = Registry::new();
        r.histogram(&H).observe(1);
        r.counter(&C).inc();
        r.gauge(&G).set(1.0);
        let names: Vec<String> = r.snapshot().metrics.into_iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["test.counter", "test.gauge", "test.hist"]);
    }
}
