//! Instrumentation and observability for the S³ reproduction.
//!
//! Every other layer of the pipeline — trace event mining, the k-means and
//! gap-statistic fits, Algorithm 1's batch selector, the WLAN replay engine
//! — records what it did through this crate: how many session pairs were
//! scanned, how many candidate distributions were enumerated and how many
//! died on the bandwidth constraint, how many Lloyd iterations each fit
//! took, what per-AP loads looked like at every controller report. A run is
//! then *self-diagnosing*: instead of re-running binaries and diffing CSVs
//! to find out why a replay produced a given balance index, read the
//! metrics snapshot it wrote.
//!
//! # Design constraints
//!
//! The repository guarantees **bit-for-bit reproducibility**: for a fixed
//! seed every experiment binary writes byte-identical output regardless of
//! thread count (see `s3-par`). Metrics must not weaken that guarantee, so
//! this crate is built around three rules:
//!
//! 1. **Integer arithmetic only on hot paths.** Counters and histograms
//!    are `u64`; sums of `u64` are associative, so per-shard workers can
//!    add their tallies in any order and the totals still match the
//!    sequential run exactly. (Gauges hold `f64` but are only set from
//!    sequential sections.)
//! 2. **A stability class per metric.** [`Stability::Stable`] metrics are
//!    pure functions of the input and seed — identical for any thread
//!    count. [`Stability::Volatile`] metrics (wall-clock span timers,
//!    worker-spawn counts) are not, and are excluded from stable snapshots
//!    so that `--metrics-out` files diff clean across machines and thread
//!    counts.
//! 3. **Zero dependencies.** Like `s3-par`, the crate uses only `std`:
//!    atomics for cells, a mutex-guarded `BTreeMap` for the registry (so
//!    snapshots iterate in name order), and a hand-rolled JSON
//!    writer/parser for the snapshot codec.
//!
//! # Example
//!
//! ```
//! use s3_obs::{Desc, HistogramDesc, Registry, Stability, Unit};
//!
//! static PAIRS: Desc = Desc {
//!     name: "demo.pairs_scanned",
//!     help: "Session pairs examined by the demo scan",
//!     unit: Unit::Count,
//!     stability: Stability::Stable,
//! };
//! static SIZES: HistogramDesc = HistogramDesc {
//!     name: "demo.clique_size",
//!     help: "Members per assigned clique",
//!     unit: Unit::Count,
//!     stability: Stability::Stable,
//!     bounds: &[1, 2, 4, 8],
//! };
//!
//! let registry = Registry::new();
//! registry.counter(&PAIRS).add(42);
//! registry.histogram(&SIZES).observe(3);
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.metrics.len(), 2);
//! let json = snapshot.to_json();
//! let parsed = s3_obs::Snapshot::parse_json(&json).unwrap();
//! assert_eq!(parsed, snapshot);
//! ```
//!
//! Library crates record into the process-wide [`global`] registry so that
//! instrumentation needs no API changes on the instrumented paths; binaries
//! call `global().snapshot().stable_only()` at end of run and write the
//! result wherever `--metrics-out` points. The full metric inventory is
//! documented in `docs/METRICS.md` at the repository root.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod json;
mod registry;
mod snapshot;

pub use registry::{
    Counter, Desc, Gauge, Histogram, HistogramDesc, Registry, SpanTimer, Stability, Unit,
};
pub use snapshot::{
    HistogramBucket, MetricKind, MetricSnapshot, MetricValue, Snapshot, SnapshotError,
    SCHEMA_VERSION,
};

/// The process-wide registry used by the instrumented library crates.
///
/// Counters accumulate for the lifetime of the process; a binary that wants
/// a per-run snapshot should run one workload per process (every `s3wlan`
/// subcommand and every experiment binary does).
///
/// # Example
///
/// ```
/// use s3_obs::{Desc, Stability, Unit};
///
/// static RUNS: Desc = Desc {
///     name: "doc.global_example_runs",
///     help: "Times the doc example ran",
///     unit: Unit::Count,
///     stability: Stability::Stable,
/// };
/// s3_obs::global().counter(&RUNS).inc();
/// assert!(s3_obs::global().counter(&RUNS).get() >= 1);
/// ```
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}
