//! Property tests for the statistics toolkit.

use proptest::prelude::*;

use s3_stats::entropy::{entropy_bits, JointHistogram};
use s3_stats::kmeans::{fit, within_dispersion, KMeansConfig};
use s3_stats::linalg::{covariance, symmetric_eigen};
use s3_stats::summary::Summary;

proptest! {
    #[test]
    fn entropy_bounded_by_log_n(weights in prop::collection::vec(0.01f64..100.0, 1..32)) {
        let h = entropy_bits(&weights).unwrap();
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (weights.len() as f64).log2() + 1e-9);
    }

    #[test]
    fn entropy_is_scale_invariant(weights in prop::collection::vec(0.01f64..100.0, 1..16), k in 0.01f64..100.0) {
        let a = entropy_bits(&weights).unwrap();
        let scaled: Vec<f64> = weights.iter().map(|w| w * k).collect();
        let b = entropy_bits(&scaled).unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn mutual_information_bounded_by_marginals(
        counts in prop::collection::vec((0usize..4, 0usize..4), 1..200)
    ) {
        let mut hist = JointHistogram::new(4, 4).unwrap();
        for (x, y) in counts {
            hist.record(x, y);
        }
        let mi = hist.mutual_information().unwrap();
        let hx = hist.entropy_x().unwrap();
        let hy = hist.entropy_y().unwrap();
        prop_assert!(mi >= -1e-12);
        prop_assert!(mi <= hx.min(hy) + 1e-9, "mi {mi} hx {hx} hy {hy}");
        let nmi = hist.nmi().unwrap();
        prop_assert!((0.0..=1.0).contains(&nmi));
    }

    #[test]
    fn kmeans_output_shape_is_valid(
        points in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3..=3), 4..40),
        k in 1usize..4,
    ) {
        let result = fit(&points, k, &KMeansConfig::default(), 7).unwrap();
        prop_assert_eq!(result.k(), k);
        prop_assert_eq!(result.assignments.len(), points.len());
        prop_assert!(result.assignments.iter().all(|&a| a < k));
        prop_assert!(result.inertia >= 0.0);
        prop_assert!((within_dispersion(&points, &result) - result.inertia).abs() < 1e-6);
        // Every cluster is non-empty (the reseeding rule guarantees it
        // whenever k <= distinct points; with duplicates a cluster may
        // legitimately be empty only if there are fewer distinct points).
        let distinct: std::collections::BTreeSet<String> =
            points.iter().map(|p| format!("{p:?}")).collect();
        if distinct.len() >= k {
            prop_assert!(result.cluster_sizes().iter().all(|&s| s > 0));
        }
    }

    #[test]
    fn kmeans_assigns_each_point_to_nearest_centroid(
        points in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 2..=2), 6..30),
    ) {
        let result = fit(&points, 3, &KMeansConfig::default(), 11).unwrap();
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        for (p, &a) in points.iter().zip(&result.assignments) {
            let assigned = dist(p, &result.centroids[a]);
            for c in &result.centroids {
                prop_assert!(assigned <= dist(p, c) + 1e-9);
            }
        }
    }

    #[test]
    fn summary_orderings(samples in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::of(&samples).unwrap();
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= 0.0);
        let (lo, hi) = s.ci95();
        prop_assert!(lo <= s.mean() && s.mean() <= hi);
    }

    #[test]
    fn eigen_reconstructs_symmetric_matrices(
        entries in prop::collection::vec(-5.0f64..5.0, 10..=10)
    ) {
        // Build a symmetric 4x4 from 10 free entries.
        let n = 4;
        let mut m = vec![0.0; n * n];
        let mut it = entries.into_iter();
        for i in 0..n {
            for j in i..n {
                let v = it.next().unwrap();
                m[i * n + j] = v;
                m[j * n + i] = v;
            }
        }
        let e = symmetric_eigen(&m, n).unwrap();
        // Reconstruct A = Σ λ_i v_i v_iᵀ and compare.
        let mut rec = vec![0.0; n * n];
        for (lambda, vec_) in e.values.iter().zip(&e.vectors) {
            for i in 0..n {
                for j in 0..n {
                    rec[i * n + j] += lambda * vec_[i] * vec_[j];
                }
            }
        }
        for (a, b) in m.iter().zip(&rec) {
            prop_assert!((a - b).abs() < 1e-6, "reconstruction failed: {a} vs {b}");
        }
    }

    #[test]
    fn covariance_is_psd(
        points in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3..=3), 2..50)
    ) {
        let (cov, _) = covariance(&points).unwrap();
        let e = symmetric_eigen(&cov, 3).unwrap();
        for &lambda in &e.values {
            prop_assert!(lambda >= -1e-8, "covariance must be PSD, got {lambda}");
        }
    }
}
