//! Minimal dense linear algebra: symmetric eigendecomposition via cyclic
//! Jacobi rotations.
//!
//! Needed by the gap statistic's PCA-aligned reference distribution
//! (Tibshirani et al.'s "method (b)"): reference data are drawn uniformly
//! in the principal-component frame of the observed data, which handles
//! elongated clusters that an axis-aligned bounding box misrepresents.

use crate::StatsError;

/// Result of a symmetric eigendecomposition: `a = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors as rows, parallel to `values` (each row is a unit
    /// vector).
    pub vectors: Vec<Vec<f64>>,
}

/// Eigendecomposition of a symmetric matrix (row-major `n × n`) by cyclic
/// Jacobi rotations. Intended for small matrices (the profile space is
/// 6-dimensional); complexity is `O(n³)` per sweep.
///
/// # Errors
///
/// [`StatsError::BadParameter`] when the matrix is empty, non-square or
/// not symmetric (tolerance `1e-9` relative).
pub fn symmetric_eigen(matrix: &[f64], n: usize) -> Result<SymmetricEigen, StatsError> {
    if n == 0 || matrix.len() != n * n {
        return Err(StatsError::BadParameter {
            what: "symmetric_eigen",
            detail: format!("matrix of len {} is not {n}x{n}", matrix.len()),
        });
    }
    let scale = matrix.iter().fold(0.0f64, |m, &x| m.max(x.abs())).max(1.0);
    for i in 0..n {
        for j in 0..n {
            if (matrix[i * n + j] - matrix[j * n + i]).abs() > 1e-9 * scale {
                return Err(StatsError::BadParameter {
                    what: "symmetric_eigen",
                    detail: format!("matrix not symmetric at ({i},{j})"),
                });
            }
        }
    }

    let mut a = matrix.to_vec();
    // V starts as identity; rows will become eigenvectors.
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    for _sweep in 0..64 {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for p in 0..n {
            for q in p + 1..n {
                off += a[p * n + q] * a[p * n + q];
            }
        }
        if off.sqrt() <= 1e-12 * scale {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = a[p * n + q];
                if apq.abs() <= 1e-14 * scale {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation to A (both sides) and accumulate in V.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vpk = v[p * n + k];
                    let vqk = v[q * n + k];
                    v[p * n + k] = c * vpk - s * vqk;
                    v[q * n + k] = s * vpk + c * vqk;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        a[j * n + j]
            .partial_cmp(&a[i * n + i])
            .expect("finite eigenvalues")
    });
    let values: Vec<f64> = order.iter().map(|&i| a[i * n + i]).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&i| (0..n).map(|k| v[i * n + k]).collect())
        .collect();
    Ok(SymmetricEigen { values, vectors })
}

/// Sample covariance matrix (row-major `d × d`) and mean of a point set.
///
/// # Errors
///
/// [`StatsError::EmptyInput`] for an empty set.
pub fn covariance(points: &[Vec<f64>]) -> Result<(Vec<f64>, Vec<f64>), StatsError> {
    if points.is_empty() {
        return Err(StatsError::EmptyInput { what: "covariance" });
    }
    let d = points[0].len();
    let n = points.len() as f64;
    let mut mean = vec![0.0; d];
    for p in points {
        for (m, &x) in mean.iter_mut().zip(p) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut cov = vec![0.0; d * d];
    for p in points {
        for i in 0..d {
            for j in 0..d {
                cov[i * d + j] += (p[i] - mean[i]) * (p[j] - mean[j]);
            }
        }
    }
    let denom = (n - 1.0).max(1.0);
    for c in &mut cov {
        *c /= denom;
    }
    Ok((cov, mean))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul_vec(m: &[f64], n: usize, x: &[f64]) -> Vec<f64> {
        (0..n)
            .map(|i| (0..n).map(|j| m[i * n + j] * x[j]).sum())
            .collect()
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let m = vec![3.0, 0.0, 0.0, 1.0];
        let e = symmetric_eigen(&m, 2).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        assert!((e.vectors[0][0].abs() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1), (1,-1).
        let m = vec![2.0, 1.0, 1.0, 2.0];
        let e = symmetric_eigen(&m, 2).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        let v0 = &e.vectors[0];
        assert!((v0[0].abs() - v0[1].abs()).abs() < 1e-8);
    }

    #[test]
    fn eigen_equation_holds() {
        // A random-ish symmetric 4x4.
        let m = vec![
            4.0, 1.0, -2.0, 0.5, //
            1.0, 3.0, 0.0, 1.5, //
            -2.0, 0.0, 5.0, -1.0, //
            0.5, 1.5, -1.0, 2.0,
        ];
        let e = symmetric_eigen(&m, 4).unwrap();
        for (lambda, vec_) in e.values.iter().zip(&e.vectors) {
            let av = matmul_vec(&m, 4, vec_);
            for (a, b) in av.iter().zip(vec_) {
                assert!((a - lambda * b).abs() < 1e-8, "Av != λv");
            }
            let norm: f64 = vec_.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-8);
        }
        // Eigenvalues descending.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(symmetric_eigen(&[], 0).is_err());
        assert!(symmetric_eigen(&[1.0, 2.0, 3.0], 2).is_err());
        let asym = vec![1.0, 2.0, 3.0, 4.0];
        assert!(symmetric_eigen(&asym, 2).is_err());
    }

    #[test]
    fn covariance_of_correlated_points() {
        let points = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
        ];
        let (cov, mean) = covariance(&points).unwrap();
        assert_eq!(mean, vec![1.5, 1.5]);
        // Perfectly correlated: cov = [[v, v], [v, v]] with v = 5/3.
        let v = 5.0 / 3.0;
        for &c in &cov {
            assert!((c - v).abs() < 1e-10);
        }
        // Its top eigenvector is the diagonal.
        let e = symmetric_eigen(&cov, 2).unwrap();
        assert!((e.values[0] - 2.0 * v).abs() < 1e-9);
        assert!(e.values[1].abs() < 1e-9);
    }

    #[test]
    fn covariance_rejects_empty() {
        assert!(covariance(&[]).is_err());
    }
}
