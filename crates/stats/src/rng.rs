//! Seedable samplers for the synthetic trace generator.
//!
//! The sanctioned dependency set contains `rand` but not `rand_distr`, so
//! the handful of distributions the generator needs are implemented here:
//! normal (Box–Muller), log-normal, exponential (inversion), Poisson
//! (Knuth / normal approximation), Zipf (rejection-free inverse CDF over a
//! finite support) and a symmetric Dirichlet for perturbing application
//! profiles on the simplex.
//!
//! Every sampler is a plain function of `(&mut impl Rng, params)` so callers
//! thread one seeded [`rand::rngs::StdRng`] through everything and stay
//! reproducible.

use rand::RngExt;

/// Draws a standard normal via the Box–Muller transform.
pub fn standard_normal<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0,1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws `N(mean, sd²)`.
///
/// # Panics
///
/// Panics if `sd` is negative or either parameter is non-finite.
pub fn normal<R: RngExt + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    assert!(
        mean.is_finite() && sd.is_finite() && sd >= 0.0,
        "bad normal params"
    );
    mean + sd * standard_normal(rng)
}

/// Draws a normal truncated to `[lo, hi]` by resampling (falls back to
/// clamping after 64 rejections so pathological bounds cannot spin).
///
/// # Panics
///
/// Panics if `lo > hi` or parameters are non-finite.
pub fn truncated_normal<R: RngExt + ?Sized>(
    rng: &mut R,
    mean: f64,
    sd: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(lo <= hi, "truncated_normal: lo {lo} > hi {hi}");
    for _ in 0..64 {
        let x = normal(rng, mean, sd);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    normal(rng, mean, sd).clamp(lo, hi)
}

/// Draws `LogNormal(mu, sigma²)` — i.e. `exp(N(mu, sigma²))`. Heavy-tailed
/// session traffic volumes use this.
///
/// # Panics
///
/// Panics under the same conditions as [`normal`].
pub fn log_normal<R: RngExt + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draws `Exp(rate)` by inversion. Inter-arrival times use this.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
pub fn exponential<R: RngExt + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "exponential rate must be > 0"
    );
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / rate
}

/// Draws `Poisson(lambda)`: Knuth's product method below λ = 30, a rounded
/// clamped normal approximation above (adequate for workload counts).
///
/// # Panics
///
/// Panics if `lambda` is negative or non-finite.
pub fn poisson<R: RngExt + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "poisson lambda must be >= 0"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = normal(rng, lambda, lambda.sqrt());
        x.round().max(0.0) as u64
    }
}

/// Draws from a Zipf distribution over `{0, …, n−1}` with exponent `s`
/// (rank 0 is the most likely). Used to pick "popular" APs and groups.
///
/// # Panics
///
/// Panics if `n == 0` or `s` is negative/non-finite.
pub fn zipf<R: RngExt + ?Sized>(rng: &mut R, n: usize, s: f64) -> usize {
    assert!(n > 0, "zipf support must be non-empty");
    assert!(s.is_finite() && s >= 0.0, "zipf exponent must be >= 0");
    // Finite support: direct inverse-CDF over precomputable weights would
    // allocate; for the generator's n (≤ a few hundred) a linear scan of the
    // running sum is fast enough and allocation-free.
    let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
    let mut target = rng.random::<f64>() * norm;
    for k in 1..=n {
        let w = (k as f64).powf(-s);
        if target < w {
            return k - 1;
        }
        target -= w;
    }
    n - 1
}

/// Precomputed Zipf weights for repeated draws over the same `(n, s)`.
///
/// [`zipf`] recomputes `k^-s` for every rank on every draw; at a thousand
/// buildings that is a thousand `powf` calls per sample and dominates trace
/// generation. The cache pays the `powf` cost once and then replays the
/// *identical* running-sum scan — same weights, same subtraction order, same
/// single uniform draw — so `sample` is bit-for-bit equal to `zipf` with the
/// same RNG state.
#[derive(Debug, Clone)]
pub struct ZipfCache {
    weights: Vec<f64>,
    norm: f64,
}

impl ZipfCache {
    /// Precomputes weights for a Zipf over `{0, …, n−1}` with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`zipf`].
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf support must be non-empty");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be >= 0");
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        let norm = weights.iter().sum();
        ZipfCache { weights, norm }
    }

    /// Draws a rank; bit-identical to `zipf(rng, n, s)` at equal RNG state.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        let mut target = rng.random::<f64>() * self.norm;
        for (i, &w) in self.weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        self.weights.len() - 1
    }
}

/// Draws a symmetric Dirichlet(α) sample of dimension `dim` via normalized
/// Gamma(α, 1) draws (Marsaglia–Tsang for α ≥ 1, boosting for α < 1).
/// Perturbs archetype profiles into per-user profiles on the simplex.
///
/// # Panics
///
/// Panics if `dim == 0` or `alpha` is not strictly positive and finite.
pub fn dirichlet_symmetric<R: RngExt + ?Sized>(rng: &mut R, dim: usize, alpha: f64) -> Vec<f64> {
    assert!(dim > 0, "dirichlet dimension must be positive");
    assert!(
        alpha.is_finite() && alpha > 0.0,
        "dirichlet alpha must be > 0"
    );
    let mut draws: Vec<f64> = (0..dim).map(|_| gamma(rng, alpha)).collect();
    let total: f64 = draws.iter().sum();
    if total <= 0.0 {
        // Numerically possible only for tiny alpha; fall back to uniform.
        return vec![1.0 / dim as f64; dim];
    }
    for d in &mut draws {
        *d /= total;
    }
    draws
}

/// Draws `Gamma(shape, 1)` (Marsaglia–Tsang squeeze method).
///
/// # Panics
///
/// Panics if `shape` is not strictly positive and finite.
pub fn gamma<R: RngExt + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape.is_finite() && shape > 0.0, "gamma shape must be > 0");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
        let u: f64 = 1.0 - rng.random::<f64>();
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = 1.0 - rng.random::<f64>();
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Returns true with probability `p` (clamped to `[0,1]`).
pub fn bernoulli<R: RngExt + ?Sized>(rng: &mut R, p: f64) -> bool {
    let p = if p.is_finite() {
        p.clamp(0.0, 1.0)
    } else {
        0.0
    };
    rng.random::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(1);
        let samples: Vec<f64> = (0..50_000).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut r = rng(2);
        for _ in 0..10_000 {
            let x = truncated_normal(&mut r, 0.0, 5.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng(3);
        let samples: Vec<f64> = (0..50_000).map(|_| exponential(&mut r, 4.0)).collect();
        let (mean, _) = moments(&samples);
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert!(samples.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn poisson_small_lambda() {
        let mut r = rng(4);
        let samples: Vec<f64> = (0..50_000).map(|_| poisson(&mut r, 3.5) as f64).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
        assert!((var - 3.5).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_branch() {
        let mut r = rng(5);
        let samples: Vec<f64> = (0..20_000).map(|_| poisson(&mut r, 200.0) as f64).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 200.0).abs() < 1.0, "mean {mean}");
        assert!((var - 200.0).abs() < 10.0, "var {var}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut r = rng(6);
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn zipf_is_rank_ordered() {
        let mut r = rng(7);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[zipf(&mut r, 5, 1.2)] += 1;
        }
        for w in counts.windows(2) {
            assert!(w[0] > w[1], "zipf counts not decreasing: {counts:?}");
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let mut r = rng(8);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[zipf(&mut r, 4, 0.0)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "{counts:?}");
        }
    }

    #[test]
    fn dirichlet_on_simplex() {
        let mut r = rng(9);
        for alpha in [0.3, 1.0, 8.0] {
            let x = dirichlet_symmetric(&mut r, 6, alpha);
            assert_eq!(x.len(), 6);
            assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(x.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn dirichlet_concentration() {
        // Large alpha → near-uniform; small alpha → concentrated.
        let mut r = rng(10);
        let tight: f64 = (0..200)
            .map(|_| {
                let x = dirichlet_symmetric(&mut r, 6, 50.0);
                x.iter().map(|v| (v - 1.0 / 6.0).abs()).sum::<f64>()
            })
            .sum::<f64>()
            / 200.0;
        let loose: f64 = (0..200)
            .map(|_| {
                let x = dirichlet_symmetric(&mut r, 6, 0.2);
                x.iter().map(|v| (v - 1.0 / 6.0).abs()).sum::<f64>()
            })
            .sum::<f64>()
            / 200.0;
        assert!(tight < loose, "tight {tight} loose {loose}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut r = rng(11);
        for shape in [0.5, 1.0, 4.0] {
            let samples: Vec<f64> = (0..30_000).map(|_| gamma(&mut r, shape)).collect();
            let (mean, _) = moments(&samples);
            assert!(
                (mean - shape).abs() < 0.08 * shape.max(1.0),
                "shape {shape} mean {mean}"
            );
        }
    }

    #[test]
    fn log_normal_positive() {
        let mut r = rng(12);
        for _ in 0..1_000 {
            assert!(log_normal(&mut r, 0.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut r = rng(13);
        assert!(!bernoulli(&mut r, 0.0));
        assert!(bernoulli(&mut r, 1.0));
        assert!(!bernoulli(&mut r, f64::NAN));
        let hits = (0..10_000).filter(|_| bernoulli(&mut r, 0.3)).count();
        assert!((hits as f64 - 3_000.0).abs() < 300.0);
    }

    #[test]
    #[should_panic(expected = "exponential rate must be > 0")]
    fn exponential_rejects_zero_rate() {
        let mut r = rng(14);
        let _ = exponential(&mut r, 0.0);
    }

    #[test]
    #[should_panic(expected = "zipf support must be non-empty")]
    fn zipf_rejects_empty_support() {
        let mut r = rng(15);
        let _ = zipf(&mut r, 0, 1.0);
    }

    #[test]
    fn zipf_cache_is_bit_identical_to_zipf() {
        for (n, s) in [(1, 0.5), (5, 1.2), (64, 0.0), (1_250, 0.8)] {
            let cache = ZipfCache::new(n, s);
            let mut a = rng(16);
            let mut b = rng(16);
            for _ in 0..5_000 {
                assert_eq!(cache.sample(&mut a), zipf(&mut b, n, s));
            }
        }
    }
}
