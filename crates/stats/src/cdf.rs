//! Empirical distribution functions, quantiles and histograms.
//!
//! Figures 2, 3 and 5 of the paper are all CDF plots; [`Ecdf`] produces the
//! exact step function and evenly sampled curves ready for CSV output.

use crate::StatsError;

/// An empirical CDF over a finite sample.
///
/// Construction sorts (O(n log n)); evaluation is a binary search (O(log n)).
///
/// # Example
/// ```
/// # use s3_stats::cdf::Ecdf;
/// let cdf = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0])?;
/// assert_eq!(cdf.eval(0.0), 0.0);
/// assert_eq!(cdf.eval(2.0), 0.75);
/// assert_eq!(cdf.eval(9.0), 1.0);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// # Ok::<(), s3_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from a sample, taking ownership of the buffer.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] for an empty sample;
    /// [`StatsError::InvalidSample`] for NaN/∞ entries.
    pub fn new(mut samples: Vec<f64>) -> Result<Self, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::EmptyInput { what: "ecdf" });
        }
        for (index, &x) in samples.iter().enumerate() {
            if !x.is_finite() {
                return Err(StatsError::InvalidSample {
                    what: "ecdf",
                    index,
                });
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ok(Ecdf { sorted: samples })
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false — construction rejects empty samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `P(X ≤ x)`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile with the inverted-CDF (type-1) definition: the
    /// smallest sample `v` with `P(X ≤ v) ≥ q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of [0,1]: {q}");
        if q == 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let rank = (q * n as f64).ceil() as usize;
        self.sorted[rank.clamp(1, n) - 1]
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Samples the CDF curve at `points` evenly spaced x-values spanning
    /// `[min, max]`, returning `(x, F(x))` pairs — the series a figure plots.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least 2 curve points");
        let (lo, hi) = (self.min(), self.max());
        let span = hi - lo;
        (0..points)
            .map(|i| {
                let x = if span == 0.0 {
                    lo
                } else {
                    lo + span * i as f64 / (points - 1) as f64
                };
                (x, self.eval(x))
            })
            .collect()
    }

    /// Fraction of samples lying strictly below `x` — convenience for the
    /// "share of time the index is < 0.5" readings quoted in the paper.
    pub fn fraction_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }
}

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    /// Samples that fell outside `[lo, hi)`.
    outliers: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// [`StatsError::BadParameter`] if `bins == 0`, bounds are non-finite, or
    /// `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(StatsError::BadParameter {
                what: "histogram",
                detail: format!("invalid bounds [{lo}, {hi}) with {bins} bins"),
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            outliers: 0,
        })
    }

    /// Adds one sample. Non-finite samples count as outliers.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if !x.is_finite() || x < self.lo || x >= self.hi {
            self.outliers += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples added (including outliers).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples that fell outside the range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// `(bin_center, density)` pairs normalized so the in-range mass
    /// integrates to the in-range fraction.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let denom = self.total.max(1) as f64 * width;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c as f64 / denom))
            .collect()
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_step_values() {
        let cdf = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]).unwrap();
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(1.5), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(3.0), 1.0);
    }

    #[test]
    fn ecdf_rejects_empty_and_nan() {
        assert!(matches!(
            Ecdf::new(vec![]),
            Err(StatsError::EmptyInput { .. })
        ));
        assert!(matches!(
            Ecdf::new(vec![1.0, f64::NAN]),
            Err(StatsError::InvalidSample { index: 1, .. })
        ));
    }

    #[test]
    fn quantiles() {
        let cdf = Ecdf::new((1..=10).map(f64::from).collect()).unwrap();
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.1), 1.0);
        assert_eq!(cdf.quantile(0.5), 5.0);
        assert_eq!(cdf.quantile(1.0), 10.0);
        assert_eq!(cdf.min(), 1.0);
        assert_eq!(cdf.max(), 10.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of [0,1]")]
    fn quantile_out_of_range_panics() {
        let cdf = Ecdf::new(vec![1.0]).unwrap();
        let _ = cdf.quantile(1.5);
    }

    #[test]
    fn curve_is_monotone() {
        let cdf = Ecdf::new(vec![0.2, 0.4, 0.9, 0.95, 0.5]).unwrap();
        let curve = cdf.curve(20);
        assert_eq!(curve.len(), 20);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be non-decreasing");
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn curve_handles_constant_sample() {
        let cdf = Ecdf::new(vec![2.0, 2.0]).unwrap();
        let curve = cdf.curve(3);
        assert!(curve.iter().all(|&(x, f)| x == 2.0 && f == 1.0));
    }

    #[test]
    fn fraction_below_is_strict() {
        let cdf = Ecdf::new(vec![0.5, 0.5, 0.7]).unwrap();
        assert!((cdf.fraction_below(0.5) - 0.0).abs() < 1e-12);
        assert!((cdf.fraction_below(0.6) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.extend([0.1, 0.3, 0.3, 0.9, 1.5, -0.2, f64::NAN]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.counts(), &[1, 2, 0, 1]);
    }

    #[test]
    fn histogram_upper_edge_goes_to_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(0.999999999);
        assert_eq!(h.counts(), &[0, 1]);
    }

    #[test]
    fn histogram_rejects_bad_bounds() {
        assert!(Histogram::new(1.0, 0.0, 3).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 3).is_err());
    }

    #[test]
    fn density_sums_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 2.0, 4).unwrap();
        h.extend([0.1, 0.6, 1.1, 1.6, 5.0]);
        let width = 0.5;
        let mass: f64 = h.density().iter().map(|&(_, d)| d * width).sum();
        assert!((mass - 0.8).abs() < 1e-12);
    }
}
