//! The balance index of the paper (Section III-B) and derived series.
//!
//! Given `n` APs with throughputs `T₁…Tₙ`, the balance index is the
//! Chiu–Jain fairness index
//!
//! ```text
//! B = (Σᵢ Tᵢ)² / (n · Σᵢ Tᵢ²)   ∈ [1/n, 1]
//! ```
//!
//! and the *normalized* balance index rescales it onto `[0, 1]`:
//!
//! ```text
//! B̂ = (B − 1/n) / (1 − 1/n)
//! ```
//!
//! Fig. 3 additionally studies the *variance of balance index* over
//! consecutive sub-periods, `Sᵢ = (βᵢ − βᵢ₋₁)/βᵢ₋₁`; [`variance_series`]
//! computes that relative-change series and [`variance_of_balance`] its
//! variance summary.

use crate::StatsError;

fn validate(what: &'static str, loads: &[f64]) -> Result<(), StatsError> {
    if loads.is_empty() {
        return Err(StatsError::EmptyInput { what });
    }
    for (index, &x) in loads.iter().enumerate() {
        if !x.is_finite() || x < 0.0 {
            return Err(StatsError::InvalidSample { what, index });
        }
    }
    Ok(())
}

/// The Chiu–Jain balance index `B = (Σ Tᵢ)² / (n Σ Tᵢ²)` over per-AP loads.
///
/// All-zero load is defined as perfectly balanced (`B = 1`): an idle domain
/// is not unbalanced, and this matches how the paper treats empty off-peak
/// bins.
///
/// # Errors
///
/// [`StatsError::EmptyInput`] for an empty slice;
/// [`StatsError::InvalidSample`] if any load is negative or non-finite.
///
/// # Example
/// ```
/// # use s3_stats::balance::balance_index;
/// let b = balance_index(&[4.0, 4.0, 0.0, 0.0])?;
/// assert!((b - 0.5).abs() < 1e-12);
/// # Ok::<(), s3_stats::StatsError>(())
/// ```
pub fn balance_index(loads: &[f64]) -> Result<f64, StatsError> {
    validate("balance_index", loads)?;
    let sum: f64 = loads.iter().sum();
    if sum == 0.0 {
        return Ok(1.0);
    }
    let sum_sq: f64 = loads.iter().map(|x| x * x).sum();
    Ok(sum * sum / (loads.len() as f64 * sum_sq))
}

/// The normalized balance index `B̂ = (B − 1/n)/(1 − 1/n) ∈ [0, 1]`.
///
/// For a single AP (`n = 1`) the index is defined as 1: one AP is trivially
/// balanced.
///
/// # Errors
///
/// Same conditions as [`balance_index`].
pub fn normalized_balance_index(loads: &[f64]) -> Result<f64, StatsError> {
    let b = balance_index(loads)?;
    let n = loads.len() as f64;
    if loads.len() == 1 {
        return Ok(1.0);
    }
    let inv_n = 1.0 / n;
    // Clamp tiny negative excursions from floating-point noise.
    Ok(((b - inv_n) / (1.0 - inv_n)).clamp(0.0, 1.0))
}

/// The relative-change series of Fig. 3: `Sᵢ = (βᵢ − βᵢ₋₁)/βᵢ₋₁` for a
/// sequence of per-sub-period balance indexes `β₁ … βₙ`.
///
/// Sub-periods whose predecessor index is zero are skipped (no relative
/// change is defined there).
///
/// # Errors
///
/// [`StatsError::EmptyInput`] if fewer than two indexes are supplied.
pub fn variance_series(betas: &[f64]) -> Result<Vec<f64>, StatsError> {
    if betas.len() < 2 {
        return Err(StatsError::EmptyInput {
            what: "variance_series",
        });
    }
    let mut out = Vec::with_capacity(betas.len() - 1);
    for w in betas.windows(2) {
        if w[0] > 0.0 {
            out.push((w[1] - w[0]) / w[0]);
        }
    }
    Ok(out)
}

/// Variance of the per-sub-period balance indexes — the scalar `S` whose CDF
/// the paper plots in Fig. 3 per (time period, controller).
///
/// This is the population variance of the relative-change series from
/// [`variance_series`]. Returns 0 when the series has fewer than two usable
/// entries.
///
/// # Errors
///
/// Same conditions as [`variance_series`].
pub fn variance_of_balance(betas: &[f64]) -> Result<f64, StatsError> {
    let series = variance_series(betas)?;
    if series.len() < 2 {
        return Ok(0.0);
    }
    let n = series.len() as f64;
    let mean = series.iter().sum::<f64>() / n;
    Ok(series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n)
}

/// Balance index over integer user counts (Fig. 4 plots `β_user` next to
/// `β_traffic`); convenience wrapper that casts to `f64`.
///
/// # Errors
///
/// Same conditions as [`balance_index`].
pub fn user_count_balance_index(counts: &[u32]) -> Result<f64, StatsError> {
    let loads: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    normalized_balance_index(&loads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_even_is_one() {
        assert!((balance_index(&[3.0; 7]).unwrap() - 1.0).abs() < 1e-12);
        assert!((normalized_balance_index(&[3.0; 7]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_concentrated_hits_lower_bound() {
        let n = 5;
        let mut loads = vec![0.0; n];
        loads[2] = 9.0;
        let b = balance_index(&loads).unwrap();
        assert!((b - 1.0 / n as f64).abs() < 1e-12);
        assert!(normalized_balance_index(&loads).unwrap().abs() < 1e-12);
    }

    #[test]
    fn all_zero_is_balanced() {
        assert_eq!(balance_index(&[0.0, 0.0, 0.0]).unwrap(), 1.0);
        assert_eq!(normalized_balance_index(&[0.0, 0.0]).unwrap(), 1.0);
    }

    #[test]
    fn single_ap_is_balanced() {
        assert_eq!(balance_index(&[42.0]).unwrap(), 1.0);
        assert_eq!(normalized_balance_index(&[42.0]).unwrap(), 1.0);
    }

    #[test]
    fn scale_invariance() {
        let a = balance_index(&[1.0, 2.0, 3.0]).unwrap();
        let b = balance_index(&[10.0, 20.0, 30.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(matches!(
            balance_index(&[]),
            Err(StatsError::EmptyInput { .. })
        ));
        assert!(matches!(
            balance_index(&[1.0, -2.0]),
            Err(StatsError::InvalidSample { index: 1, .. })
        ));
        assert!(matches!(
            balance_index(&[f64::NAN]),
            Err(StatsError::InvalidSample { index: 0, .. })
        ));
    }

    #[test]
    fn known_two_ap_value() {
        // T = (1, 3): B = 16 / (2 * 10) = 0.8; normalized = (0.8-0.5)/0.5 = 0.6
        let b = balance_index(&[1.0, 3.0]).unwrap();
        assert!((b - 0.8).abs() < 1e-12);
        let nb = normalized_balance_index(&[1.0, 3.0]).unwrap();
        assert!((nb - 0.6).abs() < 1e-12);
    }

    #[test]
    fn variance_series_relative_changes() {
        let s = variance_series(&[0.5, 0.55, 0.44]).unwrap();
        assert_eq!(s.len(), 2);
        assert!((s[0] - 0.1).abs() < 1e-12);
        assert!((s[1] - (0.44 - 0.55) / 0.55).abs() < 1e-12);
    }

    #[test]
    fn variance_series_skips_zero_predecessor() {
        let s = variance_series(&[0.0, 0.5, 0.6]).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn variance_of_constant_series_is_zero() {
        assert!(variance_of_balance(&[0.7, 0.7, 0.7, 0.7]).unwrap().abs() < 1e-15);
    }

    #[test]
    fn variance_needs_two_points() {
        assert!(matches!(
            variance_series(&[0.5]),
            Err(StatsError::EmptyInput { .. })
        ));
    }

    #[test]
    fn user_count_wrapper_matches_float_path() {
        let a = user_count_balance_index(&[2, 2, 2]).unwrap();
        assert!((a - 1.0).abs() < 1e-12);
        let b = user_count_balance_index(&[4, 0]).unwrap();
        assert!(b.abs() < 1e-12);
    }
}
