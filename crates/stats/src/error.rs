//! Error type for statistical routines.

use core::fmt;

/// Errors raised by the statistics routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// An input slice was empty where at least one sample is required.
    EmptyInput {
        /// Which routine complained.
        what: &'static str,
    },
    /// A sample was negative or non-finite where the routine requires
    /// non-negative finite values (e.g. throughput for the balance index).
    InvalidSample {
        /// Which routine complained.
        what: &'static str,
        /// Index of the offending sample.
        index: usize,
    },
    /// A parameter was outside its allowed range.
    BadParameter {
        /// Which parameter.
        what: &'static str,
        /// Description of the violation.
        detail: String,
    },
    /// Clustering was asked for more clusters than there are points.
    TooFewPoints {
        /// Points supplied.
        points: usize,
        /// Clusters requested.
        k: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput { what } => write!(f, "{what}: input is empty"),
            StatsError::InvalidSample { what, index } => {
                write!(f, "{what}: sample {index} is negative or non-finite")
            }
            StatsError::BadParameter { what, detail } => write!(f, "{what}: {detail}"),
            StatsError::TooFewPoints { points, k } => {
                write!(
                    f,
                    "k-means: {k} clusters requested but only {points} points"
                )
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StatsError::EmptyInput { what: "cdf" }.to_string(),
            "cdf: input is empty"
        );
        assert_eq!(
            StatsError::TooFewPoints { points: 2, k: 4 }.to_string(),
            "k-means: 4 clusters requested but only 2 points"
        );
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<StatsError>();
    }
}
