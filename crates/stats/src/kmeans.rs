//! k-means clustering (k-means++ seeding, Lloyd iterations).
//!
//! The paper clusters per-user application profiles (6-dim simplex vectors)
//! into `k = 4` groups (Fig. 8); `k` itself is chosen by the gap statistic in
//! [`crate::gap`]. The implementation is dimension-generic so the gap
//! statistic can feed uniform reference data through the same code path.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use s3_obs::{Desc, HistogramDesc, Stability, Unit};

use crate::StatsError;

// Clustering metrics (documented in docs/METRICS.md). All values are pure
// functions of the input and seed: iteration counts come from the
// sequential update step, and the final movement is quantized to integer
// nanos so histogram sums stay exact.
static FITS: Desc = Desc {
    name: "stats.kmeans.fits",
    help: "k-means fits performed (each with its configured restarts)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static CONVERGED: Desc = Desc {
    name: "stats.kmeans.converged",
    help: "Lloyd runs that met the movement tolerance before max_iters",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static MAX_ITERS_REACHED: Desc = Desc {
    name: "stats.kmeans.max_iters_reached",
    help: "Lloyd runs that stopped at the iteration cap without converging",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static ITERATIONS: HistogramDesc = HistogramDesc {
    name: "stats.kmeans.iterations",
    help: "Lloyd iterations per restart",
    unit: Unit::Count,
    stability: Stability::Stable,
    bounds: &[1, 2, 4, 8, 16, 32, 64, 128],
};
static FINAL_MOVEMENT_NANOS: HistogramDesc = HistogramDesc {
    name: "stats.kmeans.final_movement_nanos",
    help: "Total centroid movement (L2) of the last Lloyd iteration, in 1e-9 units",
    unit: Unit::Nanos,
    stability: Stability::Stable,
    bounds: &[1, 1_000, 1_000_000, 1_000_000_000, 1_000_000_000_000],
};

/// Tuning knobs for [`fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence tolerance on total centroid movement (L2).
    pub tol: f64,
    /// Number of independent restarts; the best inertia wins.
    pub restarts: usize,
    /// Worker threads for the per-point assignment step (`<= 1` is
    /// sequential). Assignments are a pure per-point argmin, so the fit is
    /// identical for every thread count.
    pub threads: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            max_iters: 100,
            tol: 1e-9,
            restarts: 4,
            threads: 1,
        }
    }
}

/// Result of a k-means fit.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// `k` centroids, each of the input dimension.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment per input point, values in `0..k`.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Points per cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Index and squared distance of the centroid nearest to `p`.
fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(p, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

fn validate(points: &[Vec<f64>], k: usize) -> Result<usize, StatsError> {
    if points.is_empty() {
        return Err(StatsError::EmptyInput { what: "kmeans" });
    }
    if k == 0 {
        return Err(StatsError::BadParameter {
            what: "kmeans",
            detail: "k must be positive".to_string(),
        });
    }
    if points.len() < k {
        return Err(StatsError::TooFewPoints {
            points: points.len(),
            k,
        });
    }
    let dim = points[0].len();
    if dim == 0 {
        return Err(StatsError::BadParameter {
            what: "kmeans",
            detail: "points must have positive dimension".to_string(),
        });
    }
    for (index, p) in points.iter().enumerate() {
        if p.len() != dim {
            return Err(StatsError::BadParameter {
                what: "kmeans",
                detail: format!("point {index} has dimension {} (expected {dim})", p.len()),
            });
        }
        if p.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::InvalidSample {
                what: "kmeans",
                index,
            });
        }
    }
    Ok(dim)
}

/// k-means++ seeding: the first centroid is uniform, later ones are sampled
/// proportional to squared distance to the nearest already-chosen centroid.
fn seed_plus_plus(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = rng.random_range(0..points.len());
    centroids.push(points[first].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick uniformly.
            rng.random_range(0..points.len())
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(points[idx].clone());
        let newest = centroids.last().expect("just pushed");
        for (i, p) in points.iter().enumerate() {
            let d = sq_dist(p, newest);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

fn lloyd(
    points: &[Vec<f64>],
    mut centroids: Vec<Vec<f64>>,
    dim: usize,
    config: &KMeansConfig,
) -> KMeansResult {
    let k = centroids.len();
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0u64;
    let mut converged = false;
    let mut last_movement = 0.0f64;
    for _ in 0..config.max_iters {
        iterations += 1;
        // Assignment step: a pure per-point argmin, parallelized with the
        // output in point order. The update step below stays sequential so
        // the centroid sums accumulate in point order at any thread count.
        for (i, (best, _)) in s3_par::par_map(points, config.threads, |_, p| nearest(p, &centroids))
            .into_iter()
            .enumerate()
        {
            assignments[i] = best;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the point farthest from its
                // current centroid to keep exactly k clusters alive.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        sq_dist(a, &centroids[assignments[0]])
                            .partial_cmp(&sq_dist(b, &centroids[assignments[0]]))
                            .expect("finite")
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty points");
                movement += sq_dist(&centroids[c], &points[far]).sqrt();
                centroids[c] = points[far].clone();
                continue;
            }
            let mut new_c = sums[c].clone();
            for x in &mut new_c {
                *x /= counts[c] as f64;
            }
            movement += sq_dist(&centroids[c], &new_c).sqrt();
            centroids[c] = new_c;
        }
        last_movement = movement;
        if movement <= config.tol {
            converged = true;
            break;
        }
    }
    let registry = s3_obs::global();
    registry.histogram(&ITERATIONS).observe(iterations);
    registry
        .histogram(&FINAL_MOVEMENT_NANOS)
        .observe((last_movement * 1e9).round().min(u64::MAX as f64).max(0.0) as u64);
    registry
        .counter(if converged {
            &CONVERGED
        } else {
            &MAX_ITERS_REACHED
        })
        .inc();
    // Final assignment + inertia against the converged centroids. The
    // distances come back in point order, so the inertia sum associates
    // exactly as the sequential loop did.
    let mut inertia = 0.0;
    for (i, (best, best_d)) in
        s3_par::par_map(points, config.threads, |_, p| nearest(p, &centroids))
            .into_iter()
            .enumerate()
    {
        assignments[i] = best;
        inertia += best_d;
    }
    KMeansResult {
        centroids,
        assignments,
        inertia,
    }
}

/// Fits k-means with `config.restarts` k-means++ restarts and returns the
/// run with the lowest inertia. Deterministic for a fixed `seed`.
///
/// # Errors
///
/// [`StatsError::EmptyInput`] / [`StatsError::TooFewPoints`] /
/// [`StatsError::BadParameter`] / [`StatsError::InvalidSample`] on malformed
/// input, as described on each variant.
///
/// # Example
/// ```
/// # use s3_stats::kmeans::{fit, KMeansConfig};
/// let pts = vec![
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
///     vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1],
/// ];
/// let fit = fit(&pts, 2, &KMeansConfig::default(), 7)?;
/// assert_eq!(fit.k(), 2);
/// assert_eq!(fit.assignments[0], fit.assignments[1]);
/// assert_ne!(fit.assignments[0], fit.assignments[3]);
/// # Ok::<(), s3_stats::StatsError>(())
/// ```
pub fn fit(
    points: &[Vec<f64>],
    k: usize,
    config: &KMeansConfig,
    seed: u64,
) -> Result<KMeansResult, StatsError> {
    let dim = validate(points, k)?;
    if config.restarts == 0 {
        return Err(StatsError::BadParameter {
            what: "kmeans",
            detail: "restarts must be positive".to_string(),
        });
    }
    s3_obs::global().counter(&FITS).inc();
    let mut best: Option<KMeansResult> = None;
    for restart in 0..config.restarts {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(restart as u64 * 0x9E37_79B9));
        let seeds = seed_plus_plus(points, k, &mut rng);
        let result = lloyd(points, seeds, dim, config);
        let better = match &best {
            None => true,
            Some(b) => result.inertia < b.inertia,
        };
        if better {
            best = Some(result);
        }
    }
    Ok(best.expect("restarts >= 1"))
}

/// Within-cluster dispersion `W_k = Σ_clusters ½·(pairwise squared dists)/n_r`
/// as used by the gap statistic. Computed equivalently as
/// `Σ_points ‖x − centroid‖²` (identical for Euclidean distance).
pub fn within_dispersion(points: &[Vec<f64>], result: &KMeansResult) -> f64 {
    let mut w = 0.0;
    for (p, &a) in points.iter().zip(&result.assignments) {
        w += sq_dist(p, &result.centroids[a]);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let j = i as f64 * 0.01;
            pts.push(vec![j, -j]);
            pts.push(vec![10.0 + j, 10.0 - j]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let fit = fit(&pts, 2, &KMeansConfig::default(), 42).unwrap();
        let a0 = fit.assignments[0];
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(fit.assignments[i], a0);
        }
        for i in (1..pts.len()).step_by(2) {
            assert_ne!(fit.assignments[i], a0);
        }
        let sizes = fit.cluster_sizes();
        assert_eq!(sizes, vec![20, 20]);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let pts = two_blobs();
        let a = fit(&pts, 3, &KMeansConfig::default(), 5).unwrap();
        let b = fit(&pts, 3, &KMeansConfig::default(), 5).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![1.0], vec![2.0], vec![3.0]];
        let fit = fit(&pts, 3, &KMeansConfig::default(), 1).unwrap();
        assert!(fit.inertia < 1e-18);
        let mut sorted = fit.cluster_sizes();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 1, 1]);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let pts = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let fit = fit(&pts, 1, &KMeansConfig::default(), 9).unwrap();
        assert!((fit.centroids[0][0] - 1.0).abs() < 1e-12);
        assert!((fit.centroids[0][1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            fit(&[], 2, &KMeansConfig::default(), 0),
            Err(StatsError::EmptyInput { .. })
        ));
        let pts = vec![vec![1.0]];
        assert!(matches!(
            fit(&pts, 2, &KMeansConfig::default(), 0),
            Err(StatsError::TooFewPoints { points: 1, k: 2 })
        ));
        assert!(matches!(
            fit(&pts, 0, &KMeansConfig::default(), 0),
            Err(StatsError::BadParameter { .. })
        ));
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(matches!(
            fit(&ragged, 1, &KMeansConfig::default(), 0),
            Err(StatsError::BadParameter { .. })
        ));
        let nan = vec![vec![f64::NAN]];
        assert!(matches!(
            fit(&nan, 1, &KMeansConfig::default(), 0),
            Err(StatsError::InvalidSample { .. })
        ));
    }

    #[test]
    fn duplicate_points_still_produce_k_clusters() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let fit = fit(&pts, 3, &KMeansConfig::default(), 3).unwrap();
        assert_eq!(fit.k(), 3);
        assert!(fit.inertia < 1e-18);
    }

    #[test]
    fn within_dispersion_matches_inertia() {
        let pts = two_blobs();
        let result = fit(&pts, 2, &KMeansConfig::default(), 11).unwrap();
        let w = within_dispersion(&pts, &result);
        assert!((w - result.inertia).abs() < 1e-9);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let pts = two_blobs();
        let mut last = f64::INFINITY;
        for k in 1..=5 {
            let result = fit(&pts, k, &KMeansConfig::default(), 17).unwrap();
            assert!(
                result.inertia <= last + 1e-9,
                "inertia rose at k={k}: {} -> {}",
                last,
                result.inertia
            );
            last = result.inertia;
        }
    }
}
