//! Summary statistics: mean, variance, standard deviation and normal-theory
//! confidence intervals (the 95 % error bars of Fig. 12).

use crate::StatsError;

/// Mean, variance and confidence-interval summary of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    var: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] for an empty sample;
    /// [`StatsError::InvalidSample`] on NaN/∞ entries.
    ///
    /// # Example
    /// ```
    /// # use s3_stats::summary::Summary;
    /// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0])?;
    /// assert_eq!(s.mean(), 2.5);
    /// assert_eq!(s.n(), 4);
    /// # Ok::<(), s3_stats::StatsError>(())
    /// ```
    pub fn of(samples: &[f64]) -> Result<Self, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::EmptyInput { what: "summary" });
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (index, &x) in samples.iter().enumerate() {
            if !x.is_finite() {
                return Err(StatsError::InvalidSample {
                    what: "summary",
                    index,
                });
            }
            min = min.min(x);
            max = max.max(x);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = if samples.len() < 2 {
            0.0
        } else {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
        };
        Ok(Summary {
            n: samples.len(),
            mean,
            var,
            min,
            max,
        })
    }

    /// Sample size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for a single sample).
    pub fn variance(&self) -> f64 {
        self.var
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.var.sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The half-width of the 95 % confidence interval of the mean,
    /// `z₀.₉₇₅ · SE` with the normal approximation (`z = 1.959964`).
    pub fn ci95_half_width(&self) -> f64 {
        1.959_964 * self.std_err()
    }

    /// `(lower, upper)` bounds of the 95 % confidence interval of the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let h = self.ci95_half_width();
        (self.mean - h, self.mean + h)
    }
}

/// Relative improvement `(new − old)/old`, the "balancing performance gain"
/// the paper reports (e.g. 41.2 % for S³ over LLF).
///
/// # Errors
///
/// [`StatsError::BadParameter`] when `old` is zero or either value is
/// non-finite.
pub fn relative_gain(old: f64, new: f64) -> Result<f64, StatsError> {
    if !old.is_finite() || !new.is_finite() || old == 0.0 {
        return Err(StatsError::BadParameter {
            what: "relative_gain",
            detail: format!("old={old}, new={new}"),
        });
    }
    Ok((new - old) / old)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.n(), 8);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
        assert_eq!(s.ci95(), (3.5, 3.5));
    }

    #[test]
    fn ci_is_symmetric_and_shrinks_with_n() {
        let few = Summary::of(&[1.0, 2.0, 3.0]).unwrap();
        let many: Vec<f64> = (0..300).map(|i| 1.0 + (i % 3) as f64).collect();
        let many = Summary::of(&many).unwrap();
        assert!((few.mean() - many.mean()).abs() < 1e-12);
        assert!(many.ci95_half_width() < few.ci95_half_width());
        let (lo, hi) = few.ci95();
        assert!((few.mean() - lo - (hi - few.mean())).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_samples() {
        assert!(Summary::of(&[]).is_err());
        assert!(matches!(
            Summary::of(&[1.0, f64::INFINITY]),
            Err(StatsError::InvalidSample { index: 1, .. })
        ));
    }

    #[test]
    fn relative_gain_examples() {
        assert!((relative_gain(0.5, 0.706).unwrap() - 0.412).abs() < 1e-12);
        assert!((relative_gain(2.0, 1.0).unwrap() + 0.5).abs() < 1e-12);
        assert!(relative_gain(0.0, 1.0).is_err());
        assert!(relative_gain(f64::NAN, 1.0).is_err());
    }
}
