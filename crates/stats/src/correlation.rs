//! Correlation coefficients: Pearson's r and Spearman's ρ.
//!
//! The paper cites Spearman's classic paper and argues that the user-count
//! and traffic balance series of Fig. 4 move together; these helpers put a
//! number on "very similar in layout".

use crate::StatsError;

fn validate_pair(what: &'static str, x: &[f64], y: &[f64]) -> Result<(), StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::BadParameter {
            what,
            detail: format!("series lengths differ: {} vs {}", x.len(), y.len()),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::EmptyInput { what });
    }
    for (index, v) in x.iter().chain(y).enumerate() {
        if !v.is_finite() {
            return Err(StatsError::InvalidSample {
                what,
                index: index % x.len(),
            });
        }
    }
    Ok(())
}

/// Pearson's product-moment correlation of two equal-length series.
///
/// Returns 0 when either series is constant (no linear relation defined).
///
/// # Errors
///
/// [`StatsError::BadParameter`] on length mismatch;
/// [`StatsError::EmptyInput`] for fewer than two points;
/// [`StatsError::InvalidSample`] on non-finite entries.
///
/// # Example
/// ```
/// # use s3_stats::correlation::pearson;
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y)? - 1.0).abs() < 1e-12);
/// # Ok::<(), s3_stats::StatsError>(())
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    validate_pair("pearson", x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return Ok(0.0);
    }
    Ok((cov / (vx * vy).sqrt()).clamp(-1.0, 1.0))
}

/// Mid-ranks of a series (ties share the average rank).
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Ranks are 1-based; tied entries share the mean rank.
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman's rank correlation: Pearson's r over mid-ranks (tie-aware).
///
/// # Errors
///
/// Same conditions as [`pearson`].
///
/// # Example
/// ```
/// # use s3_stats::correlation::spearman;
/// // Monotone but non-linear: ρ = 1 while r < 1.
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [1.0, 8.0, 27.0, 64.0];
/// assert!((spearman(&x, &y)? - 1.0).abs() < 1e-12);
/// # Ok::<(), s3_stats::StatsError>(())
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    validate_pair("spearman", x, y)?;
    pearson(&ranks(x), &ranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_inverse_correlation() {
        let x = [1.0, 2.0, 3.0];
        assert!((pearson(&x, &[10.0, 20.0, 30.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
        assert!((spearman(&x, &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
        assert_eq!(spearman(&[5.0, 5.0], &[1.0, 2.0]).unwrap(), 0.0);
    }

    #[test]
    fn independent_is_near_zero() {
        // Orthogonal patterns.
        let x = [1.0, -1.0, 1.0, -1.0];
        let y = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn spearman_ignores_monotone_distortion() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        let r = pearson(&x, &y).unwrap();
        let rho = spearman(&x, &y).unwrap();
        assert!(rho > r, "rank correlation must beat linear on convex data");
        assert!((rho - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[7.0, 7.0, 7.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            pearson(&[1.0], &[1.0]),
            Err(StatsError::EmptyInput { .. })
        ));
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0]),
            Err(StatsError::BadParameter { .. })
        ));
        assert!(matches!(
            spearman(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(StatsError::InvalidSample { .. })
        ));
    }

    #[test]
    fn correlation_is_symmetric() {
        let x = [1.0, 4.0, 2.0, 8.0, 5.0];
        let y = [2.0, 3.0, 1.0, 9.0, 4.0];
        assert!((pearson(&x, &y).unwrap() - pearson(&y, &x).unwrap()).abs() < 1e-12);
        assert!((spearman(&x, &y).unwrap() - spearman(&y, &x).unwrap()).abs() < 1e-12);
    }
}
