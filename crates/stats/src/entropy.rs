//! Entropy, mutual information and the paper's NMI profile-stability
//! estimator (Section III-D2, Fig. 6).
//!
//! The paper compares a user's application profile on day `x` with the
//! profile aggregated over days `x−1 … x−n` and reports the *normalized
//! mutual information* `NMI = I(T_x; T_hist) / H(T_x)`, averaged over users.
//!
//! MI between two single probability vectors is not well defined, so — as
//! recorded in DESIGN.md — we use a population-level quantized estimator:
//! every (user, realm) pair contributes one sample `(q(share now),
//! q(share in history))` where `q` quantizes a share into `levels` equal
//! bins; MI is then the standard plug-in estimator on the resulting joint
//! histogram. As the history window grows the history share becomes a better
//! predictor of the current share, so NMI rises and then plateaus exactly as
//! in Fig. 6.

use crate::StatsError;

/// Shannon entropy (nats are boring; we use bits) of a discrete distribution
/// given as non-negative weights. Weights are normalized internally.
///
/// # Errors
///
/// [`StatsError::EmptyInput`] if `weights` is empty or sums to zero;
/// [`StatsError::InvalidSample`] on negative/non-finite weights.
///
/// # Example
/// ```
/// # use s3_stats::entropy::entropy_bits;
/// let h = entropy_bits(&[1.0, 1.0, 1.0, 1.0])?;
/// assert!((h - 2.0).abs() < 1e-12);
/// # Ok::<(), s3_stats::StatsError>(())
/// ```
pub fn entropy_bits(weights: &[f64]) -> Result<f64, StatsError> {
    if weights.is_empty() {
        return Err(StatsError::EmptyInput { what: "entropy" });
    }
    let mut total = 0.0;
    for (index, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w < 0.0 {
            return Err(StatsError::InvalidSample {
                what: "entropy",
                index,
            });
        }
        total += w;
    }
    if total == 0.0 {
        return Err(StatsError::EmptyInput { what: "entropy" });
    }
    let mut h = 0.0;
    for &w in weights {
        if w > 0.0 {
            let p = w / total;
            h -= p * p.log2();
        }
    }
    Ok(h)
}

/// A joint histogram over two discrete variables with `rows × cols` cells,
/// accumulated one observation at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct JointHistogram {
    rows: usize,
    cols: usize,
    counts: Vec<u64>,
    total: u64,
}

impl JointHistogram {
    /// Creates an empty `rows × cols` joint histogram.
    ///
    /// # Errors
    ///
    /// [`StatsError::BadParameter`] if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Result<Self, StatsError> {
        if rows == 0 || cols == 0 {
            return Err(StatsError::BadParameter {
                what: "joint_histogram",
                detail: format!("dimensions {rows}x{cols} must be positive"),
            });
        }
        Ok(JointHistogram {
            rows,
            cols,
            counts: vec![0; rows * cols],
            total: 0,
        })
    }

    /// Records one `(x, y)` observation.
    ///
    /// # Panics
    ///
    /// Panics if `x >= rows` or `y >= cols`.
    pub fn record(&mut self, x: usize, y: usize) {
        assert!(
            x < self.rows && y < self.cols,
            "cell ({x},{y}) out of range"
        );
        self.counts[x * self.cols + y] += 1;
        self.total += 1;
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Marginal entropy of the row variable, in bits.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] if no observations were recorded.
    pub fn entropy_x(&self) -> Result<f64, StatsError> {
        let marg: Vec<f64> = (0..self.rows)
            .map(|r| {
                (0..self.cols)
                    .map(|c| self.counts[r * self.cols + c] as f64)
                    .sum()
            })
            .collect();
        entropy_bits(&marg)
    }

    /// Marginal entropy of the column variable, in bits.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] if no observations were recorded.
    pub fn entropy_y(&self) -> Result<f64, StatsError> {
        let marg: Vec<f64> = (0..self.cols)
            .map(|c| {
                (0..self.rows)
                    .map(|r| self.counts[r * self.cols + c] as f64)
                    .sum()
            })
            .collect();
        entropy_bits(&marg)
    }

    /// Joint entropy `H(X, Y)` in bits.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] if no observations were recorded.
    pub fn joint_entropy(&self) -> Result<f64, StatsError> {
        let weights: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        entropy_bits(&weights)
    }

    /// Mutual information `I(X;Y) = H(X) + H(Y) − H(X,Y)` in bits, clamped
    /// at zero against floating-point noise.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] if no observations were recorded.
    pub fn mutual_information(&self) -> Result<f64, StatsError> {
        let hx = self.entropy_x()?;
        let hy = self.entropy_y()?;
        let hxy = self.joint_entropy()?;
        Ok((hx + hy - hxy).max(0.0))
    }

    /// The paper's NMI: `I(X;Y) / H(X)` (normalized by the *current-day*
    /// entropy). Defined as 1 when `H(X) = 0` and `I = 0` (a deterministic
    /// variable predicts itself perfectly), else 0 when `H(X) = 0`.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] if no observations were recorded.
    pub fn nmi(&self) -> Result<f64, StatsError> {
        let hx = self.entropy_x()?;
        let mi = self.mutual_information()?;
        if hx == 0.0 {
            return Ok(1.0);
        }
        Ok((mi / hx).clamp(0.0, 1.0))
    }
}

/// Quantizes a share in `[0,1]` into `levels` equal bins (share 1.0 maps to
/// the top bin).
///
/// # Panics
///
/// Panics if `levels == 0`.
pub fn quantize_share(share: f64, levels: usize) -> usize {
    assert!(levels > 0, "levels must be positive");
    let s = share.clamp(0.0, 1.0);
    ((s * levels as f64) as usize).min(levels - 1)
}

/// The Fig. 6 estimator: population NMI between "current day" profile shares
/// and "history window" profile shares.
///
/// `pairs` yields one `(current_share, history_share)` sample per
/// (user, realm); shares are quantized into `levels` bins.
///
/// # Errors
///
/// [`StatsError::EmptyInput`] if `pairs` is empty;
/// [`StatsError::BadParameter`] if `levels == 0`.
pub fn profile_nmi<I>(pairs: I, levels: usize) -> Result<f64, StatsError>
where
    I: IntoIterator<Item = (f64, f64)>,
{
    if levels == 0 {
        return Err(StatsError::BadParameter {
            what: "profile_nmi",
            detail: "levels must be positive".to_string(),
        });
    }
    let mut hist = JointHistogram::new(levels, levels)?;
    for (cur, old) in pairs {
        hist.record(quantize_share(cur, levels), quantize_share(old, levels));
    }
    if hist.total() == 0 {
        return Err(StatsError::EmptyInput {
            what: "profile_nmi",
        });
    }
    hist.nmi()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform() {
        assert!((entropy_bits(&[0.25; 4]).unwrap() - 2.0).abs() < 1e-12);
        assert!((entropy_bits(&[2.0, 2.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_deterministic_is_zero() {
        assert_eq!(entropy_bits(&[1.0, 0.0, 0.0]).unwrap(), 0.0);
    }

    #[test]
    fn entropy_rejects_bad_input() {
        assert!(entropy_bits(&[]).is_err());
        assert!(entropy_bits(&[0.0, 0.0]).is_err());
        assert!(entropy_bits(&[1.0, -0.5]).is_err());
    }

    #[test]
    fn perfectly_correlated_nmi_is_one() {
        let mut h = JointHistogram::new(4, 4).unwrap();
        for i in 0..4 {
            for _ in 0..10 {
                h.record(i, i);
            }
        }
        assert!((h.nmi().unwrap() - 1.0).abs() < 1e-12);
        assert!((h.mutual_information().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn independent_nmi_is_zero() {
        let mut h = JointHistogram::new(2, 2).unwrap();
        for x in 0..2 {
            for y in 0..2 {
                for _ in 0..25 {
                    h.record(x, y);
                }
            }
        }
        assert!(h.nmi().unwrap().abs() < 1e-12);
    }

    #[test]
    fn deterministic_x_nmi_is_one_by_convention() {
        let mut h = JointHistogram::new(3, 3).unwrap();
        for y in 0..3 {
            h.record(0, y);
        }
        assert_eq!(h.nmi().unwrap(), 1.0);
    }

    #[test]
    fn mi_never_negative() {
        let mut h = JointHistogram::new(3, 3).unwrap();
        // slightly noisy diagonal
        for i in 0..3 {
            for _ in 0..5 {
                h.record(i, i);
            }
            h.record(i, (i + 1) % 3);
        }
        assert!(h.mutual_information().unwrap() >= 0.0);
        let nmi = h.nmi().unwrap();
        assert!(nmi > 0.0 && nmi < 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_out_of_range_panics() {
        let mut h = JointHistogram::new(2, 2).unwrap();
        h.record(2, 0);
    }

    #[test]
    fn quantize_edges() {
        assert_eq!(quantize_share(0.0, 8), 0);
        assert_eq!(quantize_share(1.0, 8), 7);
        assert_eq!(quantize_share(0.5, 8), 4);
        assert_eq!(quantize_share(-3.0, 8), 0);
        assert_eq!(quantize_share(7.0, 8), 7);
    }

    #[test]
    fn profile_nmi_identity_pairs_are_perfect() {
        let pairs: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let s = i as f64 / 99.0;
                (s, s)
            })
            .collect();
        let nmi = profile_nmi(pairs, 8).unwrap();
        assert!((nmi - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profile_nmi_independent_pairs_are_zero() {
        // Every (current level, history level) combination appears equally
        // often → exactly independent → NMI 0.
        let pairs: Vec<(f64, f64)> = (0..64)
            .map(|i| {
                (
                    (i % 8) as f64 / 8.0 + 0.01,
                    ((i / 8) % 8) as f64 / 8.0 + 0.01,
                )
            })
            .collect();
        let nmi = profile_nmi(pairs, 8).unwrap();
        assert!(nmi < 1e-9, "nmi unexpectedly high: {nmi}");
    }

    #[test]
    fn profile_nmi_errors() {
        assert!(profile_nmi(Vec::<(f64, f64)>::new(), 8).is_err());
        assert!(profile_nmi(vec![(0.5, 0.5)], 0).is_err());
    }
}
