//! The gap statistic of Tibshirani, Walther & Hastie (2001) for choosing the
//! number of clusters `k` — the method the paper uses to arrive at `k = 4`
//! user types (Section III-D2, Fig. 7).
//!
//! ```text
//! Gap(k) = (1/B) Σ_b log(W_kb) − log(W_k)
//! ```
//!
//! where `W_k` is the within-cluster dispersion of the data clustered into
//! `k` groups and `W_kb` the dispersion of the `b`-th reference data set
//! drawn uniformly over the bounding box of the data. The chosen `k` is the
//! smallest one with `Gap(k) ≥ Gap(k+1) − s_{k+1}` where
//! `s_k = sd_k · √(1 + 1/B)`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use s3_obs::{Desc, HistogramDesc, Stability, Unit};

use crate::kmeans::{self, KMeansConfig};

// Gap-statistic metrics (documented in docs/METRICS.md).
static RUNS: Desc = Desc {
    name: "stats.gap.runs",
    help: "Gap-statistic evaluations performed",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static FITS: Desc = Desc {
    name: "stats.gap.fits",
    help: "k-means fits fanned out by gap runs (k_max * (B + 1) per run)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static CHOSEN_K: HistogramDesc = HistogramDesc {
    name: "stats.gap.chosen_k",
    help: "Cluster count selected by the Tibshirani rule",
    unit: Unit::Count,
    stability: Stability::Stable,
    bounds: &[1, 2, 3, 4, 6, 8, 12, 16],
};
use crate::linalg::{covariance, symmetric_eigen};
use crate::StatsError;

/// How the null-reference data sets are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReferenceMethod {
    /// Uniform over the axis-aligned bounding box of the data
    /// (Tibshirani's method (a)).
    BoundingBox,
    /// Uniform over a box aligned with the data's principal components
    /// (Tibshirani's method (b)) — more robust for elongated clusters,
    /// like application profiles living on a simplex.
    PcaAligned,
}

/// Configuration for a [`gap_statistic`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct GapConfig {
    /// Number of reference data sets `B`.
    pub reference_sets: usize,
    /// Null-reference generation method.
    pub reference_method: ReferenceMethod,
    /// k-means settings shared by data and reference fits.
    pub kmeans: KMeansConfig,
    /// Worker threads fanning out the `k_max · (B + 1)` independent k-means
    /// fits (`<= 1` is sequential). Each fit has its own derived seed, so
    /// the curve is identical for every thread count.
    pub threads: usize,
}

impl Default for GapConfig {
    fn default() -> Self {
        GapConfig {
            reference_sets: 10,
            reference_method: ReferenceMethod::PcaAligned,
            kmeans: KMeansConfig::default(),
            threads: 1,
        }
    }
}

/// Gap value and dispersion diagnostics for one `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct GapPoint {
    /// Number of clusters.
    pub k: usize,
    /// `Gap(k)`.
    pub gap: f64,
    /// `s_k = sd_k √(1+1/B)` — the correction term of the selection rule.
    pub s: f64,
    /// `log(W_k)` of the real data.
    pub log_w: f64,
    /// Mean `log(W_kb)` over the reference sets.
    pub mean_ref_log_w: f64,
}

/// Full gap-statistic curve over `k = 1 ..= k_max` plus the selected `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct GapResult {
    /// One entry per evaluated `k`, ascending.
    pub points: Vec<GapPoint>,
    /// The smallest `k` with `Gap(k) ≥ Gap(k+1) − s_{k+1}`, falling back to
    /// the `k` with the maximum gap when the rule never fires.
    pub chosen_k: usize,
}

fn bounding_box(points: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>) {
    let dim = points[0].len();
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    for p in points {
        for d in 0..dim {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    (lo, hi)
}

fn uniform_reference(n: usize, lo: &[f64], hi: &[f64], rng: &mut StdRng) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            lo.iter()
                .zip(hi)
                .map(|(&l, &h)| if h > l { rng.random_range(l..h) } else { l })
                .collect()
        })
        .collect()
}

/// The principal-component frame of a point set: `(mean, axes)` with axes
/// as unit-vector rows, plus the data's projected bounds along each axis.
struct PcaFrame {
    mean: Vec<f64>,
    axes: Vec<Vec<f64>>,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

fn pca_frame(points: &[Vec<f64>]) -> Result<PcaFrame, StatsError> {
    let d = points[0].len();
    let (cov, mean) = covariance(points)?;
    let eigen = symmetric_eigen(&cov, d)?;
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for p in points {
        for (axis, (l, h)) in eigen.vectors.iter().zip(lo.iter_mut().zip(hi.iter_mut())) {
            let proj: f64 = axis
                .iter()
                .zip(p.iter().zip(&mean))
                .map(|(a, (x, m))| a * (x - m))
                .sum();
            *l = l.min(proj);
            *h = h.max(proj);
        }
    }
    Ok(PcaFrame {
        mean,
        axes: eigen.vectors,
        lo,
        hi,
    })
}

fn pca_reference(n: usize, frame: &PcaFrame, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let d = frame.mean.len();
    (0..n)
        .map(|_| {
            let coords: Vec<f64> = frame
                .lo
                .iter()
                .zip(&frame.hi)
                .map(|(&l, &h)| if h > l { rng.random_range(l..h) } else { l })
                .collect();
            let mut point = frame.mean.clone();
            for (axis, &c) in frame.axes.iter().zip(&coords) {
                for (x, &a) in point.iter_mut().zip(axis).take(d) {
                    *x += c * a;
                }
            }
            point
        })
        .collect()
}

fn log_dispersion(
    points: &[Vec<f64>],
    k: usize,
    config: &KMeansConfig,
    seed: u64,
) -> Result<f64, StatsError> {
    let fit = kmeans::fit(points, k, config, seed)?;
    let w = kmeans::within_dispersion(points, &fit);
    // Guard against log(0) for degenerate perfectly-tight clusterings.
    Ok(w.max(1e-300).ln())
}

/// Computes the gap statistic for `k = 1 ..= k_max` and applies the
/// Tibshirani selection rule. Deterministic for a fixed `seed`.
///
/// # Errors
///
/// Propagates k-means validation errors, and returns
/// [`StatsError::BadParameter`] when `k_max` is zero or larger than the
/// number of points, or when `reference_sets` is zero.
///
/// # Example
/// ```
/// # use s3_stats::gap::{gap_statistic, GapConfig};
/// // Two tight, well-separated blobs → the rule should pick k = 2.
/// let mut pts = Vec::new();
/// for i in 0..30 {
///     let j = (i % 10) as f64 * 1e-3;
///     pts.push(vec![j, j]);
///     pts.push(vec![4.0 + j, 4.0 - j]);
/// }
/// let result = gap_statistic(&pts, 4, &GapConfig::default(), 123)?;
/// assert_eq!(result.chosen_k, 2);
/// # Ok::<(), s3_stats::StatsError>(())
/// ```
pub fn gap_statistic(
    points: &[Vec<f64>],
    k_max: usize,
    config: &GapConfig,
    seed: u64,
) -> Result<GapResult, StatsError> {
    if points.is_empty() {
        return Err(StatsError::EmptyInput { what: "gap" });
    }
    if k_max == 0 || k_max > points.len() {
        return Err(StatsError::BadParameter {
            what: "gap",
            detail: format!("k_max {k_max} must be in 1..={}", points.len()),
        });
    }
    if config.reference_sets == 0 {
        return Err(StatsError::BadParameter {
            what: "gap",
            detail: "reference_sets must be positive".to_string(),
        });
    }
    let registry = s3_obs::global();
    registry.counter(&RUNS).inc();
    let b = config.reference_sets;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    // Draw the reference sets once and reuse them across k, as Tibshirani
    // prescribes (reduces Monte-Carlo noise between adjacent k).
    let references: Vec<Vec<Vec<f64>>> = match config.reference_method {
        ReferenceMethod::BoundingBox => {
            let (lo, hi) = bounding_box(points);
            (0..b)
                .map(|_| uniform_reference(points.len(), &lo, &hi, &mut rng))
                .collect()
        }
        ReferenceMethod::PcaAligned => {
            let frame = pca_frame(points)?;
            (0..b)
                .map(|_| pca_reference(points.len(), &frame, &mut rng))
                .collect()
        }
    };

    // Every (k, data-or-reference) fit is independent with its own derived
    // seed; fan them all out at once and reassemble per k in task order, so
    // the mean/sd sums associate exactly as the sequential loops did.
    let mut tasks: Vec<(usize, Option<usize>)> = Vec::with_capacity(k_max * (b + 1));
    for k in 1..=k_max {
        tasks.push((k, None));
        for bi in 0..b {
            tasks.push((k, Some(bi)));
        }
    }
    registry.counter(&FITS).add(tasks.len() as u64);
    let logs: Vec<Result<f64, StatsError>> =
        s3_par::par_map(&tasks, config.threads, |_, &(k, bi)| match bi {
            None => log_dispersion(points, k, &config.kmeans, seed.wrapping_add(k as u64)),
            Some(bi) => log_dispersion(
                &references[bi],
                k,
                &config.kmeans,
                seed.wrapping_add((k * 1_000 + bi) as u64),
            ),
        });
    let mut logs = logs.into_iter();

    let mut out = Vec::with_capacity(k_max);
    for k in 1..=k_max {
        let log_w = logs.next().expect("one data fit per k")?;
        let mut ref_logs = Vec::with_capacity(b);
        for _ in 0..b {
            ref_logs.push(logs.next().expect("b reference fits per k")?);
        }
        let mean = ref_logs.iter().sum::<f64>() / b as f64;
        let sd = (ref_logs
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / b as f64)
            .sqrt();
        out.push(GapPoint {
            k,
            gap: mean - log_w,
            s: sd * (1.0 + 1.0 / b as f64).sqrt(),
            log_w,
            mean_ref_log_w: mean,
        });
    }

    let mut chosen_k = 0;
    for i in 0..out.len() - 1 {
        if out[i].gap >= out[i + 1].gap - out[i + 1].s {
            chosen_k = out[i].k;
            break;
        }
    }
    if chosen_k == 0 {
        chosen_k = out
            .iter()
            .max_by(|a, b| a.gap.partial_cmp(&b.gap).expect("finite gaps"))
            .map(|p| p.k)
            .expect("non-empty");
    }
    registry.histogram(&CHOSEN_K).observe(chosen_k as u64);
    Ok(GapResult {
        points: out,
        chosen_k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[(f64, f64)], per_blob: usize, spread: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pts = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..per_blob {
                pts.push(vec![
                    cx + rng.random_range(-spread..spread),
                    cy + rng.random_range(-spread..spread),
                ]);
            }
        }
        pts
    }

    #[test]
    fn picks_three_for_three_blobs() {
        let pts = blobs(&[(0.0, 0.0), (6.0, 0.0), (3.0, 6.0)], 25, 0.25, 7);
        let result = gap_statistic(&pts, 6, &GapConfig::default(), 99).unwrap();
        assert_eq!(result.chosen_k, 3, "points: {:?}", result.points);
    }

    #[test]
    fn picks_four_for_four_blobs() {
        let pts = blobs(
            &[(0.0, 0.0), (6.0, 0.0), (0.0, 6.0), (6.0, 6.0)],
            25,
            0.3,
            21,
        );
        let result = gap_statistic(&pts, 8, &GapConfig::default(), 4).unwrap();
        assert_eq!(result.chosen_k, 4);
    }

    #[test]
    fn curve_covers_requested_range() {
        let pts = blobs(&[(0.0, 0.0), (5.0, 5.0)], 15, 0.2, 3);
        let result = gap_statistic(&pts, 5, &GapConfig::default(), 5).unwrap();
        let ks: Vec<usize> = result.points.iter().map(|p| p.k).collect();
        assert_eq!(ks, vec![1, 2, 3, 4, 5]);
        for p in &result.points {
            assert!(p.gap.is_finite());
            assert!(p.s >= 0.0);
        }
    }

    #[test]
    fn deterministic() {
        let pts = blobs(&[(0.0, 0.0), (5.0, 5.0)], 10, 0.2, 3);
        let a = gap_statistic(&pts, 4, &GapConfig::default(), 8).unwrap();
        let b = gap_statistic(&pts, 4, &GapConfig::default(), 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn validation_errors() {
        assert!(gap_statistic(&[], 3, &GapConfig::default(), 0).is_err());
        let pts = vec![vec![0.0], vec![1.0]];
        assert!(gap_statistic(&pts, 0, &GapConfig::default(), 0).is_err());
        assert!(gap_statistic(&pts, 3, &GapConfig::default(), 0).is_err());
        let bad = GapConfig {
            reference_sets: 0,
            ..GapConfig::default()
        };
        assert!(gap_statistic(&pts, 2, &bad, 0).is_err());
    }

    #[test]
    fn uniform_data_prefers_small_k() {
        // Structureless data: the rule should fire at k = 1 (uniform data
        // has no cluster structure to gain from).
        let mut rng = StdRng::seed_from_u64(40);
        let pts: Vec<Vec<f64>> = (0..120)
            .map(|_| vec![rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)])
            .collect();
        let result = gap_statistic(&pts, 5, &GapConfig::default(), 12).unwrap();
        assert!(result.chosen_k <= 2, "chose {}", result.chosen_k);
    }
}
