//! Statistics toolkit for the S³ WLAN load-balancing reproduction.
//!
//! Everything in the paper's measurement-analysis section (Section III) and
//! the evaluation metrics (Section V) reduce to a handful of statistical
//! primitives, all implemented here with no dependencies beyond `rand`:
//!
//! * [`balance`] — the Chiu–Jain balance index over per-AP throughput, its
//!   normalized form, and the variance-of-balance series `S` of Fig. 3;
//! * [`cdf`] — empirical CDFs, quantiles and histograms (Figs. 2, 3, 5);
//! * [`entropy`] — entropy, mutual information and the quantized NMI
//!   estimator behind Fig. 6;
//! * [`kmeans`] — k-means++ / Lloyd clustering of user app profiles (Fig. 8);
//! * [`gap`] — the Tibshirani gap statistic for choosing `k` (Fig. 7);
//! * [`summary`] — means, variances and 95 % confidence intervals (Fig. 12's
//!   error bars);
//! * [`rng`] — seedable samplers (normal, log-normal, exponential, Poisson,
//!   Zipf) used by the synthetic trace generator.
//!
//! # Example
//!
//! ```
//! use s3_stats::balance::{balance_index, normalized_balance_index};
//!
//! // Perfectly even load → index 1; all load on one AP of four → minimum.
//! assert!((balance_index(&[5.0, 5.0, 5.0, 5.0]).unwrap() - 1.0).abs() < 1e-12);
//! let b = balance_index(&[10.0, 0.0, 0.0, 0.0]).unwrap();
//! assert!((b - 0.25).abs() < 1e-12);
//! assert!(normalized_balance_index(&[10.0, 0.0, 0.0, 0.0]).unwrap() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod balance;
pub mod cdf;
pub mod correlation;
pub mod entropy;
pub mod gap;
pub mod kmeans;
pub mod linalg;
pub mod rng;
pub mod summary;

mod error;

pub use error::StatsError;
