//! The acceptance criterion of the parallel execution layer: experiment
//! output is byte-identical at `--threads 1` and `--threads 8`. These
//! tests reproduce the figure drivers' fan-out shapes on a tiny campus
//! and compare the exact CSV text both would write.

use s3_bench::{fmt, Scenario};
use s3_core::{S3Config, S3Selector};
use s3_trace::generator::CampusConfig;
use s3_types::TimeDelta;
use s3_wlan::metrics::mean_active_balance_filtered;
use s3_wlan::selector::LeastLoadedFirst;

/// The fig10 grid computation, verbatim except for the grid size: returns
/// the CSV body that `write_csv` would receive.
fn fig10_style_csv(scenario: &Scenario, threads: usize, seed: u64) -> String {
    let windows_min = [3u64, 5];
    let alphas = [0.1, 0.3];
    let bin = TimeDelta::minutes(10);
    let grid: Vec<(u64, f64)> = windows_min
        .iter()
        .flat_map(|&w| alphas.iter().map(move |&alpha| (w, alpha)))
        .collect();
    let balances = s3_par::par_map(&grid, threads, |_, &(w, alpha)| {
        let config = S3Config {
            alpha,
            coleave_window: TimeDelta::minutes(w),
            fixed_k: Some(4),
            ..S3Config::default()
        };
        let model = scenario.train_s3(&config, seed);
        let mut s3 = S3Selector::new(model, config);
        let log = scenario.run_eval(&mut s3);
        mean_active_balance_filtered(&log, bin, |h| h >= 8).unwrap_or(0.0)
    });
    let mut rows = Vec::new();
    for (wi, &w) in windows_min.iter().enumerate() {
        let mut cells = vec![w.to_string()];
        for (ai, _) in alphas.iter().enumerate() {
            cells.push(fmt(balances[wi * alphas.len() + ai]));
        }
        rows.push(cells.join(","));
    }
    rows.join("\n")
}

#[test]
fn fig10_style_sweep_csv_is_byte_identical_across_thread_counts() {
    let scenario = Scenario::from_config(CampusConfig::tiny(), 42);
    let csv_1 = fig10_style_csv(&scenario, 1, 42);
    let csv_8 = fig10_style_csv(&scenario, 8, 42);
    assert_eq!(csv_1, csv_8);
}

/// The fig12 shape: the two policy replays run as one fan-out. The full
/// session logs (not just the summary CSV) must be identical.
#[test]
fn fig12_style_paired_runs_are_identical_across_thread_counts() {
    let scenario = Scenario::from_config(CampusConfig::tiny(), 7);
    let run = |threads: usize| {
        s3_par::par_map(&[false, true], threads, |_, &use_s3| {
            if use_s3 {
                let mut s3 = scenario.default_s3(7);
                scenario.run_eval(&mut s3)
            } else {
                scenario.run_eval(&mut LeastLoadedFirst::new())
            }
        })
    };
    let seq = run(1);
    let par = run(8);
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.records(), b.records());
    }
}
