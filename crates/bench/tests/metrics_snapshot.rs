//! Acceptance test for the observability layer: a figure binary's stable
//! metrics snapshot is **byte-identical** across thread counts for a fixed
//! seed. Runs the real `fig2` executable (one process per thread count —
//! the registry is process-wide, so in-process runs would accumulate).

use std::path::PathBuf;
use std::process::Command;

fn run_fig2(threads: usize, out_dir: &std::path::Path, metrics: &std::path::Path) {
    let status = Command::new(env!("CARGO_BIN_EXE_fig2"))
        .args([
            "--seed",
            "42",
            "--threads",
            &threads.to_string(),
            "--out",
            &out_dir.display().to_string(),
            "--metrics-out",
            &metrics.display().to_string(),
        ])
        .status()
        .expect("launch fig2");
    assert!(status.success(), "fig2 --threads {threads} failed");
}

#[test]
fn fig2_metrics_snapshot_is_byte_identical_across_thread_counts() {
    let dir = std::env::temp_dir().join("s3_bench_metrics_snapshot");
    std::fs::create_dir_all(&dir).unwrap();
    let cases: Vec<(usize, PathBuf)> = [1usize, 8]
        .iter()
        .map(|&t| (t, dir.join(format!("metrics_t{t}.json"))))
        .collect();
    for (threads, metrics) in &cases {
        run_fig2(*threads, &dir.join(format!("out_t{threads}")), metrics);
    }
    let snap_1 = std::fs::read_to_string(&cases[0].1).unwrap();
    let snap_8 = std::fs::read_to_string(&cases[1].1).unwrap();
    assert!(
        snap_1.contains(s3_obs::SCHEMA_VERSION),
        "snapshot is schema-versioned: {snap_1}"
    );
    assert_eq!(
        snap_1, snap_8,
        "stable snapshot must not depend on the thread count"
    );

    // The snapshot is well-formed: it parses and covers the replay engine.
    let parsed = s3_obs::Snapshot::parse_json(&snap_1).unwrap();
    assert!(parsed.get("wlan.engine.runs").is_some());
    assert!(parsed.get("wlan.metrics.balance_samples").is_some());
    // Volatile metrics (wall-clock timers, worker-spawn counts) are
    // excluded from the default snapshot.
    assert!(parsed.get("wlan.engine.run_micros").is_none());
    assert!(parsed.get("par.workers_spawned").is_none());
}
