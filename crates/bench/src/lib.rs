//! Shared experiment harness for the figure/table reproduction binaries.
//!
//! Every `fig*`/`table1` binary follows the same protocol as the paper's
//! evaluation (Section V-A):
//!
//! 1. generate a campus trace (default scale, or `--paper-scale`);
//! 2. replay the whole trace under **LLF** — this plays the role of the
//!    SJTU log, which was collected under the state-of-the-art policy;
//! 3. train S³ on the *training days* of that log (everything except the
//!    last [`EVAL_DAYS`] days);
//! 4. evaluate policies on the *evaluation days* and write a CSV per
//!    figure into `results/`.
//!
//! Binaries share CLI flags: `--paper-scale`, `--seed <u64>`,
//! `--out <dir>` (default `results`), `--threads <n>`,
//! `--metrics-out <path>` and `--metrics-full` (see `docs/METRICS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plot;

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use s3_core::{S3Config, S3Selector, SocialModel};
use s3_trace::generator::{Campus, CampusConfig, CampusGenerator};
use s3_trace::{SessionDemand, TraceStore};
use s3_wlan::selector::{ApSelector, LeastLoadedFirst};
use s3_wlan::{SimConfig, SimEngine, Topology};

/// Days reserved at the end of the trace for evaluation (the paper holds
/// out July 25–27: three days).
pub const EVAL_DAYS: u64 = 3;

/// Parsed command-line flags shared by all experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Run at the paper's reported scale (22 buildings / 12,374 users /
    /// 90 days) instead of the fast default campus.
    pub paper_scale: bool,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Worker threads (`0` = auto). Every parallel path is deterministic:
    /// the CSVs are byte-identical for any value.
    pub threads: usize,
    /// Optional metrics-snapshot destination (`.json` or `.csv`), written
    /// at end of run by [`Args::write_metrics`].
    pub metrics_out: Option<PathBuf>,
    /// Include volatile (timing) metrics in the snapshot. Off by default so
    /// the snapshot is byte-identical across thread counts.
    pub metrics_full: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            paper_scale: false,
            seed: 42,
            out_dir: PathBuf::from("results"),
            threads: 0,
            metrics_out: None,
            metrics_full: false,
        }
    }
}

impl Args {
    /// Parses `std::env::args()`. Unknown flags abort with a usage message.
    pub fn parse() -> Args {
        let mut args = Args::default();
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--paper-scale" => args.paper_scale = true,
                "--seed" => {
                    let value = iter.next().unwrap_or_else(|| usage("--seed needs a value"));
                    args.seed = value
                        .parse()
                        .unwrap_or_else(|_| usage("--seed must be a u64"));
                }
                "--out" => {
                    let value = iter.next().unwrap_or_else(|| usage("--out needs a value"));
                    args.out_dir = PathBuf::from(value);
                }
                "--threads" => {
                    let value = iter
                        .next()
                        .unwrap_or_else(|| usage("--threads needs a value"));
                    args.threads = value
                        .parse()
                        .unwrap_or_else(|_| usage("--threads must be a usize"));
                }
                "--metrics-out" => {
                    let value = iter
                        .next()
                        .unwrap_or_else(|| usage("--metrics-out needs a value"));
                    args.metrics_out = Some(PathBuf::from(value));
                }
                "--metrics-full" => args.metrics_full = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other:?}")),
            }
        }
        args
    }

    /// Dumps the global metrics registry to `--metrics-out` (if given),
    /// stable metrics only unless `--metrics-full`. Call at end of `main`
    /// so the snapshot covers the whole run.
    ///
    /// # Panics
    ///
    /// Panics on snapshot I/O failure — experiment binaries die loudly.
    pub fn write_metrics(&self) {
        let Some(path) = &self.metrics_out else {
            return;
        };
        let snapshot = s3_obs::global().snapshot();
        let snapshot = if self.metrics_full {
            snapshot
        } else {
            snapshot.stable_only()
        };
        snapshot
            .write_to_file(path)
            .expect("write metrics snapshot");
        println!(
            "wrote {} metrics to {}",
            snapshot.metrics.len(),
            path.display()
        );
    }

    /// The effective worker-thread count: `--threads` if given, else the
    /// `S3_THREADS` environment variable, else all available cores.
    pub fn effective_threads(&self) -> usize {
        s3_par::resolve_threads(Some(self.threads).filter(|&t| t > 0))
    }

    /// The campus configuration selected by the flags.
    pub fn campus_config(&self) -> CampusConfig {
        if self.paper_scale {
            CampusConfig::paper_scale()
        } else {
            CampusConfig::campus()
        }
    }
}

fn usage(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!(
        "usage: <experiment> [--paper-scale] [--seed <u64>] [--out <dir>] [--threads <n>] \
         [--metrics-out <m.json|m.csv>] [--metrics-full]"
    );
    std::process::exit(if message.is_empty() { 0 } else { 2 });
}

/// A fully prepared experiment scenario.
pub struct Scenario {
    /// The generated campus (demands + ground truth).
    pub campus: Campus,
    /// The WLAN topology.
    pub topology: Topology,
    /// The replay engine.
    pub engine: SimEngine,
    /// The whole trace replayed under LLF (the "collected log").
    pub llf_log: TraceStore,
}

impl Scenario {
    /// Builds the scenario for `args`: generates the campus and replays it
    /// once under LLF.
    pub fn build(args: &Args) -> Scenario {
        Scenario::from_config(args.campus_config(), args.seed)
    }

    /// Builds a scenario from an explicit campus configuration.
    pub fn from_config(config: CampusConfig, seed: u64) -> Scenario {
        let campus = CampusGenerator::new(config, seed).generate();
        let topology = Topology::from_campus(&campus.config);
        let engine = SimEngine::new(topology.clone(), SimConfig::default());
        let llf = engine.run(&campus.demands, &mut LeastLoadedFirst::new());
        Scenario {
            campus,
            topology,
            engine,
            llf_log: TraceStore::new(llf.records),
        }
    }

    /// Last training day (inclusive).
    pub fn train_last_day(&self) -> u64 {
        self.campus.config.days.saturating_sub(EVAL_DAYS + 1)
    }

    /// First evaluation day.
    pub fn eval_first_day(&self) -> u64 {
        self.train_last_day() + 1
    }

    /// Last evaluation day (inclusive).
    pub fn eval_last_day(&self) -> u64 {
        self.campus.config.days.saturating_sub(1)
    }

    /// The training slice of the LLF log.
    pub fn training_log(&self) -> TraceStore {
        self.llf_log.slice_days(0, self.train_last_day())
    }

    /// Demands whose arrival falls in the evaluation window.
    pub fn eval_demands(&self) -> Vec<SessionDemand> {
        let first = self.eval_first_day();
        let last = self.eval_last_day();
        self.campus
            .demands
            .iter()
            .filter(|d| {
                let day = d.arrive.day();
                day >= first && day <= last
            })
            .cloned()
            .collect()
    }

    /// Replays the evaluation demands under `selector` and returns the
    /// resulting log.
    pub fn run_eval(&self, selector: &mut dyn ApSelector) -> TraceStore {
        TraceStore::new(self.engine.run(&self.eval_demands(), selector).records)
    }

    /// Trains an S³ model on the training log under `config`.
    pub fn train_s3(&self, config: &S3Config, seed: u64) -> SocialModel {
        SocialModel::learn(&self.training_log(), config, seed)
    }

    /// Convenience: trained selector with the paper's default parameters.
    pub fn default_s3(&self, seed: u64) -> S3Selector {
        let config = S3Config::default();
        let model = self.train_s3(&config, seed);
        S3Selector::new(model, config)
    }
}

/// Writes a CSV file: a header line plus one line per row. Creates the
/// directory if needed and echoes the path to stdout.
///
/// # Panics
///
/// Panics on I/O failure — experiment binaries should die loudly.
pub fn write_csv<I>(dir: &Path, name: &str, header: &str, rows: I) -> PathBuf
where
    I: IntoIterator<Item = String>,
{
    fs::create_dir_all(dir).expect("create results directory");
    let path = dir.join(name);
    let mut file = fs::File::create(&path).expect("create csv file");
    writeln!(file, "{header}").expect("write header");
    for row in rows {
        writeln!(file, "{row}").expect("write row");
    }
    println!("wrote {}", path.display());
    path
}

/// Formats a float with fixed precision for CSV output.
pub fn fmt(value: f64) -> String {
    format!("{value:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_trace::generator::CampusConfig;

    fn tiny_scenario() -> Scenario {
        Scenario::from_config(
            CampusConfig {
                days: 6,
                ..CampusConfig::tiny()
            },
            1,
        )
    }

    #[test]
    fn day_split_arithmetic() {
        let s = tiny_scenario();
        assert_eq!(s.train_last_day(), 2);
        assert_eq!(s.eval_first_day(), 3);
        assert_eq!(s.eval_last_day(), 5);
    }

    #[test]
    fn training_log_excludes_eval_days() {
        let s = tiny_scenario();
        let train = s.training_log();
        // slice_days filters by *connect* day; a session may legitimately
        // disconnect past the boundary (crossing midnight into eval days).
        for r in train.records() {
            assert!(r.connect.day() <= s.train_last_day());
        }
        for d in s.eval_demands() {
            assert!(d.arrive.day() >= s.eval_first_day());
        }
    }

    #[test]
    fn eval_run_produces_eval_sessions_only() {
        let s = tiny_scenario();
        let mut llf = LeastLoadedFirst::new();
        let log = s.run_eval(&mut llf);
        assert_eq!(log.len(), s.eval_demands().len());
    }

    #[test]
    fn default_s3_trains() {
        let s = tiny_scenario();
        let s3 = s.default_s3(7);
        assert_eq!(s3.name(), "s3");
    }

    #[test]
    fn csv_writer_round_trips() {
        let dir = std::env::temp_dir().join("s3_bench_test_csv");
        let path = write_csv(
            &dir,
            "t.csv",
            "a,b",
            vec!["1,2".to_string(), "3,4".to_string()],
        );
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(0.5), "0.500000");
    }
}
