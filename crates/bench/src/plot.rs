//! A small dependency-free SVG chart renderer.
//!
//! Every experiment binary writes its series as CSV *and* renders an SVG
//! figure next to it, so a reproduction run ends with actual figures to put
//! beside the paper's. Two chart shapes cover everything the paper plots:
//! line/CDF charts ([`line_chart`]) and grouped bar charts with error bars
//! ([`bar_chart`]).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Chart frame and labels.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartConfig {
    /// Title above the plot.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Total width in pixels.
    pub width: u32,
    /// Total height in pixels.
    pub height: u32,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            width: 640,
            height: 420,
        }
    }
}

const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 18.0;
const MARGIN_TOP: f64 = 36.0;
const MARGIN_BOTTOM: f64 = 52.0;
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

/// "Nice" tick positions covering `[lo, hi]` (1/2/5 × 10ᵏ steps).
pub fn ticks(lo: f64, hi: f64, target: usize) -> Vec<f64> {
    if !(lo.is_finite() && hi.is_finite()) || hi <= lo || target == 0 {
        return vec![lo];
    }
    let raw_step = (hi - lo) / target as f64;
    let magnitude = 10f64.powf(raw_step.log10().floor());
    let candidates = [1.0, 2.0, 5.0, 10.0];
    let step = candidates
        .iter()
        .map(|c| c * magnitude)
        .find(|s| (hi - lo) / s <= target as f64)
        .unwrap_or(10.0 * magnitude);
    let start = (lo / step).ceil() * step;
    let mut out = Vec::new();
    let mut t = start;
    while t <= hi + step * 1e-9 {
        // Snap tiny float noise to zero.
        out.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
        t += step;
    }
    if out.is_empty() {
        out.push(lo);
    }
    out
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if a >= 1_000_000.0 {
        format!("{:.1}M", v / 1e6)
    } else if a >= 10_000.0 {
        format!("{:.0}k", v / 1e3)
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

struct Frame {
    x0: f64,
    y0: f64,
    w: f64,
    h: f64,
    min_x: f64,
    max_x: f64,
    min_y: f64,
    max_y: f64,
}

impl Frame {
    fn map(&self, x: f64, y: f64) -> (f64, f64) {
        let fx = if self.max_x > self.min_x {
            (x - self.min_x) / (self.max_x - self.min_x)
        } else {
            0.5
        };
        let fy = if self.max_y > self.min_y {
            (y - self.min_y) / (self.max_y - self.min_y)
        } else {
            0.5
        };
        (self.x0 + fx * self.w, self.y0 + self.h - fy * self.h)
    }
}

fn chart_header(svg: &mut String, config: &ChartConfig) {
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#,
        w = config.width,
        h = config.height
    );
    let _ = write!(
        svg,
        r#"<rect width="{}" height="{}" fill="white"/>"#,
        config.width, config.height
    );
    if !config.title.is_empty() {
        let _ = write!(
            svg,
            r#"<text x="{}" y="20" text-anchor="middle" font-size="14" font-weight="bold">{}</text>"#,
            config.width / 2,
            esc(&config.title)
        );
    }
}

fn chart_axes(svg: &mut String, config: &ChartConfig, frame: &Frame, draw_x_ticks: bool) {
    // Axis lines.
    let _ = write!(
        svg,
        r#"<line x1="{x0}" y1="{y1}" x2="{x1}" y2="{y1}" stroke="black"/><line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>"#,
        x0 = frame.x0,
        x1 = frame.x0 + frame.w,
        y0 = frame.y0,
        y1 = frame.y0 + frame.h
    );
    // Ticks.
    let x_ticks = if draw_x_ticks {
        ticks(frame.min_x, frame.max_x, 6)
    } else {
        Vec::new()
    };
    for t in x_ticks {
        let (px, _) = frame.map(t, frame.min_y);
        let _ = write!(
            svg,
            r#"<line x1="{px}" y1="{y}" x2="{px}" y2="{y2}" stroke="black"/><text x="{px}" y="{ty}" text-anchor="middle">{label}</text>"#,
            y = frame.y0 + frame.h,
            y2 = frame.y0 + frame.h + 4.0,
            ty = frame.y0 + frame.h + 18.0,
            label = fmt_tick(t)
        );
    }
    for t in ticks(frame.min_y, frame.max_y, 6) {
        let (_, py) = frame.map(frame.min_x, t);
        let _ = write!(
            svg,
            r#"<line x1="{x2}" y1="{py}" x2="{x}" y2="{py}" stroke="black"/><text x="{tx}" y="{ty}" text-anchor="end">{label}</text>"#,
            x = frame.x0,
            x2 = frame.x0 - 4.0,
            tx = frame.x0 - 8.0,
            ty = py + 4.0,
            label = fmt_tick(t)
        );
        // Light gridline.
        let _ = write!(
            svg,
            r##"<line x1="{x0}" y1="{py}" x2="{x1}" y2="{py}" stroke="#dddddd" stroke-width="0.5"/>"##,
            x0 = frame.x0,
            x1 = frame.x0 + frame.w
        );
    }
    // Axis labels.
    if !config.x_label.is_empty() {
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            frame.x0 + frame.w / 2.0,
            frame.y0 + frame.h + 38.0,
            esc(&config.x_label)
        );
    }
    if !config.y_label.is_empty() {
        let cx = 16.0;
        let cy = frame.y0 + frame.h / 2.0;
        let _ = write!(
            svg,
            r#"<text x="{cx}" y="{cy}" text-anchor="middle" transform="rotate(-90 {cx} {cy})">{}</text>"#,
            esc(&config.y_label)
        );
    }
}

fn legend(svg: &mut String, frame: &Frame, labels: &[&str]) {
    let mut y = frame.y0 + 6.0;
    for (i, label) in labels.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let x = frame.x0 + frame.w - 130.0;
        let _ = write!(
            svg,
            r#"<line x1="{x}" y1="{ly}" x2="{x2}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{tx}" y="{ty}">{label}</text>"#,
            x2 = x + 22.0,
            ly = y + 4.0,
            tx = x + 28.0,
            ty = y + 8.0,
            label = esc(label)
        );
        y += 16.0;
    }
}

/// Renders a multi-series line chart (also used for CDFs).
///
/// Series with fewer than one point are skipped; an entirely empty chart
/// still renders a valid frame.
pub fn line_chart(config: &ChartConfig, series: &[Series]) -> String {
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for s in series {
        for &(x, y) in &s.points {
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
    }
    if !min_x.is_finite() {
        min_x = 0.0;
        max_x = 1.0;
        min_y = 0.0;
        max_y = 1.0;
    }
    if max_y == min_y {
        max_y = min_y + 1.0;
    }
    if max_x == min_x {
        max_x = min_x + 1.0;
    }
    let frame = Frame {
        x0: MARGIN_LEFT,
        y0: MARGIN_TOP,
        w: config.width as f64 - MARGIN_LEFT - MARGIN_RIGHT,
        h: config.height as f64 - MARGIN_TOP - MARGIN_BOTTOM,
        min_x,
        max_x,
        min_y,
        max_y,
    };
    let mut svg = String::new();
    chart_header(&mut svg, config);
    chart_axes(&mut svg, config, &frame, true);
    for (i, s) in series.iter().enumerate() {
        if s.points.is_empty() {
            continue;
        }
        let color = PALETTE[i % PALETTE.len()];
        let mut path = String::new();
        for (j, &(x, y)) in s.points.iter().enumerate() {
            let (px, py) = frame.map(x, y);
            let _ = write!(path, "{}{px:.1},{py:.1} ", if j == 0 { "M" } else { "L" });
        }
        let _ = write!(
            svg,
            r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="1.8"/>"#
        );
    }
    let labels: Vec<&str> = series.iter().map(|s| s.label.as_str()).collect();
    legend(&mut svg, &frame, &labels);
    svg.push_str("</svg>");
    svg
}

/// One group of bars (e.g. one policy) across all categories.
#[derive(Debug, Clone, PartialEq)]
pub struct BarGroup {
    /// Legend label.
    pub label: String,
    /// One value per category.
    pub values: Vec<f64>,
    /// Optional symmetric error-bar half-widths, parallel to `values`.
    pub errors: Option<Vec<f64>>,
}

/// Renders a grouped bar chart with optional error bars (Fig. 12's shape).
///
/// # Panics
///
/// Panics if any group's `values` length differs from `categories`.
pub fn bar_chart(config: &ChartConfig, categories: &[String], groups: &[BarGroup]) -> String {
    for g in groups {
        assert_eq!(
            g.values.len(),
            categories.len(),
            "group {} has {} values for {} categories",
            g.label,
            g.values.len(),
            categories.len()
        );
    }
    let max_y = groups
        .iter()
        .flat_map(|g| {
            g.values
                .iter()
                .enumerate()
                .map(|(i, &v)| v + g.errors.as_ref().map(|e| e[i]).unwrap_or(0.0))
        })
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let frame = Frame {
        x0: MARGIN_LEFT,
        y0: MARGIN_TOP,
        w: config.width as f64 - MARGIN_LEFT - MARGIN_RIGHT,
        h: config.height as f64 - MARGIN_TOP - MARGIN_BOTTOM,
        min_x: 0.0,
        max_x: categories.len() as f64,
        min_y: 0.0,
        max_y: max_y * 1.05,
    };
    let mut svg = String::new();
    chart_header(&mut svg, config);
    // Only the y axis gets numeric ticks; categories label the x axis.
    chart_axes(&mut svg, config, &frame, false);
    let slot = frame.w / categories.len() as f64;
    let bar = (slot * 0.8) / groups.len().max(1) as f64;
    for (ci, category) in categories.iter().enumerate() {
        let base_x = frame.x0 + ci as f64 * slot + slot * 0.1;
        for (gi, g) in groups.iter().enumerate() {
            let color = PALETTE[gi % PALETTE.len()];
            let v = g.values[ci];
            let (_, top) = frame.map(0.0, v);
            let x = base_x + gi as f64 * bar;
            let height = frame.y0 + frame.h - top;
            let _ = write!(
                svg,
                r#"<rect x="{x:.1}" y="{top:.1}" width="{bw:.1}" height="{height:.1}" fill="{color}"/>"#,
                bw = bar * 0.92
            );
            if let Some(errors) = &g.errors {
                let e = errors[ci];
                let (_, hi) = frame.map(0.0, v + e);
                let (_, lo) = frame.map(0.0, (v - e).max(0.0));
                let cx = x + bar * 0.46;
                let _ = write!(
                    svg,
                    r#"<line x1="{cx:.1}" y1="{hi:.1}" x2="{cx:.1}" y2="{lo:.1}" stroke="black"/><line x1="{x1:.1}" y1="{hi:.1}" x2="{x2:.1}" y2="{hi:.1}" stroke="black"/><line x1="{x1:.1}" y1="{lo:.1}" x2="{x2:.1}" y2="{lo:.1}" stroke="black"/>"#,
                    x1 = cx - 3.0,
                    x2 = cx + 3.0
                );
            }
        }
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
            base_x + slot * 0.4,
            frame.y0 + frame.h + 18.0,
            esc(category)
        );
    }
    let labels: Vec<&str> = groups.iter().map(|g| g.label.as_str()).collect();
    legend(&mut svg, &frame, &labels);
    svg.push_str("</svg>");
    svg
}

/// Writes an SVG next to the experiment's CSV and echoes the path.
///
/// # Panics
///
/// Panics on I/O failure (experiment binaries die loudly).
pub fn save_svg(dir: &Path, name: &str, svg: &str) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create results directory");
    let path = dir.join(name);
    std::fs::write(&path, svg).expect("write svg");
    println!("wrote {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ChartConfig {
        ChartConfig {
            title: "Test".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            ..ChartConfig::default()
        }
    }

    #[test]
    fn ticks_are_nice_and_cover_range() {
        let t = ticks(0.0, 1.0, 6);
        assert_eq!(t, vec![0.0, 0.2, 0.4, 0.6000000000000001, 0.8, 1.0]);
        let t = ticks(0.0, 97.0, 6);
        assert!(t.len() >= 3 && t.len() <= 7);
        assert!(t.iter().all(|&v| (0.0..=97.0).contains(&v)));
        // Degenerate inputs don't panic.
        assert_eq!(ticks(1.0, 1.0, 5), vec![1.0]);
        assert_eq!(ticks(f64::NAN, 1.0, 5).len(), 1);
    }

    #[test]
    fn line_chart_contains_series_and_labels() {
        let svg = line_chart(
            &config(),
            &[
                Series::new("llf", vec![(0.0, 0.1), (1.0, 0.5), (2.0, 0.4)]),
                Series::new("s3", vec![(0.0, 0.3), (1.0, 0.8), (2.0, 0.9)]),
            ],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("llf"));
        assert!(svg.contains("s3"));
        assert!(svg.contains("Test"));
        assert!(svg.matches("<path").count() == 2);
    }

    #[test]
    fn empty_chart_still_renders_frame() {
        let svg = line_chart(&config(), &[]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("<line"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let svg = line_chart(
            &config(),
            &[Series::new("flat", vec![(0.0, 0.5), (1.0, 0.5)])],
        );
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn bar_chart_draws_bars_and_error_bars() {
        let svg = bar_chart(
            &config(),
            &["d1".into(), "d2".into()],
            &[
                BarGroup {
                    label: "llf".into(),
                    values: vec![0.5, 0.6],
                    errors: Some(vec![0.05, 0.04]),
                },
                BarGroup {
                    label: "s3".into(),
                    values: vec![0.8, 0.75],
                    errors: None,
                },
            ],
        );
        assert_eq!(svg.matches("<rect").count(), 1 + 4, "background + 4 bars");
        assert!(svg.contains("d1") && svg.contains("d2"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "values for")]
    fn bar_chart_rejects_ragged_groups() {
        let _ = bar_chart(
            &config(),
            &["a".into()],
            &[BarGroup {
                label: "x".into(),
                values: vec![1.0, 2.0],
                errors: None,
            }],
        );
    }

    #[test]
    fn escaping_prevents_markup_injection() {
        let svg = line_chart(
            &ChartConfig {
                title: "<script>".into(),
                ..config()
            },
            &[Series::new("a&b", vec![(0.0, 1.0), (1.0, 2.0)])],
        );
        assert!(!svg.contains("<script>"));
        assert!(svg.contains("&lt;script&gt;"));
        assert!(svg.contains("a&amp;b"));
    }
}
