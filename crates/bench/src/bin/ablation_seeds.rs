//! Ablation (not a paper figure): robustness of the headline gain across
//! random campuses. A result that held for one seed only would be noise;
//! this runs the full fig12 pipeline over several seeds and reports the
//! distribution of the S³-over-LLF gain.

use s3_bench::{fmt, write_csv, Args, Scenario};
use s3_stats::summary::Summary;
use s3_types::TimeDelta;
use s3_wlan::metrics::mean_active_balance_filtered;
use s3_wlan::selector::LeastLoadedFirst;

fn main() {
    let args = Args::parse();
    let bin = TimeDelta::minutes(10);
    let daytime = |h: u64| h >= 8;
    let seeds: Vec<u64> = (0..5).map(|i| args.seed + i * 1_001).collect();

    println!(
        "seed-robustness ablation: fig12 pipeline over {} seeds",
        seeds.len()
    );
    let mut gains = Vec::new();
    let mut rows = Vec::new();
    for &seed in &seeds {
        let scenario = Scenario::from_config(args.campus_config(), seed);
        let llf_log = scenario.run_eval(&mut LeastLoadedFirst::new());
        let mut s3 = scenario.default_s3(seed);
        let s3_log = scenario.run_eval(&mut s3);
        let llf = mean_active_balance_filtered(&llf_log, bin, daytime).unwrap_or(0.0);
        let s3b = mean_active_balance_filtered(&s3_log, bin, daytime).unwrap_or(0.0);
        let gain = if llf > 0.0 { (s3b - llf) / llf } else { 0.0 };
        println!(
            "  seed {seed}: LLF {llf:.4} | S3 {s3b:.4} | gain {:+.1}%",
            gain * 100.0
        );
        gains.push(gain);
        rows.push(format!("{seed},{},{},{}", fmt(llf), fmt(s3b), fmt(gain)));
    }
    let summary = Summary::of(&gains).expect("seeds ran");
    println!(
        "  gain across seeds: {:+.1}% ± {:.1}% (95% CI), min {:+.1}%, max {:+.1}%",
        summary.mean() * 100.0,
        summary.ci95_half_width() * 100.0,
        summary.min() * 100.0,
        summary.max() * 100.0
    );
    if summary.min() <= 0.0 {
        println!("  WARNING: S3 lost to LLF on at least one seed");
    }
    write_csv(
        &args.out_dir,
        "ablation_seeds.csv",
        "seed,llf_balance,s3_balance,s3_gain",
        rows,
    );
    args.write_metrics();
}
