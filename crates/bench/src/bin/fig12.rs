//! Fig. 12 — S³ vs LLF: mean normalized balance index per controller
//! domain with 95 % confidence error bars, plus the hourly profile.
//!
//! Paper reading: S³ outperforms LLF nearly everywhere — about 41.2 % mean
//! gain, about 52.1 % during the leave-peaks (12:00–13:00, 16:00–17:50,
//! 21:00–22:00), and 72.1 % narrower error bars (stability).

use s3_bench::{fmt, plot, write_csv, Args, Scenario};
use s3_stats::summary::{relative_gain, Summary};
use s3_trace::generator::is_leave_peak_hour;
use s3_types::TimeDelta;
use s3_wlan::metrics::{balance_samples, mean_active_balance_filtered};
use s3_wlan::selector::LeastLoadedFirst;

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);
    let bin = TimeDelta::minutes(10);

    // Evaluate both policies on the same demand stream. The paired runs
    // are independent replays of the shared scenario, so they execute
    // concurrently (the S3 leg includes its training pass).
    let seed = args.seed;
    let mut logs = s3_par::par_map(&[false, true], args.effective_threads(), |_, &use_s3| {
        if use_s3 {
            let mut s3 = scenario.default_s3(seed);
            scenario.run_eval(&mut s3)
        } else {
            scenario.run_eval(&mut LeastLoadedFirst::new())
        }
    });
    let s3_log = logs.pop().expect("two policy runs");
    let llf_log = logs.pop().expect("two policy runs");

    // Per-controller summaries (the bar chart with error bars).
    let llf_samples = balance_samples(&llf_log, bin);
    let s3_samples = balance_samples(&s3_log, bin);
    let controllers = llf_log.controllers();
    let mut rows = Vec::new();
    let mut llf_means = Vec::new();
    let mut s3_means = Vec::new();
    let mut llf_cis = Vec::new(); // per-domain, for the bar chart CSV
    let mut s3_cis = Vec::new();
    println!("fig12: S3 vs LLF per controller domain");
    for (idx, &controller) in controllers.iter().enumerate() {
        // The paper's Fig. 12 plots daytime (8:00–24:00); sparse night bins
        // carry one or two sessions and only add noise.
        let pick = |samples: &[s3_wlan::metrics::BalanceSample]| -> Vec<f64> {
            samples
                .iter()
                .filter(|s| s.controller == controller && s.active && s.start.hour_of_day() >= 8)
                .map(|s| s.value)
                .collect()
        };
        let (Ok(l), Ok(s)) = (
            Summary::of(&pick(&llf_samples)),
            Summary::of(&pick(&s3_samples)),
        ) else {
            continue;
        };
        println!(
            "  domain {}: LLF {:.3} ± {:.3} | S3 {:.3} ± {:.3}",
            idx + 1,
            l.mean(),
            l.ci95_half_width(),
            s.mean(),
            s.ci95_half_width()
        );
        llf_means.push(l.mean());
        s3_means.push(s.mean());
        llf_cis.push(l.ci95_half_width());
        s3_cis.push(s.ci95_half_width());
        rows.push(format!(
            "{},{},{},{},{}",
            idx + 1,
            fmt(l.mean()),
            fmt(l.ci95_half_width()),
            fmt(s.mean()),
            fmt(s.ci95_half_width())
        ));
    }
    write_csv(
        &args.out_dir,
        "fig12_domains.csv",
        "domain,llf_mean,llf_ci95,s3_mean,s3_ci95",
        rows,
    );
    let categories: Vec<String> = (1..=llf_means.len()).map(|i| format!("d{i}")).collect();
    let svg = plot::bar_chart(
        &plot::ChartConfig {
            title: "Fig 12: mean balance per controller domain".into(),
            x_label: "controller domain".into(),
            y_label: "normalized balance index".into(),
            ..plot::ChartConfig::default()
        },
        &categories,
        &[
            plot::BarGroup {
                label: "LLF".into(),
                values: llf_means.clone(),
                errors: Some(llf_cis.clone()),
            },
            plot::BarGroup {
                label: "S3".into(),
                values: s3_means.clone(),
                errors: Some(s3_cis.clone()),
            },
        ],
    );
    plot::save_svg(&args.out_dir, "fig12_domains.svg", &svg);

    // Hourly profile (the time-of-day curve the paper plots, with a 95 %
    // CI per hour computed across (controller, day) means).
    let hourly_stats =
        |samples: &[s3_wlan::metrics::BalanceSample], hour: u64| -> Option<Summary> {
            let mut per_group: std::collections::HashMap<(u32, u64), (f64, u32)> =
                std::collections::HashMap::new();
            for s in samples {
                if s.active && s.start.hour_of_day() == hour {
                    let e = per_group
                        .entry((s.controller.raw(), s.start.day()))
                        .or_insert((0.0, 0));
                    e.0 += s.value;
                    e.1 += 1;
                }
            }
            let means: Vec<f64> = per_group.values().map(|&(sum, n)| sum / n as f64).collect();
            Summary::of(&means).ok()
        };
    let mut hourly_rows = Vec::new();
    let mut llf_hour_cis = Vec::new();
    let mut s3_hour_cis = Vec::new();
    for hour in 8..24u64 {
        let (Some(l), Some(s)) = (
            hourly_stats(&llf_samples, hour),
            hourly_stats(&s3_samples, hour),
        ) else {
            continue;
        };
        llf_hour_cis.push(l.ci95_half_width());
        s3_hour_cis.push(s.ci95_half_width());
        hourly_rows.push(format!(
            "{hour},{},{},{},{}",
            fmt(l.mean()),
            fmt(l.ci95_half_width()),
            fmt(s.mean()),
            fmt(s.ci95_half_width())
        ));
    }
    write_csv(
        &args.out_dir,
        "fig12_hourly.csv",
        "hour,llf_balance,llf_ci95,s3_balance,s3_ci95",
        hourly_rows.clone(),
    );
    let parse_col = |col: usize| -> Vec<(f64, f64)> {
        hourly_rows
            .iter()
            .map(|row| {
                let cells: Vec<&str> = row.split(',').collect();
                (cells[0].parse().unwrap(), cells[col].parse().unwrap())
            })
            .collect()
    };
    let svg = plot::line_chart(
        &plot::ChartConfig {
            title: "Fig 12: hourly balance, S3 vs LLF".into(),
            x_label: "hour of day".into(),
            y_label: "normalized balance index".into(),
            ..plot::ChartConfig::default()
        },
        &[
            plot::Series::new("LLF", parse_col(1)),
            plot::Series::new("S3", parse_col(3)),
        ],
    );
    plot::save_svg(&args.out_dir, "fig12_hourly.svg", &svg);

    // Headline numbers.
    let overall_llf = Summary::of(&llf_means).expect("domains exist");
    let overall_s3 = Summary::of(&s3_means).expect("domains exist");
    let gain = relative_gain(overall_llf.mean(), overall_s3.mean()).expect("non-zero llf mean");
    let peak_llf = mean_active_balance_filtered(&llf_log, bin, is_leave_peak_hour);
    let peak_s3 = mean_active_balance_filtered(&s3_log, bin, is_leave_peak_hour);
    let peak_gain = match (peak_llf, peak_s3) {
        (Some(l), Some(s)) if l > 0.0 => Some((s - l) / l),
        _ => None,
    };
    // "The error bar can be reduced by 72.1 %": mean width of the 95 % CIs
    // on the hourly curve (across controller-day means), S³ vs LLF.
    let mean_ci = |cis: &[f64]| cis.iter().sum::<f64>() / cis.len().max(1) as f64;
    let ci_reduction = if mean_ci(&llf_hour_cis) > 0.0 {
        1.0 - mean_ci(&s3_hour_cis) / mean_ci(&llf_hour_cis)
    } else {
        0.0
    };

    println!("summary:");
    println!(
        "  mean balance: LLF {:.4} | S3 {:.4} | gain {:+.1}% (paper: +41.2%)",
        overall_llf.mean(),
        overall_s3.mean(),
        gain * 100.0
    );
    if let Some(pg) = peak_gain {
        println!("  leave-peak gain: {:+.1}% (paper: +52.1%)", pg * 100.0);
    }
    println!(
        "  error-bar reduction: {:.1}% (paper: 72.1%)",
        ci_reduction * 100.0
    );
    write_csv(
        &args.out_dir,
        "fig12_summary.csv",
        "metric,llf,s3,gain",
        vec![
            format!(
                "mean_balance,{},{},{}",
                fmt(overall_llf.mean()),
                fmt(overall_s3.mean()),
                fmt(gain)
            ),
            format!(
                "leave_peak_balance,{},{},{}",
                fmt(peak_llf.unwrap_or(0.0)),
                fmt(peak_s3.unwrap_or(0.0)),
                fmt(peak_gain.unwrap_or(0.0))
            ),
            format!(
                "mean_ci95,{},{},{}",
                fmt(mean_ci(&llf_hour_cis)),
                fmt(mean_ci(&s3_hour_cis)),
                fmt(ci_reduction)
            ),
        ],
    );
    args.write_metrics();
}
