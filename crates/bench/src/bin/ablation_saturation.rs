//! Ablation (not a paper figure): MAC-level consequences of placement.
//!
//! The balance index measures *distribution* of load; this experiment
//! measures what bad distribution costs at the MAC layer. Each policy's
//! evaluation log is replayed against the 802.11 airtime model
//! (`s3_wlan::mac`): an AP saturates when its stations' combined airtime
//! need exceeds the medium, and stacked placements saturate first.

use s3_bench::{fmt, write_csv, Args};
use s3_types::TimeDelta;
use s3_wlan::mac::saturation_stats;
use s3_wlan::selector::{ApSelector, LeastLoadedFirst, LeastUsers, RandomSelector, StrongestRssi};

fn main() {
    let args = Args::parse();
    // A heavy-traffic campus: median ≈ 1 Mbit/s per user (HD-video era)
    // instead of the default ~100 kbit/s — at the default load no placement
    // can saturate a 54 Mbit/s AP and the experiment would be vacuous.
    let mut config = args.campus_config();
    config.volume_mu = (450e6f64).ln();
    let scenario = s3_bench::Scenario::from_config(config, args.seed);
    let bin = TimeDelta::minutes(10);

    let mut s3 = scenario.default_s3(args.seed);
    let mut policies: Vec<(&str, &mut dyn ApSelector)> = Vec::new();
    let mut rssi = StrongestRssi::new();
    let mut random = RandomSelector::new(args.seed);
    let mut least_users = LeastUsers::new();
    let mut llf = LeastLoadedFirst::new();
    policies.push(("strongest-rssi", &mut rssi));
    policies.push(("random", &mut random));
    policies.push(("least-users", &mut least_users));
    policies.push(("llf", &mut llf));
    policies.push(("s3", &mut s3));

    println!("saturation ablation: 802.11 airtime model over each policy's log");
    let mut rows = Vec::new();
    for (name, selector) in policies {
        let log = scenario.run_eval(selector);
        let stats = saturation_stats(&log, &scenario.topology, bin);
        println!(
            "  {name:<15} saturated AP-bins: {:>5.1}% | demand satisfied: {:>5.1}%",
            stats.saturation_fraction() * 100.0,
            stats.demand_satisfaction * 100.0
        );
        rows.push(format!(
            "{name},{},{},{},{}",
            stats.active_ap_bins,
            stats.saturated_ap_bins,
            fmt(stats.saturation_fraction()),
            fmt(stats.demand_satisfaction)
        ));
    }
    write_csv(
        &args.out_dir,
        "ablation_saturation.csv",
        "policy,active_ap_bins,saturated_ap_bins,saturation_fraction,demand_satisfaction",
        rows,
    );
    args.write_metrics();
}
