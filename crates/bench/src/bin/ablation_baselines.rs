//! Ablation (not a paper figure): S³ against the full baseline spectrum —
//! strongest-RSSI (the 802.11 default), random, least-users, LLF — plus an
//! S³ variant with α = 0 (pair term only) and an untrained S³ (no social
//! model at all, isolating the demand-aware balance tie-break).

use s3_bench::{fmt, write_csv, Args, Scenario};
use s3_core::{S3Config, S3Selector, SocialModel};
use s3_trace::TraceStore;
use s3_types::TimeDelta;
use s3_wlan::metrics::mean_active_balance_filtered;
use s3_wlan::selector::{ApSelector, LeastLoadedFirst, LeastUsers, RandomSelector, StrongestRssi};

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);
    let bin = TimeDelta::minutes(10);
    let daytime = |h: u64| h >= 8;

    let default_config = S3Config::default();
    let zero_alpha = S3Config {
        alpha: 0.0,
        ..S3Config::default()
    };
    let trained = scenario.train_s3(&default_config, args.seed);
    let trained_zero_alpha = scenario.train_s3(&zero_alpha, args.seed);
    let untrained = SocialModel::learn(&TraceStore::new(vec![]), &default_config, args.seed);

    let mut policies: Vec<(&str, Box<dyn ApSelector>)> = vec![
        ("strongest-rssi", Box::new(StrongestRssi::new())),
        ("random", Box::new(RandomSelector::new(args.seed))),
        ("least-users", Box::new(LeastUsers::new())),
        ("llf", Box::new(LeastLoadedFirst::new())),
        (
            "s3-untrained",
            Box::new(S3Selector::new(untrained, default_config.clone())),
        ),
        (
            "s3-alpha0",
            Box::new(S3Selector::new(trained_zero_alpha, zero_alpha)),
        ),
        ("s3", Box::new(S3Selector::new(trained, default_config))),
    ];

    println!("baseline ablation: mean daytime balance on the eval days");
    let mut rows = Vec::new();
    for (name, selector) in policies.iter_mut() {
        let log = scenario.run_eval(selector.as_mut());
        let balance = mean_active_balance_filtered(&log, bin, daytime).unwrap_or(0.0);
        println!("  {name:<15} {balance:.4}");
        rows.push(format!("{name},{}", fmt(balance)));
    }
    write_csv(
        &args.out_dir,
        "ablation_baselines.csv",
        "policy,mean_daytime_balance",
        rows,
    );
    args.write_metrics();
}
