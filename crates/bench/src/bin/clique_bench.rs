//! Machine-readable clique-kernel micro-benchmark: the allocation-free
//! word-level searcher against the pinned reference implementation.
//!
//! Criterion (`benches/clique.rs`) is the statistically careful
//! interactive view; this binary is the CI-friendly one — interleaved
//! best-of-repeats timing over dense 64–256-vertex graphs, written as
//! one JSON document (ns/extraction, speedup, branch-and-bound nodes/sec):
//!
//! ```text
//! clique_bench [--out results/BENCH_clique.json] [--iters N] [--repeats N]
//! ```
//!
//! Every extraction runs under an explicit node budget applied to *both*
//! implementations; parity (pinned by `tests/clique_parity.rs` in
//! `s3-graph`) guarantees they expand the same nodes in the same order, so
//! the comparison measures per-node machinery, not search luck. The
//! checked-in `results/BENCH_clique.json` is a reference measurement (see
//! `docs/PERF.md`); CI regenerates it as `BENCH_clique.ci.json` and
//! uploads it without comparing — shared-runner wall clocks are for
//! trend-watching, not gating.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use s3_graph::clique::{reference, CliqueBudget, CliqueWorkspace};
use s3_graph::{partition, SocialGraph};

const USAGE: &str = "usage: clique_bench [--out <path.json>] [--iters N] [--repeats N]";

/// Per-extraction node budget. Dense Östergård searches are exponential in
/// the worst case; a fixed budget keeps every shape's runtime bounded and —
/// because the kernel truncates at the identical node — keeps the
/// comparison apples-to-apples.
const BUDGET_NODES: u64 = 200_000;

/// (vertices, edge density) shapes timed by the extraction benchmark.
const SHAPES: &[(usize, f64)] = &[(64, 0.3), (64, 0.5), (128, 0.3), (256, 0.2), (256, 0.4)];

/// Shape of the partition (extract-and-erase) benchmark.
const PARTITION_N: usize = 96;
const PARTITION_DENSITY: f64 = 0.25;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Best-observed per-iteration nanoseconds of the two workloads, sampled
/// in alternation (`a` then `b`, `repeats` times). Interleaving keeps
/// clock-frequency drift from biasing a sequential A-then-B comparison,
/// and taking each side's minimum discards contention spikes from shared
/// hardware — the minimum is the least-noisy estimator of intrinsic cost.
fn time_pair_ns<A: FnMut() -> f64, B: FnMut() -> f64>(
    iters: u64,
    repeats: usize,
    mut a: A,
    mut b: B,
) -> (f64, f64) {
    let mut sink = 0.0f64;
    let mut sa = Vec::with_capacity(repeats);
    let mut sb = Vec::with_capacity(repeats);
    // Untimed warmup pass for caches and branch predictors.
    sink += a();
    sink += b();
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        for _ in 0..iters {
            sink += a();
        }
        sa.push(start.elapsed().as_nanos() as f64 / iters.max(1) as f64);
        let start = Instant::now();
        for _ in 0..iters {
            sink += b();
        }
        sb.push(start.elapsed().as_nanos() as f64 / iters.max(1) as f64);
    }
    // Keep the accumulator observable so the work is not optimised away.
    std::hint::black_box(sink);
    let min = |s: &[f64]| s.iter().copied().fold(f64::INFINITY, f64::min);
    (min(&sa), min(&sb))
}

fn random_graph(n: usize, density: f64, seed: u64) -> SocialGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = SocialGraph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.random::<f64>() < density {
                g.add_edge(u, v, rng.random_range(0.3..1.0)).unwrap();
            }
        }
    }
    g
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return;
    }
    let out = flag(&args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/BENCH_clique.json"));
    let iters: u64 = flag(&args, "--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let repeats: usize = flag(&args, "--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    let budget = CliqueBudget {
        max_nodes: BUDGET_NODES,
    };

    let mut doc = String::from("{\n");
    let _ = writeln!(
        doc,
        "  \"bench\": \"clique\",\n  \"budget_nodes\": {BUDGET_NODES},\n  \"iters\": {iters},\n  \"repeats\": {repeats},"
    );
    doc.push_str("  \"extractions\": [\n");

    let mut ws = CliqueWorkspace::new();
    let mut summary = String::new();
    for (shape_idx, &(n, density)) in SHAPES.iter().enumerate() {
        let g = random_graph(n, density, 42 + shape_idx as u64);

        // Node count for this shape, measured outside the timed loops.
        let before = ws.nodes_searched();
        let check = ws.max_clique(&g, budget);
        let nodes = ws.nodes_searched() - before;
        // Sanity: the two implementations must agree before we time them.
        let oracle = reference::max_clique_with_budget(&g, budget);
        assert_eq!(
            check.vertices, oracle.vertices,
            "kernel/reference disagree on n={n} d={density}"
        );

        let (reference_ns, kernel_ns) = time_pair_ns(
            iters,
            repeats,
            || reference::max_clique_with_budget(&g, budget).weight_sum,
            || ws.max_clique(&g, budget).weight_sum,
        );
        let speedup = reference_ns / kernel_ns;
        let nodes_per_sec = nodes as f64 * 1e9 / kernel_ns;

        let sep = if shape_idx + 1 == SHAPES.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            doc,
            "    {{\"n\": {n}, \"density\": {density:.2}, \"clique\": {}, \"truncated\": {}, \"nodes\": {nodes}, \"reference_ns\": {reference_ns:.2}, \"kernel_ns\": {kernel_ns:.2}, \"speedup\": {speedup:.2}, \"kernel_nodes_per_sec\": {nodes_per_sec:.0}}}{sep}",
            check.len(),
            check.truncated,
        );
        let _ = write!(summary, " n{n}d{density}={speedup:.1}x");
    }
    doc.push_str("  ],\n");

    // Extract-and-erase partition: many subset searches per call, which is
    // what the selector's batch path actually runs.
    let g = random_graph(PARTITION_N, PARTITION_DENSITY, 7);
    let cliques = partition::clique_partition_in(&g, budget, &mut ws).len();
    let (reference_ns, kernel_ns) = time_pair_ns(
        iters,
        repeats,
        || reference::clique_partition_with_budget(&g, budget).len() as f64,
        || partition::clique_partition_in(&g, budget, &mut ws).len() as f64,
    );
    let _ = writeln!(
        doc,
        "  \"partition\": {{\"n\": {PARTITION_N}, \"density\": {PARTITION_DENSITY:.2}, \"cliques\": {cliques}, \"reference_ns\": {reference_ns:.2}, \"kernel_ns\": {kernel_ns:.2}, \"speedup\": {:.2}}}",
        reference_ns / kernel_ns
    );
    doc.push_str("}\n");

    if let Some(dir) = out.parent() {
        fs::create_dir_all(dir).expect("create output directory");
    }
    fs::write(&out, &doc).expect("write benchmark json");
    println!(
        "clique_bench{summary} partition={:.1}x wrote={}",
        reference_ns / kernel_ns,
        out.display()
    );
}
