//! Fig. 4 — one workday, one controller: the balance index of the *number
//! of users* per AP next to the balance index of *traffic* per AP,
//! 8:00–24:00.
//!
//! Paper reading: the two series move together — when the user-count index
//! drops (a co-leaving), the traffic index drops with it.

use s3_bench::{fmt, plot, write_csv, Args, Scenario};
use s3_types::{TimeDelta, Timestamp};
use s3_wlan::metrics::{balance_series, user_balance_series};

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);
    let store = &scenario.llf_log;

    // Pick the busiest controller on the last *weekday* of the training
    // span (weekends are quiet by construction).
    let day = (0..=scenario.train_last_day())
        .rev()
        .find(|d| d % 7 < 5)
        .expect("a weekday exists");
    let from = Timestamp::from_day_hms(day, 8, 0, 0);
    let to = Timestamp::from_day_hms(day, 23, 59, 59);
    let controller = store
        .controllers()
        .into_iter()
        .max_by_key(|&c| {
            store
                .sessions_overlapping(from, to)
                .filter(|r| r.controller == c)
                .count()
        })
        .expect("controllers exist");

    let bin = TimeDelta::minutes(10);
    let traffic = balance_series(store, controller, from, to, bin);
    let users = user_balance_series(store, controller, from, to, bin);

    // Correlation between the two series (paired by bin).
    let n = traffic.len().min(users.len());
    let (tx, ux): (Vec<f64>, Vec<f64>) = (
        traffic[..n].iter().map(|&(_, v)| v).collect(),
        users[..n].iter().map(|&(_, v)| v).collect(),
    );
    let r = s3_stats::correlation::pearson(&tx, &ux).unwrap_or(0.0);
    let rho = s3_stats::correlation::spearman(&tx, &ux).unwrap_or(0.0);

    println!("fig4: user-count vs traffic balance, controller {controller}, day {day}");
    println!(
        "  bins: {n} | pearson r = {r:.3}, spearman rho = {rho:.3} \
         (paper: 'very similar in layout')"
    );

    let rows = (0..n).map(|i| {
        let (t, beta_traffic) = traffic[i];
        let (_, beta_users) = users[i];
        format!(
            "{},{},{}",
            t.secs_of_day() / 60,
            fmt(beta_users),
            fmt(beta_traffic)
        )
    });
    write_csv(
        &args.out_dir,
        "fig4.csv",
        "minute_of_day,balance_user_count,balance_traffic",
        rows,
    );

    let to_points = |series: &[(s3_types::Timestamp, f64)]| -> Vec<(f64, f64)> {
        series
            .iter()
            .map(|&(t, v)| (t.secs_of_day() as f64 / 3_600.0, v))
            .collect()
    };
    let svg = plot::line_chart(
        &plot::ChartConfig {
            title: format!("Fig 4: user-count vs traffic balance ({controller}, day {day})"),
            x_label: "hour of day".into(),
            y_label: "normalized balance index".into(),
            ..plot::ChartConfig::default()
        },
        &[
            plot::Series::new("user count", to_points(&users[..n])),
            plot::Series::new("traffic", to_points(&traffic[..n])),
        ],
    );
    plot::save_svg(&args.out_dir, "fig4.svg", &svg);
    args.write_metrics();
}
