//! Fig. 7 — the gap statistic over the number of clusters `k` for user
//! application profiles.
//!
//! Paper reading: `Gap(4) ≥ Gap(5) − s₅`, so `k = 4` is chosen.

use s3_bench::{fmt, plot, write_csv, Args, Scenario};
use s3_core::profile::all_window_profiles;
use s3_stats::gap::{gap_statistic, GapConfig};

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);
    let store = scenario.training_log();

    let profiles = all_window_profiles(&store, scenario.train_last_day(), 15);
    let mut users: Vec<_> = profiles.keys().copied().collect();
    users.sort_unstable();
    let points: Vec<Vec<f64>> = users
        .iter()
        .map(|u| profiles[u].shares().to_vec())
        .collect();
    println!("fig7: gap statistic over {} user profiles", points.len());

    let result = gap_statistic(&points, 10, &GapConfig::default(), args.seed)
        .expect("enough profiles to cluster");
    println!("  chosen k = {} (paper: k = 4)", result.chosen_k);

    let rows = result.points.iter().map(|p| {
        format!(
            "{},{},{},{},{}",
            p.k,
            fmt(p.gap),
            fmt(p.s),
            fmt(p.log_w),
            fmt(p.mean_ref_log_w)
        )
    });
    write_csv(
        &args.out_dir,
        "fig7.csv",
        "k,gap,s_k,log_w,mean_ref_log_w",
        rows,
    );

    let gap_curve: Vec<(f64, f64)> = result.points.iter().map(|p| (p.k as f64, p.gap)).collect();
    let svg = plot::line_chart(
        &plot::ChartConfig {
            title: format!("Fig 7: gap statistic (chosen k = {})", result.chosen_k),
            x_label: "k".into(),
            y_label: "Gap(k)".into(),
            ..plot::ChartConfig::default()
        },
        &[plot::Series::new("gap", gap_curve)],
    );
    plot::save_svg(&args.out_dir, "fig7.svg", &svg);
    args.write_metrics();
}
