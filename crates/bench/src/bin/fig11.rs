//! Fig. 11 — mean normalized balance index under S³ as a function of the
//! history look-back (days), for α ∈ {0.1, 0.3, 0.5}.
//!
//! Paper reading: more history helps until about 15 days, then the curve
//! plateaus — matching the NMI analysis of Fig. 6.

use s3_bench::{fmt, plot, write_csv, Args, Scenario};
use s3_core::{S3Config, S3Selector};
use s3_types::TimeDelta;
use s3_wlan::metrics::mean_active_balance_filtered;

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);

    let lookbacks = [1u64, 3, 5, 7, 10, 13, 15, 20];
    let alphas = [0.1, 0.3, 0.5];
    let bin = TimeDelta::minutes(10);

    println!("fig11: mean balance index vs history look-back x alpha");
    // The (lookback, alpha) cells are independent: fan them out and
    // reassemble in grid order (see fig10 for the determinism argument).
    let grid: Vec<(u64, f64)> = lookbacks
        .iter()
        .flat_map(|&days| alphas.iter().map(move |&alpha| (days, alpha)))
        .collect();
    let balances = s3_par::par_map(&grid, args.effective_threads(), |_, &(days, alpha)| {
        let config = S3Config {
            alpha,
            lookback_days: days,
            fixed_k: Some(4),
            ..S3Config::default()
        };
        // Train on a history truncated to the look-back: both the
        // profile window and the event mining see only those days.
        let train = scenario.training_log().slice_days(
            scenario.train_last_day().saturating_sub(days - 1),
            scenario.train_last_day(),
        );
        let model = s3_core::SocialModel::learn(&train, &config, args.seed);
        let mut s3 = S3Selector::new(model, config);
        let log = scenario.run_eval(&mut s3);
        mean_active_balance_filtered(&log, bin, |h| h >= 8).unwrap_or(0.0)
    });
    let mut rows = Vec::new();
    for (di, &days) in lookbacks.iter().enumerate() {
        let mut cells = vec![days.to_string()];
        for (ai, &alpha) in alphas.iter().enumerate() {
            let balance = balances[di * alphas.len() + ai];
            println!("  lookback={days}d alpha={alpha}: mean balance {balance:.4}");
            cells.push(fmt(balance));
        }
        rows.push(cells.join(","));
    }
    write_csv(
        &args.out_dir,
        "fig11.csv",
        "lookback_days,alpha_0.1,alpha_0.3,alpha_0.5",
        rows.clone(),
    );

    let series: Vec<plot::Series> = alphas
        .iter()
        .enumerate()
        .map(|(ai, alpha)| {
            let points = lookbacks
                .iter()
                .enumerate()
                .map(|(di, &days)| {
                    let cell: f64 = rows[di].split(',').nth(ai + 1).unwrap().parse().unwrap();
                    (days as f64, cell)
                })
                .collect();
            plot::Series::new(format!("alpha {alpha}"), points)
        })
        .collect();
    let svg = plot::line_chart(
        &plot::ChartConfig {
            title: "Fig 11: balance vs history look-back".into(),
            x_label: "days to look back".into(),
            y_label: "mean normalized balance index".into(),
            ..plot::ChartConfig::default()
        },
        &series,
    );
    plot::save_svg(&args.out_dir, "fig11.svg", &svg);
    args.write_metrics();
}
