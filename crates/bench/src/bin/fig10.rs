//! Fig. 10 — mean normalized balance index under S³ as a function of the
//! co-leaving extraction window (1–20 minutes), for α ∈ {0.1, 0.3, 0.5}.
//!
//! Paper reading: the curve rises to a maximum at a five-minute window and
//! drops beyond it — small windows find too few social relationships,
//! large windows pick up fake ones.

use s3_bench::{fmt, plot, write_csv, Args, Scenario};
use s3_core::{S3Config, S3Selector};
use s3_types::TimeDelta;
use s3_wlan::metrics::mean_active_balance_filtered;

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);

    let windows_min = [1u64, 3, 5, 10, 15, 20];
    let alphas = [0.1, 0.3, 0.5];
    let bin = TimeDelta::minutes(10);

    println!("fig10: mean balance index vs co-leaving window x alpha");
    // Every (window, alpha) cell trains and evaluates independently against
    // the shared scenario, so the grid fans out across the workers; results
    // come back in grid order, keeping the CSV byte-identical at any count.
    let grid: Vec<(u64, f64)> = windows_min
        .iter()
        .flat_map(|&w| alphas.iter().map(move |&alpha| (w, alpha)))
        .collect();
    let balances = s3_par::par_map(&grid, args.effective_threads(), |_, &(w, alpha)| {
        let config = S3Config {
            alpha,
            coleave_window: TimeDelta::minutes(w),
            fixed_k: Some(4),
            ..S3Config::default()
        };
        let model = scenario.train_s3(&config, args.seed);
        let mut s3 = S3Selector::new(model, config);
        let log = scenario.run_eval(&mut s3);
        mean_active_balance_filtered(&log, bin, |h| h >= 8).unwrap_or(0.0)
    });
    let mut rows = Vec::new();
    for (wi, &w) in windows_min.iter().enumerate() {
        let mut cells = vec![w.to_string()];
        for (ai, &alpha) in alphas.iter().enumerate() {
            let balance = balances[wi * alphas.len() + ai];
            println!("  window={w}min alpha={alpha}: mean balance {balance:.4}");
            cells.push(fmt(balance));
        }
        rows.push(cells.join(","));
    }
    write_csv(
        &args.out_dir,
        "fig10.csv",
        "coleave_window_min,alpha_0.1,alpha_0.3,alpha_0.5",
        rows.clone(),
    );

    let series: Vec<plot::Series> = alphas
        .iter()
        .enumerate()
        .map(|(ai, alpha)| {
            let points = windows_min
                .iter()
                .enumerate()
                .map(|(wi, &w)| {
                    let cell: f64 = rows[wi].split(',').nth(ai + 1).unwrap().parse().unwrap();
                    (w as f64, cell)
                })
                .collect();
            plot::Series::new(format!("alpha {alpha}"), points)
        })
        .collect();
    let svg = plot::line_chart(
        &plot::ChartConfig {
            title: "Fig 10: balance vs co-leaving window".into(),
            x_label: "co-leaving interval (minutes)".into(),
            y_label: "mean normalized balance index".into(),
            ..plot::ChartConfig::default()
        },
        &series,
    );
    plot::save_svg(&args.out_dir, "fig10.svg", &svg);
    args.write_metrics();
}
