//! Machine-readable selector micro-benchmark: hashed vs compiled δ-probes,
//! slot-cost scans, and end-to-end `select_batch` throughput.
//!
//! Criterion (`benches/delta_lookup.rs`) is the statistically careful
//! interactive view; this binary is the CI-friendly one — it runs the same
//! shapes with hand-rolled median-of-repeats timing and writes one JSON
//! document so the numbers can be archived as a build artifact and diffed
//! across commits:
//!
//! ```text
//! selector_bench [--out results/BENCH_selector.json] [--iters N] [--repeats N]
//! ```
//!
//! The checked-in `results/BENCH_selector.json` is a reference measurement
//! (see `docs/PERF.md`); CI regenerates it as `BENCH_selector.ci.json` and
//! uploads it without comparing — wall-clock numbers from shared runners
//! are for trend-watching, not gating.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use s3_bench::Scenario;
use s3_core::batch::build_social_graph;
use s3_core::{CompiledModel, S3Config, SocialModel};
use s3_graph::clique::{reference, CliqueBudget, CliqueWorkspace};
use s3_graph::partition::clique_partition_in;
use s3_trace::generator::CampusConfig;
use s3_types::{ApId, BitsPerSec, Timestamp, UserId};
use s3_wlan::selector::{views_of, ApCandidate, ApSelector, ArrivalUser};

const USAGE: &str = "usage: selector_bench [--out <path.json>] [--iters N] [--repeats N]";

/// Number of users probed pairwise in the δ benchmark (so `PROBE² ` probes
/// per timed iteration).
const PROBE: usize = 64;
/// Member-list length for the slot-cost benchmark.
const MEMBERS: usize = 64;
/// Arrival-burst size for the batch benchmark.
const BATCH: usize = 24;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Median wall-clock nanoseconds of `repeats` runs of `iters` iterations
/// of `work`, normalised per iteration.
fn time_ns<F: FnMut() -> f64>(iters: u64, repeats: usize, mut work: F) -> f64 {
    let mut sink = 0.0f64;
    let mut samples: Vec<f64> = (0..repeats.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                sink += work();
            }
            start.elapsed().as_nanos() as f64 / iters.max(1) as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    // Keep the accumulator observable so the work is not optimised away.
    std::hint::black_box(sink);
    samples[samples.len() / 2]
}

fn scenario() -> Scenario {
    Scenario::from_config(
        CampusConfig {
            buildings: 4,
            aps_per_building: 8,
            users: 600,
            days: 8,
            ..CampusConfig::campus()
        },
        21,
    )
}

fn trained(s: &Scenario) -> (SocialModel, Vec<UserId>) {
    let model = s.train_s3(&S3Config::default(), 1);
    let mut ids: Vec<u32> = s.llf_log.records().iter().map(|r| r.user.raw()).collect();
    ids.sort_unstable();
    ids.dedup();
    (model, ids.into_iter().map(UserId::new).collect())
}

fn candidates(m: usize, users_each: u32) -> Vec<ApCandidate> {
    (0..m)
        .map(|i| ApCandidate {
            ap: ApId::new(i as u32),
            load: BitsPerSec::mbps(i as f64 * 0.4),
            capacity: BitsPerSec::mbps(100.0),
            associated: (0..users_each)
                .map(|u| UserId::new(u * m as u32 + i as u32))
                .collect(),
        })
        .collect()
}

fn arrivals(n: usize, m: usize) -> Vec<ArrivalUser> {
    (0..n)
        .map(|i| ArrivalUser {
            user: UserId::new(10_000 + i as u32),
            now: Timestamp::from_secs(1_000),
            demand_hint: BitsPerSec::mbps(0.2),
            rssi: vec![-55.0; m],
        })
        .collect()
}

fn json_section(out: &mut String, name: &str, fields: &[(&str, f64)]) {
    let _ = write!(out, "  \"{name}\": {{");
    for (i, (key, value)) in fields.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{key}\": {value:.2}");
    }
    let _ = write!(out, "\n  }}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return;
    }
    let out = flag(&args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/BENCH_selector.json"));
    let iters: u64 = flag(&args, "--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let repeats: usize = flag(&args, "--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);

    let s = scenario();
    let (model, ids) = trained(&s);
    let compiled = CompiledModel::compile(&model);
    let probe: Vec<UserId> = ids.iter().copied().take(PROBE).collect();
    let dense: Vec<u32> = probe
        .iter()
        .map(|&u| compiled.dense_or_unknown(u))
        .collect();
    let probes = (probe.len() * probe.len()) as f64;

    // Tier 1: δ probes over every ordered pair of the probe slice.
    let hashed_ns = time_ns(iters, repeats, || {
        let mut acc = 0.0;
        for &u in &probe {
            for &v in &probe {
                acc += model.delta(u, v);
            }
        }
        acc
    }) / probes;
    let compiled_ns = time_ns(iters, repeats, || {
        let mut acc = 0.0;
        for &u in &probe {
            for &v in &probe {
                acc += compiled.delta(u, v);
            }
        }
        acc
    }) / probes;
    let dense_ns = time_ns(iters, repeats, || {
        let mut acc = 0.0;
        for &i in &dense {
            for &j in &dense {
                acc += compiled.delta_dense(i, j);
            }
        }
        acc
    }) / probes;

    // Tier 2: slot-cost scan of one arrival against a member list.
    let arrival = ids[0];
    let arrival_dense = compiled.dense_or_unknown(arrival);
    let member_ids: Vec<UserId> = ids.iter().copied().skip(1).take(MEMBERS).collect();
    let mut member_dense = Vec::new();
    compiled.extend_dense(member_ids.iter().copied(), &mut member_dense);
    let slot_hashed_ns = time_ns(iters * 16, repeats, || {
        member_ids.iter().map(|&w| model.delta(arrival, w)).sum()
    });
    let slot_compiled_ns = time_ns(iters * 16, repeats, || {
        compiled.slot_cost(arrival_dense, &member_dense)
    });

    // Tier 2.5: clique partition of the trained social graph over the
    // probe slice — the word-level kernel (reused workspace) against the
    // pinned reference searcher on a realistic batch graph.
    let cfg = S3Config::default();
    let social = build_social_graph(&probe, |u, v| model.delta(u, v), cfg.edge_threshold);
    let budget = CliqueBudget::default();
    let partition_reference_ns = time_ns(iters, repeats, || {
        reference::clique_partition_with_budget(&social, budget).len() as f64
    });
    let mut clique_ws = CliqueWorkspace::new();
    let partition_kernel_ns = time_ns(iters, repeats, || {
        clique_partition_in(&social, budget, &mut clique_ws).len() as f64
    });

    // Tier 3: full batch decision through the compiled selector scratch.
    let mut s3 = s.default_s3(2);
    let cands = candidates(8, 12);
    let views = views_of(&cands);
    let users = arrivals(BATCH, 8);
    let batch_ns = time_ns(iters.min(50), repeats, || {
        s3.select_batch(&users, &views).len() as f64
    });

    let mut doc = String::from("{\n");
    let _ = writeln!(
        doc,
        "  \"bench\": \"selector\",\n  \"probe_users\": {PROBE},\n  \"slot_members\": {MEMBERS},\n  \"batch_size\": {BATCH},\n  \"iters\": {iters},\n  \"repeats\": {repeats},"
    );
    json_section(
        &mut doc,
        "delta_probe_ns",
        &[
            ("hashed", hashed_ns),
            ("compiled", compiled_ns),
            ("compiled_dense", dense_ns),
            ("speedup_compiled_vs_hashed", hashed_ns / compiled_ns),
            ("speedup_dense_vs_hashed", hashed_ns / dense_ns),
        ],
    );
    doc.push_str(",\n");
    json_section(
        &mut doc,
        "slot_cost_ns",
        &[
            ("hashed", slot_hashed_ns),
            ("compiled", slot_compiled_ns),
            (
                "speedup_compiled_vs_hashed",
                slot_hashed_ns / slot_compiled_ns,
            ),
        ],
    );
    doc.push_str(",\n");
    json_section(
        &mut doc,
        "clique_partition_ns",
        &[
            ("reference", partition_reference_ns),
            ("kernel", partition_kernel_ns),
            (
                "speedup_kernel_vs_reference",
                partition_reference_ns / partition_kernel_ns,
            ),
        ],
    );
    doc.push_str(",\n");
    json_section(
        &mut doc,
        "select_batch",
        &[
            ("ns_per_batch", batch_ns),
            ("users_per_sec", BATCH as f64 * 1e9 / batch_ns),
        ],
    );
    doc.push_str("\n}\n");

    if let Some(dir) = out.parent() {
        fs::create_dir_all(dir).expect("create output directory");
    }
    fs::write(&out, &doc).expect("write benchmark json");
    println!(
        "selector_bench delta hashed={hashed_ns:.1}ns compiled={compiled_ns:.1}ns \
         dense={dense_ns:.1}ns slot hashed={slot_hashed_ns:.1}ns compiled={slot_compiled_ns:.1}ns \
         partition ref={partition_reference_ns:.0}ns kernel={partition_kernel_ns:.0}ns \
         batch={batch_ns:.0}ns wrote={}",
        out.display()
    );
}
