//! Ablation (not a paper figure): the paper's future-work direction —
//! does extending the typing features with *temporal* (hour-of-day) usage
//! profiles improve the balance S³ achieves?

use s3_bench::{fmt, write_csv, Args, Scenario};
use s3_core::{S3Config, S3Selector};
use s3_types::TimeDelta;
use s3_wlan::metrics::mean_active_balance_filtered;

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);
    let bin = TimeDelta::minutes(10);
    let daytime = |h: u64| h >= 8;

    println!("feature ablation: application-only vs application+temporal typing");
    let mut rows = Vec::new();
    for (label, temporal) in [("app-only", false), ("app+temporal", true)] {
        let config = S3Config {
            temporal_features: temporal,
            fixed_k: Some(4),
            ..S3Config::default()
        };
        let model = scenario.train_s3(&config, args.seed);
        let typed = scenario
            .training_log()
            .users()
            .iter()
            .filter(|&&u| model.user_type(u).is_some())
            .count();
        let mut s3 = S3Selector::new(model, config);
        let log = scenario.run_eval(&mut s3);
        let balance = mean_active_balance_filtered(&log, bin, daytime).unwrap_or(0.0);
        println!("  {label:<14} balance {balance:.4} ({typed} users typed)");
        rows.push(format!("{label},{},{typed}", fmt(balance)));
    }
    write_csv(
        &args.out_dir,
        "ablation_features.csv",
        "features,mean_daytime_balance,typed_users",
        rows,
    );
    args.write_metrics();
}
