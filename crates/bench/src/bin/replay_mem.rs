//! Peak-memory demonstration for the streaming replay path.
//!
//! The claim: `SimEngine::run_streamed` keeps peak resident memory bounded
//! by *concurrent sessions*, not trace length, while the in-memory path
//! scales with the number of demands. Each measurement must run in a fresh
//! process (peak RSS is a process-lifetime high-water mark), so this
//! binary does exactly one thing per invocation:
//!
//! ```text
//! replay_mem gen    --out demands.csv --days N [--users N] [--seed N]
//! replay_mem mem    --demands demands.csv
//! replay_mem stream --demands demands.csv
//! ```
//!
//! `mem`/`stream` print one machine-readable line:
//! `replay_mem mode=<mode> demands=<n> records=<n> vm_hwm_kb=<kb>`.
//! Run both modes at two trace lengths and compare: the `stream` numbers
//! stay flat while `mem` grows with the trace (see the `replay-bench`
//! step in CI).

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::exit;

use s3_trace::generator::{CampusConfig, CampusGenerator};
use s3_trace::ingest::{DemandReader, IngestMode};
use s3_trace::{csv, SessionRecord};
use s3_wlan::selector::LeastLoadedFirst;
use s3_wlan::{RecordSink, SimConfig, SimEngine, StreamSource, Topology};

const USAGE: &str = "usage: replay_mem gen --out <demands.csv> --days N [--users N] [--seed N]
       replay_mem <mem|stream> --demands <demands.csv>";

/// Peak resident set size of this process in KiB (`VmHWM` from
/// /proc/self/status), or 0 where procfs is unavailable.
fn vm_hwm_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Sink that writes nothing and keeps nothing — isolates the engine's own
/// footprint from output buffering.
struct DropSink(usize);

impl RecordSink for DropSink {
    fn emit(&mut self, _record: SessionRecord) -> std::io::Result<()> {
        self.0 += 1;
        Ok(())
    }
}

fn topology(aps_per_building: usize, buildings: usize) -> Topology {
    Topology::from_campus(&CampusConfig {
        buildings,
        aps_per_building,
        ..CampusConfig::campus()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().cloned() else {
        eprintln!("{USAGE}");
        exit(2);
    };
    match mode.as_str() {
        "gen" => {
            let out = flag(&args, "--out").unwrap_or_else(|| {
                eprintln!("{USAGE}");
                exit(2);
            });
            let days: u64 = flag(&args, "--days")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8);
            let users: usize = flag(&args, "--users")
                .and_then(|v| v.parse().ok())
                .unwrap_or(400);
            let seed: u64 = flag(&args, "--seed")
                .and_then(|v| v.parse().ok())
                .unwrap_or(5);
            let config = CampusConfig {
                users,
                buildings: 2,
                aps_per_building: 4,
                days,
                ..CampusConfig::campus()
            };
            let campus = CampusGenerator::new(config, seed).generate();
            let file = File::create(&out).expect("create output");
            csv::write_demands(BufWriter::new(file), &campus.demands).expect("write demands");
            println!(
                "replay_mem mode=gen days={days} users={users} demands={} out={out}",
                campus.demands.len()
            );
        }
        "mem" | "stream" => {
            let demands_path = flag(&args, "--demands").unwrap_or_else(|| {
                eprintln!("{USAGE}");
                exit(2);
            });
            let engine = SimEngine::new(topology(4, 2), SimConfig::default());
            let mut llf = LeastLoadedFirst::new();
            let (demands, records) = if mode == "mem" {
                let file = File::open(&demands_path).expect("open demands");
                let demands = csv::read_demands(BufReader::new(file)).expect("read demands");
                let result = engine.run(&demands, &mut llf);
                (demands.len(), result.records.len())
            } else {
                let file = File::open(&demands_path).expect("open demands");
                let reader = DemandReader::new(BufReader::new(file), IngestMode::Strict)
                    .expect("valid header");
                let mut source = StreamSource::new(reader);
                let mut sink = DropSink(0);
                let totals = engine
                    .run_streamed(&mut source, &mut llf, &mut sink)
                    .expect("clean stream");
                (totals.placed + totals.rejected, sink.0)
            };
            println!(
                "replay_mem mode={mode} demands={demands} records={records} vm_hwm_kb={}",
                vm_hwm_kb()
            );
        }
        _ => {
            eprintln!("{USAGE}");
            exit(2);
        }
    }
}
