//! Runs every figure/table experiment in sequence with shared flags.
//!
//! Equivalent to invoking `fig2 … fig12` and `table1` one by one; handy for
//! regenerating the whole `results/` directory after a change.

use std::process::Command;

fn main() {
    let experiments = [
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "table1",
        "fig10",
        "fig11",
        "fig12",
        "ablation_baselines",
        "ablation_staleness",
        "ablation_migration",
        "ablation_features",
        "ablation_incremental",
        "ablation_saturation",
        "ablation_seeds",
    ];
    let forwarded: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for name in experiments {
        println!("=== {name} ===");
        let status = Command::new(exe_dir.join(name)).args(&forwarded).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!("{name} failed to launch: {e} (build with `cargo build --release -p s3-bench` first)");
                failures.push(name);
            }
        }
        println!();
    }
    if failures.is_empty() {
        println!("all experiments completed");
    } else {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
