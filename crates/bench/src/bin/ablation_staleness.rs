//! Ablation (not a paper figure): how does the AP-load reporting interval
//! shape the S³-vs-LLF gap?
//!
//! The paper's incumbent controller sees periodically polled AP traffic
//! counters. The staler the counters, the harder pure least-load herds
//! bursts of arrivals onto the momentarily least-loaded AP — and the more
//! there is for S³'s social spreading to win. This sweep makes that
//! dependency explicit (DESIGN.md §5 / EXPERIMENTS.md note 2).

use s3_bench::{fmt, plot, write_csv, Args};
use s3_core::{S3Config, S3Selector, SocialModel};
use s3_trace::generator::CampusGenerator;
use s3_trace::TraceStore;
use s3_types::TimeDelta;
use s3_wlan::metrics::mean_active_balance_filtered;
use s3_wlan::selector::LeastLoadedFirst;
use s3_wlan::{SimConfig, SimEngine, Topology};

fn main() {
    let args = Args::parse();
    let campus = CampusGenerator::new(args.campus_config(), args.seed).generate();
    let topology = Topology::from_campus(&campus.config);
    let bin = TimeDelta::minutes(10);
    let daytime = |h: u64| h >= 8;

    let train_last = campus.config.days - 4;
    let eval: Vec<_> = campus
        .demands
        .iter()
        .filter(|d| d.arrive.day() > train_last)
        .cloned()
        .collect();

    println!("staleness ablation: load report interval vs policy balance");
    let mut rows = Vec::new();
    for minutes in [0u64, 1, 2, 5, 10, 20] {
        let sim_config = SimConfig {
            load_report_interval: TimeDelta::minutes(minutes),
            ..SimConfig::default()
        };
        let engine = SimEngine::new(topology.clone(), sim_config);
        // Retrain per staleness level: the collected history itself depends
        // on how the incumbent policy behaves.
        let history = TraceStore::new(
            engine
                .run(&campus.demands, &mut LeastLoadedFirst::new())
                .records,
        )
        .slice_days(0, train_last);
        let s3_config = S3Config::default();
        let model = SocialModel::learn(&history, &s3_config, args.seed);
        let mut s3 = S3Selector::new(model, s3_config);

        let llf_log = TraceStore::new(engine.run(&eval, &mut LeastLoadedFirst::new()).records);
        let s3_log = TraceStore::new(engine.run(&eval, &mut s3).records);
        let llf = mean_active_balance_filtered(&llf_log, bin, daytime).unwrap_or(0.0);
        let s3b = mean_active_balance_filtered(&s3_log, bin, daytime).unwrap_or(0.0);
        let gain = if llf > 0.0 { (s3b - llf) / llf } else { 0.0 };
        let label = if minutes == 0 {
            "live".to_string()
        } else {
            format!("{minutes}min")
        };
        println!(
            "  report={label:>6}: LLF {llf:.4} | S3 {s3b:.4} | gain {:+.1}%",
            gain * 100.0
        );
        rows.push(format!("{minutes},{},{},{}", fmt(llf), fmt(s3b), fmt(gain)));
    }
    write_csv(
        &args.out_dir,
        "ablation_staleness.csv",
        "report_interval_min,llf_balance,s3_balance,s3_gain",
        rows.clone(),
    );
    let parse_col = |col: usize| -> Vec<(f64, f64)> {
        rows.iter()
            .map(|row| {
                let cells: Vec<&str> = row.split(',').collect();
                (cells[0].parse().unwrap(), cells[col].parse().unwrap())
            })
            .collect()
    };
    let svg = plot::line_chart(
        &plot::ChartConfig {
            title: "Balance vs AP counter-polling staleness".into(),
            x_label: "load report interval (minutes; 0 = live)".into(),
            y_label: "mean daytime balance index".into(),
            ..plot::ChartConfig::default()
        },
        &[
            plot::Series::new("LLF", parse_col(1)),
            plot::Series::new("S3", parse_col(2)),
        ],
    );
    plot::save_svg(&args.out_dir, "ablation_staleness.svg", &svg);
    args.write_metrics();
}
