//! Ablation (not a paper figure): deployment-style nightly retraining.
//!
//! The paper's future work is to run S³ live on the campus WLAN. A live
//! controller retrains nightly from the day that just ended instead of
//! freezing a month-old model. This experiment compares, over the
//! evaluation days:
//!
//! * `frozen`  — batch model trained once on the training span;
//! * `nightly` — incremental learner seeded with the training span, then
//!   ingesting each evaluation day after serving it.

use s3_bench::{fmt, write_csv, Args, Scenario};
use s3_core::{IncrementalLearner, S3Config, S3Selector};
use s3_trace::TraceStore;
use s3_types::TimeDelta;
use s3_wlan::metrics::mean_active_balance_filtered;

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);
    let bin = TimeDelta::minutes(10);
    let daytime = |h: u64| h >= 8;
    let config = S3Config {
        fixed_k: Some(4),
        ..S3Config::default()
    };

    // Frozen: the standard pipeline.
    let frozen_model = scenario.train_s3(&config, args.seed);
    let mut frozen = S3Selector::new(frozen_model, config.clone());
    let frozen_log = scenario.run_eval(&mut frozen);
    let frozen_balance = mean_active_balance_filtered(&frozen_log, bin, daytime).unwrap_or(0.0);

    // Nightly: seed the learner with the training history day by day, then
    // serve each evaluation day with the current model and ingest it.
    let mut learner = IncrementalLearner::new(config.clone(), args.seed);
    let train = scenario.training_log();
    for day in 0..=scenario.train_last_day() {
        learner.ingest_day(&train.slice_days(day, day), day);
    }
    let mut nightly_records = Vec::new();
    for day in scenario.eval_first_day()..=scenario.eval_last_day() {
        let demands: Vec<_> = scenario
            .campus
            .demands
            .iter()
            .filter(|d| d.arrive.day() == day)
            .cloned()
            .collect();
        let mut selector = S3Selector::new(learner.build_model(), config.clone());
        let result = scenario.engine.run(&demands, &mut selector);
        let day_store = TraceStore::new(result.records.clone());
        learner.ingest_day(&day_store, day);
        nightly_records.extend(result.records);
    }
    let nightly_log = TraceStore::new(nightly_records);
    let nightly_balance = mean_active_balance_filtered(&nightly_log, bin, daytime).unwrap_or(0.0);

    println!(
        "incremental-retraining ablation (eval days {}..{}):",
        scenario.eval_first_day(),
        scenario.eval_last_day()
    );
    println!("  frozen model:  balance {frozen_balance:.4}");
    println!(
        "  nightly model: balance {nightly_balance:.4} ({} days ingested)",
        learner.days_ingested()
    );
    write_csv(
        &args.out_dir,
        "ablation_incremental.csv",
        "variant,mean_daytime_balance",
        vec![
            format!("frozen,{}", fmt(frozen_balance)),
            format!("nightly,{}", fmt(nightly_balance)),
        ],
    );
    args.write_metrics();
}
