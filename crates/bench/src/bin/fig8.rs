//! Fig. 8 — cluster centroids of the four user groups over the six
//! application realms.
//!
//! Paper reading: each cluster has a distinct dominant realm, so a user is
//! cleanly assignable to a group from its application usage profile.

use s3_bench::{fmt, plot, write_csv, Args, Scenario};
use s3_core::profile::all_window_profiles;
use s3_stats::kmeans::{fit, KMeansConfig};
use s3_types::AppCategory;

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);
    let store = scenario.training_log();

    let profiles = all_window_profiles(&store, scenario.train_last_day(), 15);
    let mut users: Vec<_> = profiles.keys().copied().collect();
    users.sort_unstable();
    let points: Vec<Vec<f64>> = users
        .iter()
        .map(|u| profiles[u].shares().to_vec())
        .collect();

    let k = 4;
    let result = fit(&points, k, &KMeansConfig::default(), args.seed).expect("clustering succeeds");
    let sizes = result.cluster_sizes();

    println!(
        "fig8: centroids of {k} user groups over {} profiles",
        points.len()
    );
    for (i, centroid) in result.centroids.iter().enumerate() {
        let dominant = centroid
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(idx, _)| AppCategory::from_index(idx).expect("valid realm"))
            .expect("non-empty centroid");
        println!(
            "  type{} ({} users): dominant realm = {dominant}",
            i + 1,
            sizes[i]
        );
    }

    let rows = result.centroids.iter().enumerate().map(|(i, c)| {
        format!(
            "type{},{},{},{},{},{},{}",
            i + 1,
            fmt(c[0]),
            fmt(c[1]),
            fmt(c[2]),
            fmt(c[3]),
            fmt(c[4]),
            fmt(c[5])
        )
    });
    write_csv(
        &args.out_dir,
        "fig8.csv",
        "cluster,im,p2p,music,email,video,web",
        rows,
    );

    let categories: Vec<String> = AppCategory::ALL
        .iter()
        .map(|c| c.label().to_string())
        .collect();
    let groups: Vec<plot::BarGroup> = result
        .centroids
        .iter()
        .enumerate()
        .map(|(i, c)| plot::BarGroup {
            label: format!("type{}", i + 1),
            values: c.clone(),
            errors: None,
        })
        .collect();
    let svg = plot::bar_chart(
        &plot::ChartConfig {
            title: "Fig 8: cluster centroids over application realms".into(),
            x_label: "application realm".into(),
            y_label: "normalized traffic share".into(),
            ..plot::ChartConfig::default()
        },
        &categories,
        &groups,
    );
    plot::save_svg(&args.out_dir, "fig8.svg", &svg);
    args.write_metrics();
}
