//! Ablation (not a paper figure): the user-friendliness trade-off that
//! motivates the paper. Online rebalancing — the "other category" of load
//! balancing — migrates sessions mid-flight: good balance, bad user
//! experience. S³ is arrival-only. This experiment quantifies both axes:
//! balance index vs. connection disruptions per served session.

use s3_bench::{fmt, write_csv, Args, Scenario};
use s3_trace::TraceStore;
use s3_types::TimeDelta;
use s3_wlan::metrics::mean_active_balance_filtered;
use s3_wlan::selector::LeastLoadedFirst;
use s3_wlan::{RebalanceConfig, SimConfig, SimEngine};

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);
    let bin = TimeDelta::minutes(10);
    let daytime = |h: u64| h >= 8;
    let eval = scenario.eval_demands();

    let rebalanced = SimEngine::new(
        scenario.topology.clone(),
        SimConfig {
            rebalance: Some(RebalanceConfig::default()),
            ..SimConfig::default()
        },
    );

    println!("migration ablation: balance vs user disruption");
    let mut rows = Vec::new();
    let mut measure = |label: &str, engine: &SimEngine, selector: &mut dyn s3_wlan::ApSelector| {
        let result = engine.run(&eval, selector);
        let migrations = result.migrations;
        let log = TraceStore::new(result.records);
        let balance = mean_active_balance_filtered(&log, bin, daytime).unwrap_or(0.0);
        let per_1k = migrations as f64 * 1_000.0 / eval.len() as f64;
        println!(
            "  {label:<18} balance {balance:.4} | {migrations:>6} migrations ({per_1k:.1} per 1k sessions)"
        );
        rows.push(format!(
            "{label},{},{migrations},{}",
            fmt(balance),
            fmt(per_1k)
        ));
    };

    let mut s3 = scenario.default_s3(args.seed);
    let mut s3_rb = scenario.default_s3(args.seed);
    measure("llf", &scenario.engine, &mut LeastLoadedFirst::new());
    measure("llf+rebalance", &rebalanced, &mut LeastLoadedFirst::new());
    measure("s3", &scenario.engine, &mut s3);
    measure("s3+rebalance", &rebalanced, &mut s3_rb);

    write_csv(
        &args.out_dir,
        "ablation_migration.csv",
        "policy,mean_daytime_balance,migrations,migrations_per_1k_sessions",
        rows,
    );
    println!(
        "\nreading: online rebalancing buys LLF balance at the cost of mid-session\n\
         disruptions; S3 reaches comparable balance with zero migrations — the\n\
         paper's 'user-friendly steady' claim, quantified."
    );
    args.write_metrics();
}
