//! Fig. 2 — CDF of the normalized balance index over all controllers,
//! under the incumbent LLF policy, for average hours vs peak hours.
//!
//! Paper reading: ~20 % of peak-hour samples and ~60 % of workday samples
//! fall below 0.5 — LLF alone cannot keep domains balanced.

use s3_bench::{fmt, plot, write_csv, Args, Scenario};
use s3_stats::cdf::Ecdf;
use s3_trace::generator::is_peak_hour;
use s3_types::TimeDelta;
use s3_wlan::metrics::balance_samples;

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);

    let samples = balance_samples(&scenario.llf_log, TimeDelta::hours(1));
    let average: Vec<f64> = samples
        .iter()
        .filter(|s| s.active)
        .map(|s| s.value)
        .collect();
    let peak: Vec<f64> = samples
        .iter()
        .filter(|s| s.active && is_peak_hour(s.start.hour_of_day()))
        .map(|s| s.value)
        .collect();

    let cdf_avg = Ecdf::new(average).expect("workday samples exist");
    let cdf_peak = Ecdf::new(peak).expect("peak samples exist");

    println!("fig2: normalized balance index CDF under LLF");
    println!(
        "  workday samples: {} | below 0.5: {:.1}% (paper: ~60%)",
        cdf_avg.len(),
        cdf_avg.fraction_below(0.5) * 100.0
    );
    println!(
        "  peak-hour samples: {} | below 0.5: {:.1}% (paper: ~20%)",
        cdf_peak.len(),
        cdf_peak.fraction_below(0.5) * 100.0
    );

    let rows = (0..=100).map(|i| {
        let x = i as f64 / 100.0;
        format!(
            "{},{},{}",
            fmt(x),
            fmt(cdf_avg.eval(x)),
            fmt(cdf_peak.eval(x))
        )
    });
    write_csv(
        &args.out_dir,
        "fig2.csv",
        "balance_index,cdf_average_hours,cdf_peak_hours",
        rows,
    );

    let curve = |cdf: &Ecdf| -> Vec<(f64, f64)> {
        (0..=100)
            .map(|i| {
                let x = i as f64 / 100.0;
                (x, cdf.eval(x))
            })
            .collect()
    };
    let svg = plot::line_chart(
        &plot::ChartConfig {
            title: "Fig 2: balance index CDF under LLF".into(),
            x_label: "normalized balance index".into(),
            y_label: "CDF".into(),
            ..plot::ChartConfig::default()
        },
        &[
            plot::Series::new("average hours", curve(&cdf_avg)),
            plot::Series::new("peak hours", curve(&cdf_peak)),
        ],
    );
    plot::save_svg(&args.out_dir, "fig2.svg", &svg);
    args.write_metrics();
}
