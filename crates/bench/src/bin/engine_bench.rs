//! Machine-readable sharded-engine throughput benchmark.
//!
//! Generates a campus demand trace (timing the parallel generator against
//! the legacy sequential one), then replays it through
//! `SimEngine::run_sharded_streamed` (records discarded by a counting
//! sink) at a sweep of `(policy, shard count)` cells, timing each run.
//! The output is one JSON document — events/sec and users/sec per cell —
//! suitable for archiving as a build artifact and diffing across commits:
//!
//! ```text
//! engine_bench [--out results/BENCH_engine.json]
//!              [--scale campus|district|city]
//!              [--users N] [--buildings N] [--aps-per-building N] [--days N]
//!              [--seed N] [--shards 1,2,4,8] [--policies llf,s3] [--repeats N]
//! ```
//!
//! `--scale city` is the headline configuration: 10⁶ users over 10⁴ APs
//! for one day, the engine-bench scale from `docs/PERF.md`. The default
//! is a 10⁵-user district so the sweep finishes in CI time. Results are
//! byte-identical across shard counts (asserted here via the per-run
//! placement totals), so the sweep measures pure orchestration cost.
//!
//! Measurement protocol (mirroring `clique_bench`): when `--repeats` is
//! above one, every cell gets one untimed warmup, then the timed rounds
//! visit all cells in round-robin order and each cell keeps its minimum.
//! Interleaving keeps clock-frequency drift from biasing a sequential
//! cell-by-cell comparison, and the minimum discards contention spikes.
//!
//! The S³ model is trained once, outside every timed region, on an LLF
//! replay of the whole trace (the throughput benchmark does not need a
//! train/eval split — it measures selection cost, not placement quality).
//!
//! The checked-in `results/BENCH_engine.json` is a reference
//! measurement; CI regenerates a smaller smoke sweep as
//! `BENCH_engine.ci.json` and uploads it without comparing.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use s3_core::{S3Config, S3Selector, SocialModel};
use s3_obs::MetricValue;
use s3_trace::generator::{CampusConfig, CampusGenerator};
use s3_trace::{SessionDemand, SessionRecord, TraceStore};
use s3_wlan::engine::SliceSource;
use s3_wlan::selector::{ApSelector, LeastLoadedFirst};
use s3_wlan::{RecordSink, SimConfig, SimEngine, Topology};

const USAGE: &str = "usage: engine_bench [--out <path.json>] [--scale campus|district|city] \
                     [--users N] [--buildings N] [--aps-per-building N] [--days N] \
                     [--seed N] [--shards 1,2,4,8] [--policies llf,s3] [--repeats N]";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// `(users, buildings, aps_per_building, days)` presets, mirroring the
/// CLI's `generate --scale`.
fn scale_preset(name: &str) -> (usize, usize, usize, u64) {
    match name {
        "campus" => (2_000, 8, 8, 31),
        "district" => (100_000, 64, 16, 2),
        // 10⁶ users over 10⁴ APs, one day.
        "city" => (1_000_000, 1_250, 8, 1),
        other => {
            eprintln!("unknown --scale {other:?}\n{USAGE}");
            std::process::exit(2);
        }
    }
}

/// Discards records, counting them — the cheapest possible sink, so the
/// measurement is the engine, not I/O.
#[derive(Default)]
struct CountSink {
    records: u64,
}

impl RecordSink for CountSink {
    fn emit(&mut self, _record: SessionRecord) -> std::io::Result<()> {
        self.records += 1;
        Ok(())
    }
}

/// Current value of the engine's `events_processed` counter.
fn events_processed() -> u64 {
    s3_obs::global()
        .snapshot()
        .metrics
        .iter()
        .find(|m| m.name == "wlan.engine.events_processed")
        .map(|m| match m.value {
            MetricValue::Counter(v) => v,
            _ => 0,
        })
        .unwrap_or(0)
}

struct Sample {
    seconds: f64,
    events: u64,
    records: u64,
    placed: usize,
}

/// One sweep cell: a `(policy, shard count)` pair and its best sample.
struct Cell {
    policy: &'static str,
    shards: usize,
    best: Option<Sample>,
}

/// Boxed per-shard selectors for `policy`. The S³ model is cloned per
/// shard — construction stays outside the timed region.
fn build_selectors(
    policy: &str,
    shards: usize,
    s3: Option<&(SocialModel, S3Config)>,
) -> Vec<Box<dyn ApSelector + Send>> {
    (0..shards)
        .map(|_| match policy {
            "llf" => Box::new(LeastLoadedFirst::new()) as Box<dyn ApSelector + Send>,
            "s3" => {
                let (model, config) = s3.expect("s3 model trained before the sweep");
                Box::new(S3Selector::new(model.clone(), config.clone()))
                    as Box<dyn ApSelector + Send>
            }
            other => {
                eprintln!("unknown policy {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        })
        .collect()
}

/// One timed streamed replay of a cell.
fn run_cell(
    engine: &SimEngine,
    demands: &[SessionDemand],
    policy: &str,
    shards: usize,
    s3: Option<&(SocialModel, S3Config)>,
) -> Sample {
    let mut selectors = build_selectors(policy, shards, s3);
    let mut source = SliceSource::new(demands);
    let mut sink = CountSink::default();
    let before = events_processed();
    let start = Instant::now();
    let totals = engine
        .run_sharded_streamed(&mut source, &mut selectors, &mut sink)
        .expect("streamed replay");
    let seconds = start.elapsed().as_secs_f64();
    let sample = Sample {
        seconds,
        events: events_processed() - before,
        records: sink.records,
        placed: totals.placed,
    };
    assert_eq!(
        sample.records as usize, sample.placed,
        "placement-mode replay emits one record per placed demand"
    );
    sample
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return;
    }
    let out = flag(&args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/BENCH_engine.json"));
    let (mut users, mut buildings, mut aps_per_building, mut days) =
        scale_preset(&flag(&args, "--scale").unwrap_or_else(|| "district".into()));
    if let Some(v) = flag(&args, "--users").and_then(|v| v.parse().ok()) {
        users = v;
    }
    if let Some(v) = flag(&args, "--buildings").and_then(|v| v.parse().ok()) {
        buildings = v;
    }
    if let Some(v) = flag(&args, "--aps-per-building").and_then(|v| v.parse().ok()) {
        aps_per_building = v;
    }
    if let Some(v) = flag(&args, "--days").and_then(|v| v.parse().ok()) {
        days = v;
    }
    let seed: u64 = flag(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(21);
    let repeats: usize = flag(&args, "--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let shard_counts: Vec<usize> = flag(&args, "--shards")
        .unwrap_or_else(|| "1,2,4,8".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--shards takes a comma list"))
        .collect();
    let policies: Vec<&'static str> = flag(&args, "--policies")
        .unwrap_or_else(|| "llf,s3".into())
        .split(',')
        .map(|p| match p.trim() {
            "llf" => "llf",
            "s3" => "s3",
            other => {
                eprintln!("unknown policy {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        })
        .collect();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = s3_par::resolve_threads(None);

    let config = CampusConfig {
        users,
        buildings,
        aps_per_building,
        days,
        ..CampusConfig::campus()
    };
    eprintln!(
        "engine_bench: generating {users} users x {days} day(s) over {} APs \
         (seed {seed}, {threads} thread(s))...",
        buildings * aps_per_building
    );
    let gen_start = Instant::now();
    let campus = CampusGenerator::new(config.clone(), seed).generate_par(threads);
    let gen_seconds = gen_start.elapsed().as_secs_f64();
    let mut demands = campus.demands;
    demands.sort_by_key(|d| (d.arrive, d.user));
    eprintln!(
        "engine_bench: {} demands generated in {gen_seconds:.1}s (parallel path)",
        demands.len()
    );
    // Time the legacy sequential generator too: the parallel path draws
    // per-entity seed streams, so it is a different (equally valid) trace
    // and the comparison is wall clock, not byte output.
    let seq_start = Instant::now();
    let sequential = CampusGenerator::new(config, seed).generate();
    let gen_seconds_sequential = seq_start.elapsed().as_secs_f64();
    eprintln!(
        "engine_bench: sequential generator {gen_seconds_sequential:.1}s \
         ({:.2}x slower)",
        gen_seconds_sequential / gen_seconds
    );
    drop(sequential);

    let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());

    // Train S³ once, outside every timed region, if the sweep needs it.
    let s3_artifact: Option<(SocialModel, S3Config)> = if policies.contains(&"s3") {
        let train_start = Instant::now();
        let llf = engine.run(&demands, &mut LeastLoadedFirst::new());
        let log = TraceStore::new(llf.records);
        let s3_config = S3Config {
            threads,
            ..S3Config::default()
        };
        let model = SocialModel::learn(&log, &s3_config, seed);
        eprintln!(
            "engine_bench: s3 model trained in {:.1}s (untimed)",
            train_start.elapsed().as_secs_f64()
        );
        Some((model, s3_config))
    } else {
        None
    };

    let mut cells: Vec<Cell> = policies
        .iter()
        .flat_map(|&policy| {
            shard_counts.iter().map(move |&shards| Cell {
                policy,
                shards,
                best: None,
            })
        })
        .collect();

    if repeats > 1 {
        for cell in &cells {
            let _ = run_cell(
                &engine,
                &demands,
                cell.policy,
                cell.shards,
                s3_artifact.as_ref(),
            );
        }
    }
    for round in 0..repeats {
        for cell in &mut cells {
            let sample = run_cell(
                &engine,
                &demands,
                cell.policy,
                cell.shards,
                s3_artifact.as_ref(),
            );
            if round == 0 {
                eprintln!(
                    "engine_bench: policy={} shards={} {:.2}s {:.0} events/s {:.0} users/s",
                    cell.policy,
                    cell.shards,
                    sample.seconds,
                    sample.events as f64 / sample.seconds,
                    sample.placed as f64 / sample.seconds
                );
            }
            if cell
                .best
                .as_ref()
                .is_none_or(|b| sample.seconds < b.seconds)
            {
                cell.best = Some(sample);
            }
        }
    }

    // Decision totals are shard-invariant per policy; a drift here is a
    // correctness bug, not a measurement artifact.
    for &policy in &policies {
        let placed: Vec<usize> = cells
            .iter()
            .filter(|c| c.policy == policy)
            .map(|c| c.best.as_ref().expect("cell measured").placed)
            .collect();
        assert!(
            placed.windows(2).all(|w| w[0] == w[1]),
            "policy {policy}: shard counts must place identically, got {placed:?}"
        );
    }

    let mut doc = String::from("{\n");
    let _ = writeln!(doc, "  \"bench\": \"engine\",");
    let _ = writeln!(doc, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        doc,
        "  \"users\": {users},\n  \"buildings\": {buildings},\n  \"aps\": {},\n  \"days\": {days},\n  \"seed\": {seed},\n  \"repeats\": {repeats},",
        buildings * aps_per_building
    );
    let _ = writeln!(doc, "  \"demands\": {},", demands.len());
    let _ = writeln!(doc, "  \"generate_threads\": {threads},");
    let _ = writeln!(doc, "  \"generate_seconds\": {gen_seconds:.2},");
    let _ = writeln!(
        doc,
        "  \"generate_seconds_sequential\": {gen_seconds_sequential:.2},"
    );
    let _ = writeln!(
        doc,
        "  \"generate_speedup\": {:.2},",
        gen_seconds_sequential / gen_seconds
    );
    doc.push_str("  \"sweep\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let s = c.best.as_ref().expect("cell measured");
        let base_seconds = cells
            .iter()
            .find(|b| b.policy == c.policy)
            .and_then(|b| b.best.as_ref())
            .expect("baseline cell measured")
            .seconds;
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            doc,
            "    {{\"policy\": \"{}\", \"shards\": {}, \"seconds\": {:.3}, \"events\": {}, \
             \"events_per_sec\": {:.0}, \"users_per_sec\": {:.0}, \"speedup_vs_1\": {:.2}}}{sep}",
            c.policy,
            c.shards,
            s.seconds,
            s.events,
            s.events as f64 / s.seconds,
            s.placed as f64 / s.seconds,
            base_seconds / s.seconds
        );
    }
    doc.push_str("  ]\n}\n");

    if let Some(dir) = out.parent() {
        fs::create_dir_all(dir).expect("create output directory");
    }
    fs::write(&out, &doc).expect("write benchmark json");
    println!("engine_bench wrote {}", out.display());
}
