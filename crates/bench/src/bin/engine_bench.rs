//! Machine-readable sharded-engine throughput benchmark.
//!
//! Generates a campus demand trace, then replays it through
//! `SimEngine::run_sharded_streamed` (records discarded by a counting
//! sink) at a sweep of shard counts, timing each run. The output is one
//! JSON document — events/sec and users/sec per shard count — suitable
//! for archiving as a build artifact and diffing across commits:
//!
//! ```text
//! engine_bench [--out results/BENCH_engine.json]
//!              [--scale campus|district|city]
//!              [--users N] [--buildings N] [--aps-per-building N] [--days N]
//!              [--seed N] [--shards 1,2,4,8] [--repeats N]
//! ```
//!
//! `--scale city` is the headline configuration: 10⁶ users over 10⁴ APs
//! for one day, the engine-bench scale from `docs/PERF.md`. The default
//! is a 10⁵-user district so the sweep finishes in CI time. Results are
//! byte-identical across shard counts (asserted here via the per-run
//! totals), so the sweep measures pure orchestration cost.
//!
//! The checked-in `results/BENCH_engine.json` is a reference
//! measurement; CI regenerates a smaller smoke sweep as
//! `BENCH_engine.ci.json` and uploads it without comparing.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use s3_obs::MetricValue;
use s3_trace::generator::{CampusConfig, CampusGenerator};
use s3_trace::{SessionDemand, SessionRecord};
use s3_wlan::engine::SliceSource;
use s3_wlan::selector::{ApSelector, LeastLoadedFirst};
use s3_wlan::{RecordSink, SimConfig, SimEngine, Topology};

const USAGE: &str = "usage: engine_bench [--out <path.json>] [--scale campus|district|city] \
                     [--users N] [--buildings N] [--aps-per-building N] [--days N] \
                     [--seed N] [--shards 1,2,4,8] [--repeats N]";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// `(users, buildings, aps_per_building, days)` presets, mirroring the
/// CLI's `generate --scale`.
fn scale_preset(name: &str) -> (usize, usize, usize, u64) {
    match name {
        "campus" => (2_000, 8, 8, 31),
        "district" => (100_000, 64, 16, 2),
        // 10⁶ users over 10⁴ APs, one day.
        "city" => (1_000_000, 1_250, 8, 1),
        other => {
            eprintln!("unknown --scale {other:?}\n{USAGE}");
            std::process::exit(2);
        }
    }
}

/// Discards records, counting them — the cheapest possible sink, so the
/// measurement is the engine, not I/O.
#[derive(Default)]
struct CountSink {
    records: u64,
}

impl RecordSink for CountSink {
    fn emit(&mut self, _record: SessionRecord) -> std::io::Result<()> {
        self.records += 1;
        Ok(())
    }
}

/// Current value of the engine's `events_processed` counter.
fn events_processed() -> u64 {
    s3_obs::global()
        .snapshot()
        .metrics
        .iter()
        .find(|m| m.name == "wlan.engine.events_processed")
        .map(|m| match m.value {
            MetricValue::Counter(v) => v,
            _ => 0,
        })
        .unwrap_or(0)
}

struct Sample {
    shards: usize,
    seconds: f64,
    events: u64,
    records: u64,
    placed: usize,
}

/// One timed streamed replay at `shards`; the fastest of `repeats` runs
/// (throughput benchmarks want the least-disturbed sample).
fn run_once(
    engine: &SimEngine,
    demands: &[SessionDemand],
    shards: usize,
    repeats: usize,
) -> Sample {
    let mut best: Option<Sample> = None;
    for _ in 0..repeats.max(1) {
        let mut selectors: Vec<Box<dyn ApSelector + Send>> = (0..shards)
            .map(|_| Box::new(LeastLoadedFirst::new()) as Box<dyn ApSelector + Send>)
            .collect();
        let mut source = SliceSource::new(demands);
        let mut sink = CountSink::default();
        let before = events_processed();
        let start = Instant::now();
        let totals = engine
            .run_sharded_streamed(&mut source, &mut selectors, &mut sink)
            .expect("streamed replay");
        let seconds = start.elapsed().as_secs_f64();
        let sample = Sample {
            shards,
            seconds,
            events: events_processed() - before,
            records: sink.records,
            placed: totals.placed,
        };
        assert_eq!(
            sample.records as usize, sample.placed,
            "placement-mode replay emits one record per placed demand"
        );
        if best.as_ref().is_none_or(|b| sample.seconds < b.seconds) {
            best = Some(sample);
        }
    }
    best.expect("at least one repeat")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return;
    }
    let out = flag(&args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/BENCH_engine.json"));
    let (mut users, mut buildings, mut aps_per_building, mut days) =
        scale_preset(&flag(&args, "--scale").unwrap_or_else(|| "district".into()));
    if let Some(v) = flag(&args, "--users").and_then(|v| v.parse().ok()) {
        users = v;
    }
    if let Some(v) = flag(&args, "--buildings").and_then(|v| v.parse().ok()) {
        buildings = v;
    }
    if let Some(v) = flag(&args, "--aps-per-building").and_then(|v| v.parse().ok()) {
        aps_per_building = v;
    }
    if let Some(v) = flag(&args, "--days").and_then(|v| v.parse().ok()) {
        days = v;
    }
    let seed: u64 = flag(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(21);
    let repeats: usize = flag(&args, "--repeats")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let shard_counts: Vec<usize> = flag(&args, "--shards")
        .unwrap_or_else(|| "1,2,4,8".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--shards takes a comma list"))
        .collect();

    let config = CampusConfig {
        users,
        buildings,
        aps_per_building,
        days,
        ..CampusConfig::campus()
    };
    eprintln!(
        "engine_bench: generating {users} users x {days} day(s) over {} APs (seed {seed})...",
        buildings * aps_per_building
    );
    let gen_start = Instant::now();
    let campus = CampusGenerator::new(config, seed).generate();
    let mut demands = campus.demands;
    demands.sort_by_key(|d| (d.arrive, d.user));
    let gen_seconds = gen_start.elapsed().as_secs_f64();
    eprintln!(
        "engine_bench: {} demands generated in {gen_seconds:.1}s",
        demands.len()
    );

    let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());

    let mut samples: Vec<Sample> = Vec::new();
    for &shards in &shard_counts {
        let sample = run_once(&engine, &demands, shards, repeats);
        eprintln!(
            "engine_bench: shards={shards} {:.2}s {:.0} events/s {:.0} users/s",
            sample.seconds,
            sample.events as f64 / sample.seconds,
            sample.placed as f64 / sample.seconds
        );
        samples.push(sample);
    }
    // Decision totals are shard-invariant; a drift here is a correctness
    // bug, not a measurement artifact.
    for s in &samples {
        assert_eq!(
            s.placed, samples[0].placed,
            "shard counts must place identically"
        );
    }

    let base_seconds = samples[0].seconds;
    let mut doc = String::from("{\n");
    let _ = writeln!(doc, "  \"bench\": \"engine\",");
    let _ = writeln!(
        doc,
        "  \"users\": {users},\n  \"buildings\": {buildings},\n  \"aps\": {},\n  \"days\": {days},\n  \"seed\": {seed},\n  \"repeats\": {repeats},",
        buildings * aps_per_building
    );
    let _ = writeln!(doc, "  \"demands\": {},", demands.len());
    let _ = writeln!(doc, "  \"generate_seconds\": {gen_seconds:.2},");
    doc.push_str("  \"sweep\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            doc,
            "    {{\"shards\": {}, \"seconds\": {:.3}, \"events\": {}, \
             \"events_per_sec\": {:.0}, \"users_per_sec\": {:.0}, \"speedup_vs_1\": {:.2}}}{sep}",
            s.shards,
            s.seconds,
            s.events,
            s.events as f64 / s.seconds,
            s.placed as f64 / s.seconds,
            base_seconds / s.seconds
        );
    }
    doc.push_str("  ]\n}\n");

    if let Some(dir) = out.parent() {
        fs::create_dir_all(dir).expect("create output directory");
    }
    fs::write(&out, &doc).expect("write benchmark json");
    println!("engine_bench wrote {}", out.display());
}
