//! Table I — the co-leave probability matrix `T(typeᵢ, typeⱼ)` between the
//! four user groups.
//!
//! Paper reading: the matrix is diagonal-dominant — a user is more likely
//! to leave together with someone of their own type.

use s3_bench::{fmt, write_csv, Args, Scenario};
use s3_core::{S3Config, SocialModel};

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);

    let config = S3Config {
        fixed_k: Some(4),
        ..S3Config::default()
    };
    let model = SocialModel::learn(&scenario.training_log(), &config, args.seed);
    let matrix = model.type_matrix();
    let k = matrix.k();

    println!("table1: co-leave probability between user types");
    print!("        ");
    for j in 0..k {
        print!("type{}   ", j + 1);
    }
    println!();
    for i in 0..k {
        print!("type{}   ", i + 1);
        for j in 0..k {
            print!("{:<8.3}", matrix.get(i, j));
        }
        println!();
    }
    println!(
        "  diagonal mean = {:.3} vs off-diagonal mean = {:.3} (paper: diagonal dominant)",
        matrix.diagonal_mean(),
        matrix.off_diagonal_mean()
    );

    let rows = (0..k).map(|i| {
        let cells: Vec<String> = (0..k).map(|j| fmt(matrix.get(i, j))).collect();
        format!("type{},{}", i + 1, cells.join(","))
    });
    let header = {
        let mut h = String::from("row");
        for j in 0..k {
            h.push_str(&format!(",type{}", j + 1));
        }
        h
    };
    write_csv(&args.out_dir, "table1.csv", &header, rows);
    args.write_metrics();
}
