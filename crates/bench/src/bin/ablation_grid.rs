//! Ablation (not a paper figure): the full strategy × scenario stress
//! grid. Every strategy in the default registry replays the evaluation
//! days of a campus trace stressed by each adversarial scenario
//! ([`s3_trace::generator::scenario`]): flash-crowd surges, rolling AP
//! outages, heterogeneous AP capacities and roaming users, next to the
//! unedited benign trace. Three numbers per cell:
//!
//! * `mean_daytime_balance` — the paper's balance index, active daytime
//!   bins only;
//! * `migrations` — rebalancer moves during the evaluation window (the
//!   user-disruption cost S³ is designed to avoid);
//! * `p95_ap_load_mbps` — the tail of the per-(AP, 10-min bin) load
//!   distribution, the hotspot signal.
//!
//! ```text
//! ablation_grid [--seed N] [--out <dir>] [--threads N] [--tiny]
//! ```
//!
//! `--tiny` shrinks the campus and truncates the scenario list — the CI
//! smoke configuration. Output: `<out>/ABLATION_grid.csv` and
//! `<out>/BENCH_ablation.json`. Both are byte-deterministic for a fixed
//! seed at any thread count.

use std::any::Any;
use std::path::PathBuf;

use s3_bench::{fmt, write_csv, EVAL_DAYS};
use s3_core::{strategy_registry, S3Config, SocialModel};
use s3_trace::generator::{apply_scenario, CampusConfig, CampusGenerator, ScenarioSpec};
use s3_trace::{SessionDemand, TraceStore};
use s3_types::{TimeDelta, Timestamp, SECS_PER_DAY};
use s3_wlan::metrics::mean_active_balance_filtered;
use s3_wlan::selector::LeastLoadedFirst;
use s3_wlan::{BuildContext, RebalanceConfig, SimConfig, SimEngine, Topology};

/// The scenario column of the grid: name → spec for
/// [`ScenarioSpec::parse`].
const SCENARIOS: &[(&str, &str)] = &[
    ("benign", "benign"),
    ("flash-crowd", "flash-crowd"),
    ("rolling-outage", "rolling-outage"),
    ("hetero-caps", "hetero-caps"),
    ("roaming", "roaming"),
];

struct GridArgs {
    seed: u64,
    out_dir: PathBuf,
    threads: usize,
    tiny: bool,
}

fn usage(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!("usage: ablation_grid [--seed <u64>] [--out <dir>] [--threads <n>] [--tiny]");
    std::process::exit(if message.is_empty() { 0 } else { 2 });
}

fn parse_args() -> GridArgs {
    let mut args = GridArgs {
        seed: 42,
        out_dir: PathBuf::from("results"),
        threads: 0,
        tiny: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--seed" => {
                let value = iter.next().unwrap_or_else(|| usage("--seed needs a value"));
                args.seed = value
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be a u64"));
            }
            "--out" => {
                let value = iter.next().unwrap_or_else(|| usage("--out needs a value"));
                args.out_dir = PathBuf::from(value);
            }
            "--threads" => {
                let value = iter
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a value"));
                args.threads = value
                    .parse()
                    .unwrap_or_else(|_| usage("--threads must be a usize"));
            }
            "--tiny" => args.tiny = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    args
}

/// One stressed world: the scenario-edited demands and the (possibly
/// capacity-tiered) topology they play out on.
struct World {
    demands: Vec<SessionDemand>,
    engine: SimEngine,
    days: u64,
}

impl World {
    fn build(config: CampusConfig, spec_text: &str, seed: u64) -> World {
        let spec = ScenarioSpec::parse(spec_text, config.days).expect("grid scenarios parse");
        let mut campus = CampusGenerator::new(config, seed).generate();
        apply_scenario(&mut campus.demands, &campus.config, &spec, seed);
        // Heterogeneous capacities reshape the topology, not the trace.
        let mut aps = Topology::from_campus(&campus.config).aps().to_vec();
        for ap in &mut aps {
            if let Some(capacity) = spec.capacity.capacity_of(ap.id.index()) {
                ap.capacity = capacity;
            }
        }
        let engine = SimEngine::new(
            Topology::from_aps(aps),
            SimConfig {
                rebalance: Some(RebalanceConfig::default()),
                ..SimConfig::default()
            },
        );
        World {
            demands: campus.demands,
            days: campus.config.days,
            engine,
        }
    }

    /// Demands arriving in the evaluation window (the last [`EVAL_DAYS`]).
    fn eval_demands(&self) -> Vec<SessionDemand> {
        let first = self.days.saturating_sub(EVAL_DAYS);
        let cut = Timestamp::from_secs(first * SECS_PER_DAY);
        self.demands
            .iter()
            .filter(|d| d.arrive >= cut)
            .cloned()
            .collect()
    }

    /// Trains the S³ model the way the CLI does: the pre-evaluation days
    /// replayed under LLF stand in for the collected log.
    fn train_s3(&self, threads: usize, seed: u64) -> SocialModel {
        let first_eval = self.days.saturating_sub(EVAL_DAYS);
        let cut = Timestamp::from_secs(first_eval * SECS_PER_DAY);
        let history: Vec<SessionDemand> = self
            .demands
            .iter()
            .filter(|d| d.arrive < cut)
            .cloned()
            .collect();
        let log = TraceStore::new(
            self.engine
                .run(&history, &mut LeastLoadedFirst::new())
                .records,
        );
        let config = S3Config {
            threads,
            ..S3Config::default()
        };
        SocialModel::learn(&log, &config, seed)
    }
}

/// p95 of the per-(AP, bin) load distribution over the log, in Mbps.
fn p95_ap_load_mbps(log: &TraceStore, bin: TimeDelta) -> f64 {
    let Some((first_day, last_day)) = log.day_range() else {
        return 0.0;
    };
    let start = Timestamp::from_secs(first_day * SECS_PER_DAY);
    let end = Timestamp::from_secs((last_day + 1) * SECS_PER_DAY);
    let mut samples: Vec<f64> = Vec::new();
    for controller in log.controllers() {
        let mut t = start;
        while t < end {
            for (_, volume) in log.ap_volumes_in(controller, t, t + bin) {
                let mbps = volume.as_f64() * 8.0 / bin.as_secs() as f64 / 1.0e6;
                samples.push(mbps);
            }
            t += bin;
        }
    }
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((samples.len() - 1) as f64 * 0.95).ceil() as usize;
    samples[rank]
}

fn main() {
    let args = parse_args();
    let config = if args.tiny {
        CampusConfig {
            days: 6,
            ..CampusConfig::tiny()
        }
    } else {
        CampusConfig {
            users: 800,
            buildings: 4,
            aps_per_building: 4,
            days: 10,
            ..CampusConfig::campus()
        }
    };
    let scenarios = if args.tiny {
        &SCENARIOS[..2]
    } else {
        SCENARIOS
    };
    let registry = strategy_registry();
    let bin = TimeDelta::minutes(10);
    let daytime = |h: u64| h >= 8;

    println!(
        "ablation grid: {} strategies x {} scenarios (seed {})",
        registry.names().count(),
        scenarios.len(),
        args.seed
    );
    let mut rows = Vec::new();
    let mut sweep = Vec::new();
    for (scenario_name, spec_text) in scenarios {
        let world = World::build(config.clone(), spec_text, args.seed);
        let model = world.train_s3(args.threads, args.seed);
        let eval = world.eval_demands();
        for entry in registry.entries() {
            let artifact = entry
                .caps()
                .needs_training
                .then_some(&model as &(dyn Any + Send + Sync));
            let mut selector = entry
                .build(&BuildContext {
                    seed: args.seed,
                    shard: 0,
                    threads: args.threads,
                    artifact,
                })
                .expect("every registered strategy builds");
            let result = world.engine.run(&eval, selector.as_mut());
            let migrations = result.migrations;
            let log = TraceStore::new(result.records);
            let balance = mean_active_balance_filtered(&log, bin, daytime).unwrap_or(0.0);
            let tail = p95_ap_load_mbps(&log, bin);
            println!(
                "  {scenario_name:<15} {:<12} balance {balance:.4}  migrations {migrations:>5}  p95 {tail:.2} Mbps",
                entry.name()
            );
            rows.push(format!(
                "{},{scenario_name},{},{migrations},{}",
                entry.name(),
                fmt(balance),
                fmt(tail)
            ));
            sweep.push(format!(
                "    {{\"strategy\": \"{}\", \"scenario\": \"{scenario_name}\", \
                 \"mean_daytime_balance\": {}, \"migrations\": {migrations}, \
                 \"p95_ap_load_mbps\": {}}}",
                entry.name(),
                fmt(balance),
                fmt(tail)
            ));
        }
    }
    write_csv(
        &args.out_dir,
        "ABLATION_grid.csv",
        "strategy,scenario,mean_daytime_balance,migrations,p95_ap_load_mbps",
        rows,
    );
    let doc = format!(
        "{{\n  \"bench\": \"ablation_grid\",\n  \"users\": {},\n  \"buildings\": {},\n  \
         \"aps\": {},\n  \"days\": {},\n  \"seed\": {},\n  \"eval_days\": {EVAL_DAYS},\n  \
         \"strategies\": {},\n  \"scenarios\": {},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        config.users,
        config.buildings,
        config.total_aps(),
        config.days,
        args.seed,
        registry.names().count(),
        scenarios.len(),
        sweep.join(",\n")
    );
    let json_path = args.out_dir.join("BENCH_ablation.json");
    std::fs::write(&json_path, doc).expect("write benchmark json");
    println!("wrote {}", json_path.display());
}
