//! Fig. 5 — CDF over users of the fraction of their leavings that are
//! co-leavings, for 10/20/30-minute extraction windows.
//!
//! Paper reading: most users show strong sociality — they rarely leave an
//! AP alone.

use s3_bench::{fmt, plot, write_csv, Args, Scenario};
use s3_stats::cdf::Ecdf;
use s3_trace::events::leaving_stats;
use s3_types::TimeDelta;

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);
    let store = &scenario.llf_log;

    let windows = [
        ("10min", TimeDelta::minutes(10)),
        ("20min", TimeDelta::minutes(20)),
        ("30min", TimeDelta::minutes(30)),
    ];
    let mut cdfs = Vec::new();
    println!("fig5: co-leaving fraction per user");
    for (label, window) in windows {
        let stats = leaving_stats(store, window);
        let fractions: Vec<f64> = stats
            .values()
            .filter(|s| s.total > 0)
            .map(|s| s.co_leaving_fraction())
            .collect();
        let cdf = Ecdf::new(fractions).expect("users with leavings exist");
        println!(
            "  {label}: {} users | median co-leaving fraction: {:.2}",
            cdf.len(),
            cdf.quantile(0.5)
        );
        cdfs.push(cdf);
    }

    let rows = (0..=100).map(|i| {
        let x = i as f64 / 100.0;
        format!(
            "{},{},{},{}",
            fmt(x),
            fmt(cdfs[0].eval(x)),
            fmt(cdfs[1].eval(x)),
            fmt(cdfs[2].eval(x))
        )
    });
    write_csv(
        &args.out_dir,
        "fig5.csv",
        "co_leaving_fraction,cdf_10min,cdf_20min,cdf_30min",
        rows,
    );

    let labels = ["10 min", "20 min", "30 min"];
    let series: Vec<plot::Series> = cdfs
        .iter()
        .zip(labels)
        .map(|(cdf, label)| {
            let points = (0..=100)
                .map(|i| {
                    let x = i as f64 / 100.0;
                    (x, cdf.eval(x))
                })
                .collect();
            plot::Series::new(label, points)
        })
        .collect();
    let svg = plot::line_chart(
        &plot::ChartConfig {
            title: "Fig 5: per-user co-leaving fraction".into(),
            x_label: "fraction of leavings that are co-leavings".into(),
            y_label: "CDF over users".into(),
            ..plot::ChartConfig::default()
        },
        &series,
    );
    plot::save_svg(&args.out_dir, "fig5.svg", &svg);
    args.write_metrics();
}
