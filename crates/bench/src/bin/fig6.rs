//! Fig. 6 — average NMI between a user's day-`x` application profile and
//! the profile aggregated over days `x−1 … x−n`, as a function of `n`.
//!
//! Paper reading: the NMI rises with `n` and plateaus around `n ≈ 15` —
//! fifteen days of history suffice to capture a user's application
//! interest; older data neither helps nor hurts.

use s3_bench::{fmt, plot, write_csv, Args, Scenario};
use s3_stats::entropy::profile_nmi;
use s3_trace::TraceStore;
use s3_types::APP_CATEGORY_COUNT;

/// Quantization levels of the population NMI estimator (see DESIGN.md §5).
const LEVELS: usize = 8;

/// NMI between day-`x` profiles and `n`-day history profiles, over all
/// users with traffic on day `x` and in the window.
fn nmi_for(store: &TraceStore, x: u64, n: u64) -> Option<f64> {
    let first = x.checked_sub(n)?;
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for user in store.users() {
        let today = store.user_day_volumes(user, x);
        let today_total: f64 = today.iter().map(|b| b.as_f64()).sum();
        if today_total <= 0.0 {
            continue;
        }
        let history = store.user_window_volumes(user, first, x - 1);
        let hist_total: f64 = history.iter().map(|b| b.as_f64()).sum();
        if hist_total <= 0.0 {
            continue;
        }
        for i in 0..APP_CATEGORY_COUNT {
            pairs.push((
                today[i].as_f64() / today_total,
                history[i].as_f64() / hist_total,
            ));
        }
    }
    profile_nmi(pairs, LEVELS).ok()
}

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);
    let store = &scenario.llf_log;

    // Two reference days, like the paper's 7/26 and 7/27 curves.
    let day_a = scenario.train_last_day();
    let day_b = day_a.saturating_sub(1);
    let n_max = day_b.min(30);

    println!("fig6: NMI vs history age (reference days {day_a} and {day_b})");
    let mut rows = Vec::new();
    let mut plateau_check = Vec::new();
    for n in 1..=n_max {
        let a = nmi_for(store, day_a, n).unwrap_or(0.0);
        let b = nmi_for(store, day_b, n).unwrap_or(0.0);
        rows.push(format!("{n},{},{}", fmt(a), fmt(b)));
        plateau_check.push(a);
    }
    if let (Some(&early), Some(&late)) = (plateau_check.first(), plateau_check.last()) {
        let mid = plateau_check.get(14).copied().unwrap_or(late);
        println!(
            "  NMI(n=1) = {early:.3}, NMI(n=15) = {mid:.3}, NMI(n={n_max}) = {late:.3} \
             (paper: rises then plateaus ≈ 15 days)"
        );
    }
    write_csv(
        &args.out_dir,
        "fig6.csv",
        "history_days,nmi_day_a,nmi_day_b",
        rows,
    );

    let series_a: Vec<(f64, f64)> = (1..=n_max)
        .map(|n| (n as f64, nmi_for(store, day_a, n).unwrap_or(0.0)))
        .collect();
    let series_b: Vec<(f64, f64)> = (1..=n_max)
        .map(|n| (n as f64, nmi_for(store, day_b, n).unwrap_or(0.0)))
        .collect();
    let svg = plot::line_chart(
        &plot::ChartConfig {
            title: "Fig 6: NMI vs history age".into(),
            x_label: "age of oldest history data (days)".into(),
            y_label: "NMI".into(),
            ..plot::ChartConfig::default()
        },
        &[
            plot::Series::new(format!("day {day_a}"), series_a),
            plot::Series::new(format!("day {day_b}"), series_b),
        ],
    );
    plot::save_svg(&args.out_dir, "fig6.svg", &svg);
    args.write_metrics();
}
