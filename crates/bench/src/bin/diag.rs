//! Diagnostic (not a paper figure): how do LLF and S³ place social groups,
//! and where does each lose balance?

use std::collections::{HashMap, HashSet};

use s3_bench::{Args, Scenario};
use s3_types::{ApId, TimeDelta};
use s3_wlan::metrics::{balance_samples, mean_active_balance_filtered};
use s3_wlan::selector::LeastLoadedFirst;

fn main() {
    let args = Args::parse();
    let scenario = Scenario::build(&args);
    let bin = TimeDelta::minutes(10);

    let mut llf = LeastLoadedFirst::new();
    let llf_log = scenario.run_eval(&mut llf);
    let mut s3 = scenario.default_s3(args.seed);
    let s3_log = scenario.run_eval(&mut s3);

    println!(
        "model: {} known pairs, {} types",
        s3.model().known_pairs(),
        s3.model().type_count()
    );

    // For each group-meeting occurrence in the eval window: how many
    // distinct APs served the attending members?
    for (name, log) in [("llf", &llf_log), ("s3", &s3_log)] {
        let mut spread_sum = 0.0;
        let mut attend_sum = 0.0;
        let mut n = 0u32;
        for group in &scenario.campus.ground_truth.groups {
            if group.members.len() < 6 {
                continue;
            }
            for day in scenario.eval_first_day()..=scenario.eval_last_day() {
                for meeting in &group.meetings {
                    let Some((start, end)) = meeting.occurrence_on(day) else {
                        continue;
                    };
                    let mut aps: HashSet<ApId> = HashSet::new();
                    let mut attending = 0;
                    for r in log.sessions_overlapping(start + TimeDelta::minutes(30), end) {
                        if group.members.contains(&r.user)
                            && r.disconnect.abs_diff(end) <= TimeDelta::minutes(15)
                        {
                            aps.insert(r.ap);
                            attending += 1;
                        }
                    }
                    if attending >= 4 {
                        spread_sum += aps.len() as f64;
                        attend_sum += attending as f64;
                        n += 1;
                    }
                }
            }
        }
        println!(
            "{name}: {} meetings | mean attendees {:.1} | mean distinct APs {:.2}",
            n,
            attend_sum / n.max(1) as f64,
            spread_sum / n.max(1) as f64
        );
    }

    // Hour-of-day balance comparison.
    println!("hour | llf    | s3     | active-bin count llf");
    let llf_samples = balance_samples(&llf_log, bin);
    for hour in 8..24u64 {
        let l = mean_active_balance_filtered(&llf_log, bin, |h| h == hour);
        let s = mean_active_balance_filtered(&s3_log, bin, |h| h == hour);
        let count = llf_samples
            .iter()
            .filter(|x| x.active && x.start.hour_of_day() == hour)
            .count();
        if let (Some(l), Some(s)) = (l, s) {
            println!("{hour:>4} | {l:.4} | {s:.4} | {count}");
        }
    }

    // Per-user demand spread (how heavy-tailed are rates?).
    let mut rates: Vec<f64> = HashMap::<u32, f64>::new().into_values().collect();
    let mut per_user: HashMap<u32, (f64, u32)> = HashMap::new();
    for r in llf_log.records() {
        let e = per_user.entry(r.user.raw()).or_insert((0.0, 0));
        e.0 += r.mean_rate().as_f64();
        e.1 += 1;
    }
    rates.extend(per_user.values().map(|&(s, c)| s / c as f64));
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if !rates.is_empty() {
        let pct = |q: f64| rates[((rates.len() - 1) as f64 * q) as usize];
        println!(
            "user mean-rate kbps: p10 {:.0} | p50 {:.0} | p90 {:.0} | p99 {:.0}",
            pct(0.1) / 1e3,
            pct(0.5) / 1e3,
            pct(0.9) / 1e3,
            pct(0.99) / 1e3
        );
    }
    args.write_metrics();
}
