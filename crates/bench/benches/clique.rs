//! Performance of the maximum-clique search and clique partition — the
//! inner loop of Algorithm 1 (one partition per arrival batch).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

use s3_graph::clique::{reference, CliqueBudget, CliqueWorkspace};
use s3_graph::{clique, partition, SocialGraph};

fn random_graph(n: usize, density: f64, seed: u64) -> SocialGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = SocialGraph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.random::<f64>() < density {
                g.add_edge(u, v, rng.random_range(0.3..1.0)).unwrap();
            }
        }
    }
    g
}

fn bench_max_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_clique");
    for &n in &[16usize, 32, 64] {
        for &density in &[0.1, 0.3] {
            let g = random_graph(n, density, 42);
            group.bench_with_input(BenchmarkId::new(format!("d{density}"), n), &g, |b, g| {
                b.iter(|| black_box(clique::max_clique(g)))
            });
        }
    }
    group.finish();
}

fn bench_clique_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique_partition");
    for &n in &[16usize, 32, 64] {
        let g = random_graph(n, 0.2, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(partition::clique_partition(g)))
        });
    }
    group.finish();
}

/// Word-level kernel (reused workspace) vs the pinned reference searcher
/// on dense graphs, under the same node budget for both sides. Parity
/// tests guarantee identical search trees, so the ratio is pure per-node
/// overhead.
fn bench_kernel_vs_reference(c: &mut Criterion) {
    let budget = CliqueBudget { max_nodes: 200_000 };
    let mut group = c.benchmark_group("kernel_vs_reference");
    for &(n, density) in &[(64usize, 0.3), (128, 0.3), (256, 0.2)] {
        let g = random_graph(n, density, 42);
        group.bench_with_input(
            BenchmarkId::new(format!("reference_d{density}"), n),
            &g,
            |b, g| b.iter(|| black_box(reference::max_clique_with_budget(g, budget))),
        );
        let mut ws = CliqueWorkspace::new();
        group.bench_with_input(
            BenchmarkId::new(format!("kernel_d{density}"), n),
            &g,
            |b, g| b.iter(|| black_box(ws.max_clique(g, budget))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_max_clique,
    bench_clique_partition,
    bench_kernel_vs_reference
);
criterion_main!(benches);
