//! Sequential vs parallel wall-clock for the four hot paths the
//! deterministic execution layer covers: encounter extraction, the gap
//! statistic, the clique distribution search, and a fig10-style parameter
//! sweep. Each group benchmarks the same call at 1 and N threads; the
//! outputs are bit-identical by construction, so the comparison is pure
//! speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

use s3_bench::Scenario;
use s3_core::batch::{assign_clique, ApSlot};
use s3_core::{S3Config, S3Selector};
use s3_stats::gap::{gap_statistic, GapConfig};
use s3_stats::rng::dirichlet_symmetric;
use s3_trace::events::extract_encounters_par;
use s3_trace::generator::CampusConfig;
use s3_trace::{SessionRecord, TraceStore};
use s3_types::{ApId, AppCategory, Bytes, ControllerId, TimeDelta, Timestamp, UserId};
use s3_wlan::metrics::mean_active_balance_filtered;

/// Thread counts to benchmark: 1 vs the machine's parallelism (plus 4 as a
/// mid-point on wide machines). `S3_BENCH_THREADS=1,4,8` overrides the list
/// explicitly — useful for pinning the table in EXPERIMENTS.md.
fn thread_counts() -> Vec<usize> {
    if let Ok(list) = std::env::var("S3_BENCH_THREADS") {
        let counts: Vec<usize> = list
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
        if !counts.is_empty() {
            return counts;
        }
    }
    let n = s3_par::available_threads();
    let mut counts = vec![1];
    if n >= 4 {
        counts.push(4);
    }
    if n > 1 && n != 4 {
        counts.push(n);
    }
    counts
}

/// A dense synthetic day: `users` users with several sessions each over a
/// small AP set, so the per-AP pair scans dominate.
fn dense_store(users: u32, seed: u64) -> TraceStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    for user in 0..users {
        for s in 0..6u64 {
            let start = s * 10_000 + rng.random_range(0..2_000u64);
            let mut volume_by_app = [Bytes::ZERO; 6];
            volume_by_app[AppCategory::WebBrowsing.index()] = Bytes::megabytes(5);
            records.push(SessionRecord {
                user: UserId::new(user),
                ap: ApId::new(rng.random_range(0..8u32)),
                controller: ControllerId::new(0),
                connect: Timestamp::from_secs(start),
                disconnect: Timestamp::from_secs(start + rng.random_range(1_000..8_000u64)),
                volume_by_app,
            });
        }
    }
    TraceStore::new(records)
}

fn bench_encounters(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_encounters_u800");
    let store = dense_store(800, 3);
    let min_overlap = TimeDelta::minutes(10);
    for threads in thread_counts() {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(extract_encounters_par(&store, min_overlap, threads)))
            },
        );
    }
    group.finish();
}

fn bench_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_gap_statistic_n400_kmax6");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    let points: Vec<Vec<f64>> = (0..400)
        .map(|_| dirichlet_symmetric(&mut rng, 6, 0.5))
        .collect();
    for threads in thread_counts() {
        let config = GapConfig {
            threads,
            ..GapConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &config,
            |b, config| b.iter(|| black_box(gap_statistic(&points, 6, config, 3).unwrap())),
        );
    }
    group.finish();
}

fn bench_clique_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_assign_clique_c6_m5");
    // 5^6 = 15_625 candidates: inside the default enumeration limit.
    let clique: Vec<UserId> = (0..6).map(UserId::new).collect();
    let slots: Vec<ApSlot> = (0..5)
        .map(|s| ApSlot {
            load: s as f64 * 1e6,
            capacity: 1e8,
            members: (0..10).map(|w| UserId::new(100 + s * 10 + w)).collect(),
        })
        .collect();
    let delta = |a: UserId, b: UserId| {
        let (lo, hi) = (a.raw().min(b.raw()), a.raw().max(b.raw()));
        ((lo * 31 + hi * 17) % 100) as f64 / 100.0
    };
    for threads in thread_counts() {
        let config = S3Config {
            threads,
            ..S3Config::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &config,
            |b, config| {
                b.iter(|| black_box(assign_clique(&clique, &slots, delta, |_| 1e4, config)))
            },
        );
    }
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_fig10_style_sweep_tiny");
    group.sample_size(10);
    let scenario = Scenario::from_config(CampusConfig::tiny(), 42);
    let grid: Vec<(u64, f64)> = [2u64, 5, 10]
        .iter()
        .flat_map(|&w| [0.1, 0.3].iter().map(move |&alpha| (w, alpha)))
        .collect();
    let bin = TimeDelta::minutes(10);
    for threads in thread_counts() {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(s3_par::par_map(&grid, threads, |_, &(w, alpha)| {
                        let config = S3Config {
                            alpha,
                            coleave_window: TimeDelta::minutes(w),
                            fixed_k: Some(4),
                            ..S3Config::default()
                        };
                        let model = scenario.train_s3(&config, 42);
                        let mut s3 = S3Selector::new(model, config);
                        let log = scenario.run_eval(&mut s3);
                        mean_active_balance_filtered(&log, bin, |h| h >= 8).unwrap_or(0.0)
                    }))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encounters,
    bench_gap,
    bench_clique_search,
    bench_sweep
);
criterion_main!(benches);
