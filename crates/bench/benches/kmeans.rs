//! Performance of profile clustering: k-means and the gap statistic over
//! 6-dimensional application profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use s3_stats::gap::{gap_statistic, GapConfig};
use s3_stats::kmeans::{fit, KMeansConfig};
use s3_stats::rng::dirichlet_symmetric;

fn profiles(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| dirichlet_symmetric(&mut rng, 6, 0.5))
        .collect()
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_k4");
    for &n in &[200usize, 1_000, 4_000] {
        let points = profiles(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, p| {
            b.iter(|| black_box(fit(p, 4, &KMeansConfig::default(), 9).unwrap()))
        });
    }
    group.finish();
}

fn bench_gap_statistic(c: &mut Criterion) {
    let mut group = c.benchmark_group("gap_statistic_kmax6");
    group.sample_size(10);
    for &n in &[200usize, 500] {
        let points = profiles(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &points, |b, p| {
            b.iter(|| black_box(gap_statistic(p, 6, &GapConfig::default(), 3).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmeans, bench_gap_statistic);
criterion_main!(benches);
