//! Throughput of the two replay paths over identical demand streams:
//! the in-memory slice path (`SimEngine::run`) vs the streaming path
//! (`SimEngine::run_streamed` pulling demands through a CSV reader and
//! pushing records to a sink that retains nothing).
//!
//! The streaming numbers include CSV decode per demand, so they bound the
//! real `s3wlan replay --stream` cost; the memory story (peak RSS bounded
//! by concurrent sessions, not trace length) is demonstrated separately by
//! the `replay_mem` binary, which runs each path in a fresh process.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::io::Cursor;

use s3_trace::csv;
use s3_trace::generator::{CampusConfig, CampusGenerator};
use s3_trace::ingest::{DemandReader, IngestMode};
use s3_trace::SessionRecord;
use s3_wlan::selector::LeastLoadedFirst;
use s3_wlan::{RecordSink, SimConfig, SimEngine, StreamSource, Topology};

fn config(users: usize) -> CampusConfig {
    CampusConfig {
        buildings: 4,
        aps_per_building: 8,
        users,
        days: 5,
        ..CampusConfig::campus()
    }
}

/// Sink that counts emissions and drops every record — the floor of what
/// any incremental consumer costs.
struct CountSink(usize);

impl RecordSink for CountSink {
    fn emit(&mut self, record: SessionRecord) -> std::io::Result<()> {
        black_box(&record);
        self.0 += 1;
        Ok(())
    }
}

fn bench_replay_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_throughput_5days");
    group.sample_size(10);
    for &users in &[200usize, 800] {
        let campus = CampusGenerator::new(config(users), 3).generate();
        let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
        let mut bytes = Vec::new();
        csv::write_demands(&mut bytes, &campus.demands).expect("in-memory CSV");
        let n = campus.demands.len() as u64;

        group.bench_with_input(
            BenchmarkId::new("memory", n),
            &campus.demands,
            |b, demands| b.iter(|| black_box(engine.run(demands, &mut LeastLoadedFirst::new()))),
        );
        group.bench_with_input(BenchmarkId::new("stream", n), &bytes, |b, bytes| {
            b.iter(|| {
                let reader = DemandReader::new(Cursor::new(bytes.as_slice()), IngestMode::Strict)
                    .expect("valid header")
                    .without_publish();
                let mut source = StreamSource::new(reader);
                let mut sink = CountSink(0);
                let totals = engine
                    .run_streamed(&mut source, &mut LeastLoadedFirst::new(), &mut sink)
                    .expect("clean stream");
                assert_eq!(sink.0, totals.records);
                black_box(totals)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay_paths);
criterion_main!(benches);
