//! Per-decision latency of the AP-selection policies: what a controller
//! pays per arriving user (single path) and per arrival burst (batch path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use s3_bench::Scenario;
use s3_trace::generator::CampusConfig;
use s3_types::{BitsPerSec, Timestamp, UserId};
use s3_wlan::selector::{
    views_of, ApCandidate, ApSelector, ArrivalUser, LeastLoadedFirst, SelectionContext,
};

fn scenario() -> Scenario {
    Scenario::from_config(
        CampusConfig {
            buildings: 4,
            aps_per_building: 8,
            users: 600,
            days: 8,
            ..CampusConfig::campus()
        },
        21,
    )
}

fn candidates(m: usize, users_each: u32) -> Vec<ApCandidate> {
    (0..m)
        .map(|i| ApCandidate {
            ap: s3_types::ApId::new(i as u32),
            load: BitsPerSec::mbps(i as f64 * 0.4),
            capacity: BitsPerSec::mbps(100.0),
            associated: (0..users_each)
                .map(|u| UserId::new(u * m as u32 + i as u32))
                .collect(),
        })
        .collect()
}

fn arrivals(n: usize, m: usize) -> Vec<ArrivalUser> {
    (0..n)
        .map(|i| ArrivalUser {
            user: UserId::new(10_000 + i as u32),
            now: Timestamp::from_secs(1_000),
            demand_hint: BitsPerSec::mbps(0.2),
            rssi: vec![-55.0; m],
        })
        .collect()
}

fn bench_single_select(c: &mut Criterion) {
    let s = scenario();
    let mut s3 = s.default_s3(1);
    let mut llf = LeastLoadedFirst::new();
    let cands = candidates(8, 12);
    let views = views_of(&cands);
    let arrival = &arrivals(1, 8)[0];

    let mut group = c.benchmark_group("single_select_8aps");
    group.bench_function("llf", |b| {
        b.iter(|| {
            let ctx = SelectionContext {
                arrival,
                candidates: &views,
            };
            black_box(llf.select(&ctx))
        })
    });
    group.bench_function("s3", |b| {
        b.iter(|| {
            let ctx = SelectionContext {
                arrival,
                candidates: &views,
            };
            black_box(s3.select(&ctx))
        })
    });
    group.finish();
}

fn bench_batch_select(c: &mut Criterion) {
    let s = scenario();
    let mut s3 = s.default_s3(2);
    let mut llf = LeastLoadedFirst::new();
    let cands = candidates(8, 12);
    let views = views_of(&cands);

    let mut group = c.benchmark_group("batch_select_8aps");
    for &batch in &[4usize, 12, 24] {
        let users = arrivals(batch, 8);
        group.bench_with_input(BenchmarkId::new("llf", batch), &users, |b, u| {
            b.iter(|| black_box(llf.select_batch(u, &views)))
        });
        group.bench_with_input(BenchmarkId::new("s3", batch), &users, |b, u| {
            b.iter(|| black_box(s3.select_batch(u, &views)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_select, bench_batch_select);
criterion_main!(benches);
