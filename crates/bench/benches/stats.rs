//! Performance of the statistical primitives on the hot analysis paths:
//! balance indexes per bin, event extraction over a full trace, NMI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

use s3_stats::balance::normalized_balance_index;
use s3_stats::entropy::profile_nmi;
use s3_trace::events::{extract_coleavings, extract_encounters};
use s3_trace::generator::{CampusConfig, CampusGenerator};
use s3_trace::TraceStore;
use s3_types::TimeDelta;
use s3_wlan::selector::LeastLoadedFirst;
use s3_wlan::{SimConfig, SimEngine, Topology};

fn bench_balance_index(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("normalized_balance_index");
    for &n in &[8usize, 64, 512] {
        let loads: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1e6)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &loads, |b, l| {
            b.iter(|| black_box(normalized_balance_index(l).unwrap()))
        });
    }
    group.finish();
}

fn bench_event_extraction(c: &mut Criterion) {
    let campus = CampusGenerator::new(
        CampusConfig {
            buildings: 4,
            aps_per_building: 8,
            users: 600,
            days: 7,
            ..CampusConfig::campus()
        },
        6,
    )
    .generate();
    let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
    let log = TraceStore::new(
        engine
            .run(&campus.demands, &mut LeastLoadedFirst::new())
            .records,
    );
    let mut group = c.benchmark_group("event_mining_7days_600users");
    group.sample_size(10);
    group.bench_function("encounters", |b| {
        b.iter(|| black_box(extract_encounters(&log, TimeDelta::minutes(10))))
    });
    group.bench_function("coleavings", |b| {
        b.iter(|| black_box(extract_coleavings(&log, TimeDelta::minutes(5))))
    });
    group.finish();
}

fn bench_nmi(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let mut group = c.benchmark_group("profile_nmi");
    for &n in &[1_000usize, 10_000] {
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                let x: f64 = rng.random();
                (x, (x + rng.random::<f64>() * 0.2).clamp(0.0, 1.0))
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &pairs, |b, p| {
            b.iter(|| black_box(profile_nmi(p.iter().copied(), 8).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_balance_index,
    bench_event_extraction,
    bench_nmi
);
criterion_main!(benches);
