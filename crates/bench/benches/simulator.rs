//! Throughput of the end-to-end pipeline stages: trace generation, replay,
//! and model learning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use s3_core::{S3Config, SocialModel};
use s3_trace::generator::{CampusConfig, CampusGenerator};
use s3_trace::TraceStore;
use s3_wlan::selector::LeastLoadedFirst;
use s3_wlan::{SimConfig, SimEngine, Topology};

fn config(users: usize) -> CampusConfig {
    CampusConfig {
        buildings: 4,
        aps_per_building: 8,
        users,
        days: 5,
        ..CampusConfig::campus()
    }
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation_5days");
    group.sample_size(10);
    for &users in &[200usize, 800] {
        group.bench_with_input(BenchmarkId::from_parameter(users), &users, |b, &u| {
            b.iter(|| black_box(CampusGenerator::new(config(u), 3).generate()))
        });
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_llf_5days");
    group.sample_size(10);
    for &users in &[200usize, 800] {
        let campus = CampusGenerator::new(config(users), 3).generate();
        let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
        group.bench_with_input(
            BenchmarkId::from_parameter(campus.demands.len()),
            &campus.demands,
            |b, demands| b.iter(|| black_box(engine.run(demands, &mut LeastLoadedFirst::new()))),
        );
    }
    group.finish();
}

fn bench_learning(c: &mut Criterion) {
    let mut group = c.benchmark_group("social_model_learn_5days");
    group.sample_size(10);
    for &users in &[200usize, 800] {
        let campus = CampusGenerator::new(config(users), 3).generate();
        let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
        let log = TraceStore::new(
            engine
                .run(&campus.demands, &mut LeastLoadedFirst::new())
                .records,
        );
        let s3_config = S3Config {
            fixed_k: Some(4),
            ..S3Config::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(users), &log, |b, log| {
            b.iter(|| black_box(SocialModel::learn(log, &s3_config, 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_replay, bench_learning);
criterion_main!(benches);
