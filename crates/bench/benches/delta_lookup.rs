//! δ-probe microbenchmarks: the hashed [`SocialModel`] data plane against
//! the compiled one (dense interning + CSR adjacency + flat type matrix).
//!
//! Three tiers, from raw probe to full decision:
//!
//! 1. `delta_probe` — a single δ(u, v) evaluation. `hashed` pays two
//!    `HashMap` lookups (pair probability, user types); `compiled` pays a
//!    raw-id intern plus a binary search over u's CSR row;
//!    `compiled_dense` starts from pre-interned dense ids, which is what
//!    the selector hot loop actually does.
//! 2. `slot_cost` — Σ δ(u, w) over an AP's member list, the inner kernel
//!    of [`CliqueCost`] table construction.
//! 3. `select_batch` — the full S³ batch decision with the compiled
//!    selector scratch, for end-to-end context.
//!
//! `selector_bench` (the binary) replays the same shapes with hand-rolled
//! timing and writes `results/BENCH_selector.json`; this bench is the
//! statistically careful interactive view of the same comparison.
//!
//! [`SocialModel`]: s3_core::SocialModel
//! [`CliqueCost`]: s3_core::batch

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use s3_bench::Scenario;
use s3_core::{CompiledModel, S3Config, SocialModel};
use s3_trace::generator::CampusConfig;
use s3_types::{ApId, BitsPerSec, Timestamp, UserId};
use s3_wlan::selector::{views_of, ApCandidate, ApSelector, ArrivalUser};

fn scenario() -> Scenario {
    Scenario::from_config(
        CampusConfig {
            buildings: 4,
            aps_per_building: 8,
            users: 600,
            days: 8,
            ..CampusConfig::campus()
        },
        21,
    )
}

/// The trained model plus every user id the training log touched, in a
/// deterministic order.
fn trained(s: &Scenario) -> (SocialModel, Vec<UserId>) {
    let model = s.train_s3(&S3Config::default(), 1);
    let mut ids: Vec<u32> = s.llf_log.records().iter().map(|r| r.user.raw()).collect();
    ids.sort_unstable();
    ids.dedup();
    (model, ids.into_iter().map(UserId::new).collect())
}

fn candidates(m: usize, users_each: u32) -> Vec<ApCandidate> {
    (0..m)
        .map(|i| ApCandidate {
            ap: ApId::new(i as u32),
            load: BitsPerSec::mbps(i as f64 * 0.4),
            capacity: BitsPerSec::mbps(100.0),
            associated: (0..users_each)
                .map(|u| UserId::new(u * m as u32 + i as u32))
                .collect(),
        })
        .collect()
}

fn arrivals(n: usize, m: usize) -> Vec<ArrivalUser> {
    (0..n)
        .map(|i| ArrivalUser {
            user: UserId::new(10_000 + i as u32),
            now: Timestamp::from_secs(1_000),
            demand_hint: BitsPerSec::mbps(0.2),
            rssi: vec![-55.0; m],
        })
        .collect()
}

fn bench_delta_probe(c: &mut Criterion) {
    let s = scenario();
    let (model, ids) = trained(&s);
    let compiled = CompiledModel::compile(&model);
    // Probe every ordered pair from a fixed slice of known users — a mix
    // of CSR hits and misses, exactly what clique-cost construction sees.
    let probe: Vec<UserId> = ids.iter().copied().take(64).collect();
    let dense: Vec<u32> = probe
        .iter()
        .map(|&u| compiled.dense_or_unknown(u))
        .collect();

    let mut group = c.benchmark_group("delta_probe");
    group.bench_function("hashed", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &u in &probe {
                for &v in &probe {
                    acc += model.delta(u, v);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("compiled", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &u in &probe {
                for &v in &probe {
                    acc += compiled.delta(u, v);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("compiled_dense", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &i in &dense {
                for &j in &dense {
                    acc += compiled.delta_dense(i, j);
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_slot_cost(c: &mut Criterion) {
    let s = scenario();
    let (model, ids) = trained(&s);
    let compiled = CompiledModel::compile(&model);
    let arrival = ids[0];
    let arrival_dense = compiled.dense_or_unknown(arrival);

    let mut group = c.benchmark_group("slot_cost");
    for &members in &[8usize, 32, 128] {
        let member_ids: Vec<UserId> = ids.iter().copied().skip(1).take(members).collect();
        let mut dense = Vec::new();
        compiled.extend_dense(member_ids.iter().copied(), &mut dense);
        group.bench_with_input(BenchmarkId::new("hashed", members), &member_ids, |b, m| {
            b.iter(|| black_box(m.iter().map(|&w| model.delta(arrival, w)).sum::<f64>()))
        });
        group.bench_with_input(BenchmarkId::new("compiled", members), &dense, |b, d| {
            b.iter(|| black_box(compiled.slot_cost(arrival_dense, d)))
        });
    }
    group.finish();
}

fn bench_select_batch(c: &mut Criterion) {
    let s = scenario();
    let mut s3 = s.default_s3(2);
    let cands = candidates(8, 12);
    let views = views_of(&cands);

    let mut group = c.benchmark_group("select_batch_compiled");
    for &batch in &[4usize, 24] {
        let users = arrivals(batch, 8);
        group.bench_with_input(BenchmarkId::new("s3", batch), &users, |b, u| {
            b.iter(|| black_box(s3.select_batch(u, &views)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_delta_probe,
    bench_slot_cost,
    bench_select_batch
);
criterion_main!(benches);
