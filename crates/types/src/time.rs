//! Simulation time.
//!
//! All trace records and simulator events are stamped with a [`Timestamp`]:
//! whole seconds since the start of the simulated trace (day 0, 00:00:00).
//! The paper slices its three-month trace by day, hour-of-day and
//! sub-periods of minutes, so the type carries exactly those helpers.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// Seconds per minute.
pub const SECS_PER_MINUTE: u64 = 60;
/// Seconds per hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds per day.
pub const SECS_PER_DAY: u64 = 86_400;

/// An instant in simulated time: seconds since day 0, 00:00:00.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct Timestamp(u64);

/// A span of simulated time in whole seconds.
///
/// Spans are non-negative; subtracting a later timestamp from an earlier one
/// saturates to zero (use [`Timestamp::abs_diff`] for unsigned distance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct TimeDelta(u64);

impl Timestamp {
    /// The start of the trace: day 0, 00:00:00.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from raw seconds since trace start.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs)
    }

    /// Creates a timestamp from a (day, hour, minute, second) clock reading.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`, `min >= 60` or `sec >= 60`.
    ///
    /// # Example
    /// ```
    /// # use s3_types::Timestamp;
    /// let t = Timestamp::from_day_hms(1, 10, 30, 0);
    /// assert_eq!(t.as_secs(), 86_400 + 10 * 3_600 + 30 * 60);
    /// ```
    pub fn from_day_hms(day: u64, hour: u64, min: u64, sec: u64) -> Self {
        assert!(hour < 24, "hour out of range: {hour}");
        assert!(min < 60, "minute out of range: {min}");
        assert!(sec < 60, "second out of range: {sec}");
        Timestamp(day * SECS_PER_DAY + hour * SECS_PER_HOUR + min * SECS_PER_MINUTE + sec)
    }

    /// Raw seconds since trace start.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The simulated day index (day 0 is the first trace day).
    #[inline]
    pub const fn day(self) -> u64 {
        self.0 / SECS_PER_DAY
    }

    /// Hour of day, `0..24`.
    #[inline]
    pub const fn hour_of_day(self) -> u64 {
        (self.0 % SECS_PER_DAY) / SECS_PER_HOUR
    }

    /// Minute of hour, `0..60`.
    #[inline]
    pub const fn minute_of_hour(self) -> u64 {
        (self.0 % SECS_PER_HOUR) / SECS_PER_MINUTE
    }

    /// Seconds elapsed since the most recent midnight.
    #[inline]
    pub const fn secs_of_day(self) -> u64 {
        self.0 % SECS_PER_DAY
    }

    /// Unsigned distance between two instants.
    #[inline]
    pub const fn abs_diff(self, other: Timestamp) -> TimeDelta {
        TimeDelta(self.0.abs_diff(other.0))
    }

    /// Saturating difference: zero when `other` is later than `self`.
    #[inline]
    pub const fn saturating_sub(self, other: Timestamp) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(other.0))
    }

    /// Rounds this timestamp down to a multiple of `bin` (used to bucket
    /// throughput samples into fixed analysis bins).
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    #[inline]
    pub fn floor_to(self, bin: TimeDelta) -> Timestamp {
        assert!(bin.0 > 0, "bin width must be positive");
        Timestamp(self.0 / bin.0 * bin.0)
    }
}

impl TimeDelta {
    /// A zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Creates a span from whole seconds.
    #[inline]
    pub const fn secs(secs: u64) -> Self {
        TimeDelta(secs)
    }

    /// Creates a span from whole minutes.
    #[inline]
    pub const fn minutes(mins: u64) -> Self {
        TimeDelta(mins * SECS_PER_MINUTE)
    }

    /// Creates a span from whole hours.
    #[inline]
    pub const fn hours(hours: u64) -> Self {
        TimeDelta(hours * SECS_PER_HOUR)
    }

    /// Creates a span from whole days.
    #[inline]
    pub const fn days(days: u64) -> Self {
        TimeDelta(days * SECS_PER_DAY)
    }

    /// The span in whole seconds.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The span in seconds as a float (for rate computations).
    #[inline]
    pub const fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }

    /// True when the span is zero seconds long.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked integer division of two spans (how many `rhs` fit in `self`).
    #[inline]
    pub const fn div_floor(self, rhs: TimeDelta) -> Option<u64> {
        self.0.checked_div(rhs.0)
    }
}

impl Add<TimeDelta> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> Timestamp {
        Timestamp(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign<TimeDelta> for Timestamp {
    #[inline]
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            self.day(),
            self.hour_of_day(),
            self.minute_of_hour(),
            self.0 % SECS_PER_MINUTE
        )
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_decomposition() {
        let t = Timestamp::from_day_hms(2, 15, 45, 30);
        assert_eq!(t.day(), 2);
        assert_eq!(t.hour_of_day(), 15);
        assert_eq!(t.minute_of_hour(), 45);
        assert_eq!(t.secs_of_day(), 15 * 3600 + 45 * 60 + 30);
    }

    #[test]
    #[should_panic(expected = "hour out of range")]
    fn from_day_hms_rejects_bad_hour() {
        let _ = Timestamp::from_day_hms(0, 24, 0, 0);
    }

    #[test]
    fn arithmetic_is_saturating_downward() {
        let t = Timestamp::from_secs(100);
        assert_eq!((t - TimeDelta::secs(200)).as_secs(), 0);
        assert_eq!(
            Timestamp::from_secs(50).saturating_sub(Timestamp::from_secs(80)),
            TimeDelta::ZERO
        );
        assert_eq!(
            Timestamp::from_secs(50).abs_diff(Timestamp::from_secs(80)),
            TimeDelta::secs(30)
        );
    }

    #[test]
    fn floor_to_bins() {
        let t = Timestamp::from_secs(605);
        assert_eq!(t.floor_to(TimeDelta::minutes(10)).as_secs(), 600);
        assert_eq!(
            Timestamp::from_secs(599)
                .floor_to(TimeDelta::minutes(10))
                .as_secs(),
            0
        );
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn floor_to_zero_bin_panics() {
        let _ = Timestamp::from_secs(1).floor_to(TimeDelta::ZERO);
    }

    #[test]
    fn delta_constructors_agree() {
        assert_eq!(TimeDelta::minutes(3), TimeDelta::secs(180));
        assert_eq!(TimeDelta::hours(2), TimeDelta::minutes(120));
        assert_eq!(TimeDelta::days(1), TimeDelta::hours(24));
        assert_eq!(TimeDelta::days(1).div_floor(TimeDelta::hours(1)), Some(24));
        assert_eq!(TimeDelta::days(1).div_floor(TimeDelta::ZERO), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Timestamp::from_day_hms(1, 9, 5, 7).to_string(),
            "d1+09:05:07"
        );
        assert_eq!(TimeDelta::minutes(2).to_string(), "120s");
    }

    #[test]
    fn ordering_follows_seconds() {
        assert!(Timestamp::from_secs(5) < Timestamp::from_secs(6));
        assert!(TimeDelta::secs(5) < TimeDelta::secs(6));
    }
}
