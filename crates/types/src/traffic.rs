//! Traffic volume and rate units.
//!
//! The trace logs a per-session *served traffic amount* ([`Bytes`]) and the
//! simulator models AP capacity and user demand as rates ([`BitsPerSec`]).
//! Keeping the two in distinct newtypes prevents the classic bytes-vs-bits
//! unit bug at compile time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

use crate::TimeDelta;

/// A traffic volume in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a volume from a raw byte count.
    #[inline]
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a volume from whole kilobytes (10³ bytes).
    #[inline]
    pub const fn kilobytes(kb: u64) -> Self {
        Bytes(kb * 1_000)
    }

    /// Creates a volume from whole megabytes (10⁶ bytes).
    #[inline]
    pub const fn megabytes(mb: u64) -> Self {
        Bytes(mb * 1_000_000)
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as `f64` for statistics.
    #[inline]
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// True when the volume is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Mean rate of this volume spread over `span`.
    ///
    /// Returns `None` when `span` is zero.
    pub fn rate_over(self, span: TimeDelta) -> Option<BitsPerSec> {
        if span.is_zero() {
            None
        } else {
            Some(BitsPerSec::new(self.0 as f64 * 8.0 / span.as_secs_f64()))
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Bytes {
    #[inline]
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}GB", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}MB", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}KB", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A traffic rate in bits per second.
///
/// AP capacities (`W(i)` in the paper's constraint `Σ w(u) ≤ W(i)`) and
/// estimated user demands (`w(u)`) are both rates.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[cfg_attr(feature = "serde", serde(transparent))]
pub struct BitsPerSec(f64);

impl BitsPerSec {
    /// Zero rate.
    pub const ZERO: BitsPerSec = BitsPerSec(0.0);

    /// Creates a rate from raw bits/s; negative or non-finite inputs clamp
    /// to zero so arithmetic downstream never sees garbage.
    #[inline]
    pub fn new(bps: f64) -> Self {
        if bps.is_finite() && bps > 0.0 {
            BitsPerSec(bps)
        } else {
            BitsPerSec(0.0)
        }
    }

    /// Creates a rate from megabits per second.
    #[inline]
    pub fn mbps(mbps: f64) -> Self {
        BitsPerSec::new(mbps * 1e6)
    }

    /// Raw bits per second.
    #[inline]
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// Volume transferred at this rate over `span` (rounded down to bytes).
    pub fn volume_over(self, span: TimeDelta) -> Bytes {
        Bytes::new((self.0 * span.as_secs_f64() / 8.0) as u64)
    }

    /// Saturating subtraction (never below zero).
    #[inline]
    pub fn saturating_sub(self, rhs: BitsPerSec) -> BitsPerSec {
        BitsPerSec::new(self.0 - rhs.0)
    }
}

impl Add for BitsPerSec {
    type Output = BitsPerSec;
    #[inline]
    fn add(self, rhs: BitsPerSec) -> BitsPerSec {
        BitsPerSec(self.0 + rhs.0)
    }
}

impl AddAssign for BitsPerSec {
    #[inline]
    fn add_assign(&mut self, rhs: BitsPerSec) {
        self.0 += rhs.0;
    }
}

impl Sum for BitsPerSec {
    fn sum<I: Iterator<Item = BitsPerSec>>(iter: I) -> BitsPerSec {
        BitsPerSec(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for BitsPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.2}Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.2}Kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.1}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors_scale() {
        assert_eq!(Bytes::kilobytes(2), Bytes::new(2_000));
        assert_eq!(Bytes::megabytes(3), Bytes::new(3_000_000));
    }

    #[test]
    fn byte_arithmetic() {
        let a = Bytes::new(100);
        let b = Bytes::new(30);
        assert_eq!(a + b, Bytes::new(130));
        assert_eq!(a - b, Bytes::new(70));
        assert_eq!(b - a, Bytes::ZERO); // saturating
        let total: Bytes = [a, b, b].into_iter().sum();
        assert_eq!(total, Bytes::new(160));
    }

    #[test]
    fn rate_volume_round_trip() {
        let rate = BitsPerSec::mbps(8.0); // 1 MB/s
        let vol = rate.volume_over(TimeDelta::secs(10));
        assert_eq!(vol, Bytes::new(10_000_000));
        let back = vol.rate_over(TimeDelta::secs(10)).unwrap();
        assert!((back.as_f64() - rate.as_f64()).abs() < 1e-6);
    }

    #[test]
    fn rate_over_zero_span_is_none() {
        assert_eq!(Bytes::new(5).rate_over(TimeDelta::ZERO), None);
    }

    #[test]
    fn rates_clamp_invalid_inputs() {
        assert_eq!(BitsPerSec::new(-5.0), BitsPerSec::ZERO);
        assert_eq!(BitsPerSec::new(f64::NAN), BitsPerSec::ZERO);
        assert_eq!(BitsPerSec::new(f64::INFINITY), BitsPerSec::ZERO);
    }

    #[test]
    fn rate_saturating_sub() {
        let a = BitsPerSec::mbps(2.0);
        let b = BitsPerSec::mbps(5.0);
        assert_eq!(a.saturating_sub(b), BitsPerSec::ZERO);
        assert!((b.saturating_sub(a).as_f64() - 3e6).abs() < 1e-6);
    }

    #[test]
    fn human_readable_display() {
        assert_eq!(Bytes::new(12).to_string(), "12B");
        assert_eq!(Bytes::new(1_500).to_string(), "1.50KB");
        assert_eq!(Bytes::new(2_500_000).to_string(), "2.50MB");
        assert_eq!(Bytes::new(3_000_000_000).to_string(), "3.00GB");
        assert_eq!(BitsPerSec::mbps(1.5).to_string(), "1.50Mbps");
        assert_eq!(BitsPerSec::new(2_000.0).to_string(), "2.00Kbps");
        assert_eq!(BitsPerSec::new(10.0).to_string(), "10.0bps");
    }
}
