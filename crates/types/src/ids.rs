//! Newtype identifiers for the entities of an enterprise WLAN.
//!
//! The paper's trace identifies users by hashed MAC address and APs by a
//! controller-scoped index. We model every identifier as a dense `u32`
//! newtype so that per-entity state can live in flat `Vec`s, which matters
//! for the simulator and for the pairwise social-index store.

use core::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        #[cfg_attr(feature = "serde", serde(transparent))]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from its dense index.
            ///
            /// # Example
            /// ```
            /// # use s3_types::UserId;
            /// let u = UserId::new(7);
            /// assert_eq!(u.index(), 7);
            /// ```
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the dense index backing this identifier.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u32 {
            fn from(v: $name) -> u32 {
                v.0
            }
        }
    };
}

id_newtype!(
    /// A WLAN user (a wireless station; the paper's hashed MAC address).
    UserId,
    "u"
);
id_newtype!(
    /// A light-weight access point.
    ApId,
    "ap"
);
id_newtype!(
    /// A WLAN controller; each controller manages the APs of one domain and
    /// runs the AP-selection algorithm for arrivals inside that domain.
    ControllerId,
    "ctl"
);
id_newtype!(
    /// A campus building; APs are deployed per building.
    BuildingId,
    "b"
);
id_newtype!(
    /// A social group (a class, lab or meeting cohort) used by the synthetic
    /// trace generator; the S³ algorithm itself never sees group identities.
    GroupId,
    "g"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(UserId::new(3).to_string(), "u3");
        assert_eq!(ApId::new(0).to_string(), "ap0");
        assert_eq!(ControllerId::new(12).to_string(), "ctl12");
        assert_eq!(BuildingId::new(5).to_string(), "b5");
        assert_eq!(GroupId::new(9).to_string(), "g9");
    }

    #[test]
    fn round_trips_through_u32() {
        let ap = ApId::from(42u32);
        assert_eq!(u32::from(ap), 42);
        assert_eq!(ap.index(), 42);
        assert_eq!(ap.raw(), 42);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(UserId::new(1) < UserId::new(2));
        let set: HashSet<UserId> = [UserId::new(1), UserId::new(1), UserId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn distinct_id_types_do_not_compare() {
        // Compile-time property: UserId and ApId are different types.
        // This test documents the intent; the real check is that the
        // following would not compile: `UserId::new(1) == ApId::new(1)`.
        let u = UserId::new(1);
        let a = ApId::new(1);
        assert_eq!(u.index(), a.index());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(UserId::default(), UserId::new(0));
    }
}
