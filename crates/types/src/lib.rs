//! Core vocabulary types shared by every crate in the S³ reproduction.
//!
//! This crate defines the identifiers, simulation-time arithmetic, traffic
//! units and application-profile vectors that the trace generator, the WLAN
//! simulator, the measurement-analysis machinery and the S³ algorithm itself
//! all speak. Nothing in here allocates on hot paths; every type is a thin
//! newtype with the invariants of its domain enforced at construction.
//!
//! # Example
//!
//! ```
//! use s3_types::{AppCategory, AppMix, Timestamp, TimeDelta};
//!
//! let noon_day3 = Timestamp::from_day_hms(3, 12, 0, 0);
//! assert_eq!(noon_day3.day(), 3);
//! assert_eq!(noon_day3.hour_of_day(), 12);
//!
//! let mix = AppMix::from_volumes([10.0, 0.0, 5.0, 0.0, 0.0, 85.0]).unwrap();
//! assert!((mix.share(AppCategory::WebBrowsing) - 0.85).abs() < 1e-12);
//! assert_eq!(noon_day3 + TimeDelta::minutes(30), Timestamp::from_day_hms(3, 12, 30, 0));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod app;
mod error;
mod ids;
mod time;
mod traffic;

pub use app::{AppCategory, AppMix, AppMixError, APP_CATEGORY_COUNT};
pub use error::TypeError;
pub use ids::{ApId, BuildingId, ControllerId, GroupId, UserId};
pub use time::{TimeDelta, Timestamp, SECS_PER_DAY, SECS_PER_HOUR, SECS_PER_MINUTE};
pub use traffic::{BitsPerSec, Bytes};
