//! The shared error type for constraint violations in the vocabulary crates.

use core::fmt;

/// Errors raised by constructors and validators across the S³ crates that
/// have no more specific error type of their own.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A numeric argument was outside its documented range.
    OutOfRange {
        /// Name of the offending parameter.
        what: &'static str,
        /// Human-readable description of the allowed range.
        allowed: &'static str,
        /// The offending value, rendered.
        got: String,
    },
    /// A collection argument was empty where at least one element is needed.
    Empty {
        /// Name of the offending parameter.
        what: &'static str,
    },
}

impl TypeError {
    /// Convenience constructor for [`TypeError::OutOfRange`].
    pub fn out_of_range(what: &'static str, allowed: &'static str, got: impl fmt::Display) -> Self {
        TypeError::OutOfRange {
            what,
            allowed,
            got: got.to_string(),
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::OutOfRange { what, allowed, got } => {
                write!(f, "{what} out of range: got {got}, allowed {allowed}")
            }
            TypeError::Empty { what } => write!(f, "{what} must not be empty"),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TypeError::out_of_range("alpha", "[0,1]", 1.5);
        assert_eq!(e.to_string(), "alpha out of range: got 1.5, allowed [0,1]");
        let e = TypeError::Empty { what: "aps" };
        assert_eq!(e.to_string(), "aps must not be empty");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<TypeError>();
    }
}
