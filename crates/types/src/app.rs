//! Application realms and per-user application-usage profiles.
//!
//! The paper classifies the top-30 applications of the SJTU trace into six
//! realms — IM, P2P, music, e-mail, video and web browsing — and represents
//! each user by the normalized traffic shares over those realms
//! (`T_x(u) = (a¹_u, …, a⁶_u)`). [`AppMix`] is that vector with the simplex
//! invariant (non-negative, sums to 1) enforced at construction.

use core::fmt;
use core::ops::Index;

/// Number of application realms used throughout the system.
pub const APP_CATEGORY_COUNT: usize = 6;

/// The six application realms of the paper (Section III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AppCategory {
    /// Instant messaging.
    Im,
    /// Peer-to-peer file sharing.
    P2p,
    /// Music streaming / download.
    Music,
    /// E-mail.
    Email,
    /// Video streaming.
    Video,
    /// Web browsing.
    WebBrowsing,
}

impl AppCategory {
    /// All realms in canonical order (the order of the paper's Fig. 8 axes).
    pub const ALL: [AppCategory; APP_CATEGORY_COUNT] = [
        AppCategory::Im,
        AppCategory::P2p,
        AppCategory::Music,
        AppCategory::Email,
        AppCategory::Video,
        AppCategory::WebBrowsing,
    ];

    /// Dense index of this realm, `0..6`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`AppCategory::index`].
    ///
    /// Returns `None` when `index >= 6`.
    pub const fn from_index(index: usize) -> Option<AppCategory> {
        match index {
            0 => Some(AppCategory::Im),
            1 => Some(AppCategory::P2p),
            2 => Some(AppCategory::Music),
            3 => Some(AppCategory::Email),
            4 => Some(AppCategory::Video),
            5 => Some(AppCategory::WebBrowsing),
            _ => None,
        }
    }

    /// Short lowercase label used in CSV output.
    pub const fn label(self) -> &'static str {
        match self {
            AppCategory::Im => "im",
            AppCategory::P2p => "p2p",
            AppCategory::Music => "music",
            AppCategory::Email => "email",
            AppCategory::Video => "video",
            AppCategory::WebBrowsing => "web",
        }
    }
}

impl fmt::Display for AppCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error building an [`AppMix`] from raw volumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppMixError {
    /// A component was negative or non-finite.
    InvalidComponent {
        /// Index of the offending realm.
        index: usize,
    },
    /// All components were zero, so no normalization exists.
    AllZero,
}

impl fmt::Display for AppMixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppMixError::InvalidComponent { index } => {
                write!(f, "app-mix component {index} is negative or non-finite")
            }
            AppMixError::AllZero => f.write_str("app-mix volumes are all zero"),
        }
    }
}

impl std::error::Error for AppMixError {}

/// A normalized application-usage profile: traffic shares over the six
/// realms, non-negative and summing to 1.
///
/// This is the feature vector that the paper clusters with k-means (Fig. 7/8)
/// and compares across days with NMI (Fig. 6).
///
/// # Example
/// ```
/// use s3_types::{AppCategory, AppMix};
///
/// let a = AppMix::from_volumes([1.0, 1.0, 0.0, 0.0, 0.0, 2.0])?;
/// assert!((a.share(AppCategory::WebBrowsing) - 0.5).abs() < 1e-12);
/// assert!((a.shares().iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// # Ok::<(), s3_types::AppMixError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AppMix {
    shares: [f64; APP_CATEGORY_COUNT],
}

impl AppMix {
    /// Builds a profile from raw (unnormalized) traffic volumes.
    ///
    /// # Errors
    ///
    /// Returns [`AppMixError::InvalidComponent`] if any volume is negative or
    /// non-finite, and [`AppMixError::AllZero`] if every volume is zero.
    pub fn from_volumes(volumes: [f64; APP_CATEGORY_COUNT]) -> Result<Self, AppMixError> {
        let mut total = 0.0;
        for (index, &v) in volumes.iter().enumerate() {
            if !v.is_finite() || v < 0.0 {
                return Err(AppMixError::InvalidComponent { index });
            }
            total += v;
        }
        if total <= 0.0 {
            return Err(AppMixError::AllZero);
        }
        let mut shares = volumes;
        for s in &mut shares {
            *s /= total;
        }
        Ok(AppMix { shares })
    }

    /// The uniform profile (1/6 in every realm) — the maximum-entropy prior
    /// used for users with no history.
    pub fn uniform() -> Self {
        AppMix {
            shares: [1.0 / APP_CATEGORY_COUNT as f64; APP_CATEGORY_COUNT],
        }
    }

    /// A profile fully concentrated in one realm.
    pub fn concentrated(category: AppCategory) -> Self {
        let mut shares = [0.0; APP_CATEGORY_COUNT];
        shares[category.index()] = 1.0;
        AppMix { shares }
    }

    /// Share of traffic in `category` (in `[0,1]`).
    #[inline]
    pub fn share(&self, category: AppCategory) -> f64 {
        self.shares[category.index()]
    }

    /// The full share vector in [`AppCategory::ALL`] order.
    #[inline]
    pub fn shares(&self) -> &[f64; APP_CATEGORY_COUNT] {
        &self.shares
    }

    /// Euclidean (L2) distance between two profiles — the metric used by
    /// k-means over profiles.
    pub fn l2_distance(&self, other: &AppMix) -> f64 {
        self.shares
            .iter()
            .zip(other.shares.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Total-variation distance, `½ Σ |aᵢ − bᵢ|`, in `[0,1]`.
    pub fn tv_distance(&self, other: &AppMix) -> f64 {
        0.5 * self
            .shares
            .iter()
            .zip(other.shares.iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }

    /// Convex combination `(1−t)·self + t·other`; both operands are on the
    /// simplex so the result is too.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `[0,1]`.
    pub fn lerp(&self, other: &AppMix, t: f64) -> AppMix {
        assert!((0.0..=1.0).contains(&t), "lerp parameter out of [0,1]: {t}");
        let mut shares = [0.0; APP_CATEGORY_COUNT];
        for (slot, (a, b)) in shares.iter_mut().zip(self.shares.iter().zip(&other.shares)) {
            *slot = (1.0 - t) * a + t * b;
        }
        AppMix { shares }
    }

    /// The realm with the largest share (ties resolve to the lowest index).
    pub fn dominant(&self) -> AppCategory {
        let mut best = 0;
        for i in 1..APP_CATEGORY_COUNT {
            if self.shares[i] > self.shares[best] {
                best = i;
            }
        }
        AppCategory::from_index(best).expect("index < APP_CATEGORY_COUNT")
    }
}

impl Default for AppMix {
    fn default() -> Self {
        AppMix::uniform()
    }
}

impl Index<AppCategory> for AppMix {
    type Output = f64;
    fn index(&self, category: AppCategory) -> &f64 {
        &self.shares[category.index()]
    }
}

impl fmt::Display for AppMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in AppCategory::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}:{:.2}", c.label(), self.shares[i])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_index_round_trip() {
        for c in AppCategory::ALL {
            assert_eq!(AppCategory::from_index(c.index()), Some(c));
        }
        assert_eq!(AppCategory::from_index(6), None);
    }

    #[test]
    fn from_volumes_normalizes() {
        let m = AppMix::from_volumes([2.0, 0.0, 0.0, 0.0, 0.0, 6.0]).unwrap();
        assert!((m.share(AppCategory::Im) - 0.25).abs() < 1e-12);
        assert!((m.share(AppCategory::WebBrowsing) - 0.75).abs() < 1e-12);
        assert!((m.shares().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_volumes_rejects_negative_and_nan() {
        assert_eq!(
            AppMix::from_volumes([-1.0, 0.0, 0.0, 0.0, 0.0, 1.0]),
            Err(AppMixError::InvalidComponent { index: 0 })
        );
        assert_eq!(
            AppMix::from_volumes([0.0, 0.0, f64::NAN, 0.0, 0.0, 1.0]),
            Err(AppMixError::InvalidComponent { index: 2 })
        );
        assert_eq!(AppMix::from_volumes([0.0; 6]), Err(AppMixError::AllZero));
    }

    #[test]
    fn distances_are_metrics_on_examples() {
        let a = AppMix::concentrated(AppCategory::Im);
        let b = AppMix::concentrated(AppCategory::Video);
        assert!((a.l2_distance(&a)).abs() < 1e-12);
        assert!((a.tv_distance(&b) - 1.0).abs() < 1e-12);
        assert!((a.l2_distance(&b) - 2.0_f64.sqrt()).abs() < 1e-12);
        // symmetry
        assert_eq!(a.l2_distance(&b), b.l2_distance(&a));
    }

    #[test]
    fn lerp_stays_on_simplex() {
        let a = AppMix::concentrated(AppCategory::P2p);
        let b = AppMix::uniform();
        let mid = a.lerp(&b, 0.5);
        assert!((mid.shares().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(mid.shares().iter().all(|&s| s >= 0.0));
    }

    #[test]
    #[should_panic(expected = "lerp parameter out of [0,1]")]
    fn lerp_rejects_out_of_range() {
        let _ = AppMix::uniform().lerp(&AppMix::uniform(), 1.5);
    }

    #[test]
    fn dominant_picks_argmax() {
        let m = AppMix::from_volumes([1.0, 5.0, 2.0, 0.0, 4.0, 1.0]).unwrap();
        assert_eq!(m.dominant(), AppCategory::P2p);
        assert_eq!(AppMix::uniform().dominant(), AppCategory::Im); // lowest index ties
    }

    #[test]
    fn display_shows_all_realms() {
        let s = AppMix::uniform().to_string();
        for c in AppCategory::ALL {
            assert!(s.contains(c.label()), "missing {c} in {s}");
        }
    }

    #[test]
    fn index_by_category() {
        let m = AppMix::concentrated(AppCategory::Email);
        assert_eq!(m[AppCategory::Email], 1.0);
        assert_eq!(m[AppCategory::Im], 0.0);
    }
}
