//! Property tests for the vocabulary types.

use proptest::prelude::*;

use s3_types::{AppMix, BitsPerSec, Bytes, TimeDelta, Timestamp};

proptest! {
    #[test]
    fn timestamp_add_then_sub_round_trips(base in 0u64..1_000_000_000, delta in 0u64..1_000_000) {
        let t = Timestamp::from_secs(base);
        let d = TimeDelta::secs(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d).saturating_sub(t), d);
    }

    #[test]
    fn timestamp_decomposition_recomposes(secs in 0u64..100_000_000) {
        let t = Timestamp::from_secs(secs);
        let rebuilt = t.day() * s3_types::SECS_PER_DAY
            + t.hour_of_day() * s3_types::SECS_PER_HOUR
            + t.minute_of_hour() * s3_types::SECS_PER_MINUTE
            + (secs % 60);
        prop_assert_eq!(rebuilt, secs);
    }

    #[test]
    fn floor_to_is_idempotent_and_dominated(secs in 0u64..10_000_000, bin_mins in 1u64..120) {
        let t = Timestamp::from_secs(secs);
        let bin = TimeDelta::minutes(bin_mins);
        let floored = t.floor_to(bin);
        prop_assert!(floored <= t);
        prop_assert_eq!(floored.floor_to(bin), floored);
        prop_assert!(t.saturating_sub(floored) < bin);
    }

    #[test]
    fn byte_subtraction_saturates(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (x, y) = (Bytes::new(a), Bytes::new(b));
        let diff = x - y;
        prop_assert_eq!(diff.as_u64(), a.saturating_sub(b));
        prop_assert_eq!(x.saturating_sub(y), diff);
    }

    #[test]
    fn rate_volume_round_trip_is_close(mbps in 0.01f64..1000.0, secs in 1u64..100_000) {
        let rate = BitsPerSec::mbps(mbps);
        let span = TimeDelta::secs(secs);
        let volume = rate.volume_over(span);
        let back = volume.rate_over(span).unwrap();
        // Rounding to whole bytes loses at most 8 bits per second of span.
        prop_assert!((back.as_f64() - rate.as_f64()).abs() <= 8.0 / span.as_secs_f64() + 8.0);
    }

    #[test]
    fn app_mix_lerp_interpolates_on_simplex(
        a in prop::collection::vec(0.01f64..10.0, 6..=6),
        b in prop::collection::vec(0.01f64..10.0, 6..=6),
        t in 0.0f64..=1.0,
    ) {
        let a = AppMix::from_volumes(a.try_into().unwrap()).unwrap();
        let b = AppMix::from_volumes(b.try_into().unwrap()).unwrap();
        let mid = a.lerp(&b, t);
        prop_assert!((mid.shares().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for (m, (x, y)) in mid.shares().iter().zip(a.shares().iter().zip(b.shares())) {
            let (lo, hi) = if x < y { (*x, *y) } else { (*y, *x) };
            prop_assert!(*m >= lo - 1e-12 && *m <= hi + 1e-12);
        }
        // Endpoints are exact.
        prop_assert!(a.lerp(&b, 0.0).tv_distance(&a) < 1e-12);
        prop_assert!(a.lerp(&b, 1.0).tv_distance(&b) < 1e-12);
    }

    #[test]
    fn tv_distance_is_a_bounded_metric(
        a in prop::collection::vec(0.01f64..10.0, 6..=6),
        b in prop::collection::vec(0.01f64..10.0, 6..=6),
    ) {
        let a = AppMix::from_volumes(a.try_into().unwrap()).unwrap();
        let b = AppMix::from_volumes(b.try_into().unwrap()).unwrap();
        let d = a.tv_distance(&b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((a.tv_distance(&b) - b.tv_distance(&a)).abs() < 1e-12);
        prop_assert!(a.tv_distance(&a) < 1e-12);
        // L2 and TV orderings agree at the extremes.
        prop_assert!(a.l2_distance(&b) >= 0.0);
    }
}
