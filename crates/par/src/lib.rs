//! Deterministic parallel execution helpers.
//!
//! Every hot path of the S3 pipeline — pairwise event mining, k-means, the
//! gap statistic's reference fits, Algorithm 1's `mᶜ` distribution search
//! and the figure sweeps — is embarrassingly parallel, but the repository
//! guarantees **bit-for-bit reproducibility**: for a fixed seed, every
//! experiment binary must write byte-identical CSVs regardless of thread
//! count. This crate provides the only two primitives those paths need,
//! built on [`std::thread::scope`] (zero dependencies), with determinism as
//! a structural property rather than a convention:
//!
//! * [`par_map`] — order-preserving map: the output vector is ordered by
//!   input index, no matter which worker computed which element;
//! * [`par_chunk_fold`] — fold over **fixed-size** chunks, merged in chunk
//!   order. Chunk boundaries depend only on `chunk_size`, never on the
//!   thread count, so floating-point reductions associate identically at
//!   `threads = 1` and `threads = 64`.
//!
//! At `threads <= 1` both helpers run sequentially on the caller's thread
//! (no spawn); callers therefore need no separate sequential code path.
//!
//! # Thread-count resolution
//!
//! [`resolve_threads`] maps an optional request (CLI flag, config field) to
//! an effective count: an explicit `Some(n)` wins, otherwise the
//! `S3_THREADS` environment variable, otherwise
//! [`std::thread::available_parallelism`]. `0` means "auto" everywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mailbox;

use std::num::NonZeroUsize;

use s3_obs::{Desc, Stability, Unit};

// Execution-layer metrics (documented in docs/METRICS.md). Call counts are
// thread-invariant (every thread count performs the same calls); the
// worker-spawn total is a function of the thread count and is therefore
// volatile — it must never appear in stable snapshots.
static MAP_CALLS: Desc = Desc {
    name: "par.map_calls",
    help: "par_map invocations",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static FOLD_CALLS: Desc = Desc {
    name: "par.fold_calls",
    help: "par_chunk_fold invocations",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static WORKERS_SPAWNED: Desc = Desc {
    name: "par.workers_spawned",
    help: "Worker threads spawned (0 for inline sequential runs)",
    unit: Unit::Count,
    stability: Stability::Volatile,
};

/// Environment variable overriding the default thread count.
pub const THREADS_ENV: &str = "S3_THREADS";

/// Hard cap on worker threads, a guard against absurd requests.
pub const MAX_THREADS: usize = 256;

/// The machine's available parallelism (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves an optional thread-count request to an effective count:
/// `request` (if `Some` and non-zero), else `S3_THREADS` (if set, parseable
/// and non-zero), else [`available_threads`]. The result is clamped to
/// `1..=`[`MAX_THREADS`].
pub fn resolve_threads(request: Option<usize>) -> usize {
    let requested = match request {
        Some(n) if n > 0 => n,
        _ => std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(available_threads),
    };
    requested.clamp(1, MAX_THREADS)
}

/// Order-preserving parallel map: `out[i] = f(i, &items[i])`.
///
/// Items are dealt to at most `threads` workers in contiguous index ranges;
/// each worker returns its range's results, which are reassembled by range
/// position. The output is byte-identical to the sequential map for any
/// `threads`, provided `f` is a pure function of `(index, item)`.
///
/// `threads <= 1` (or fewer than two items) runs inline without spawning.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    s3_obs::global().counter(&MAP_CALLS).inc();
    let threads = threads.clamp(1, MAX_THREADS).min(items.len());
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let ranges = split_ranges(items.len(), threads);
    s3_obs::global()
        .counter(&WORKERS_SPAWNED)
        .add(ranges.len() as u64);
    let mut parts: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                let f = &f;
                let chunk = &items[range.clone()];
                let base = range.start;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(offset, x)| f(base + offset, x))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for part in parts.iter_mut() {
        out.append(part);
    }
    out
}

/// Deterministic parallel fold: splits `items` into chunks of exactly
/// `chunk_size` (the last may be shorter), folds each chunk sequentially
/// with `fold`, and merges the per-chunk accumulators **in chunk order**
/// with `merge`.
///
/// Because chunk boundaries depend only on `chunk_size`, the association
/// order of `merge` — and hence any floating-point rounding — is identical
/// for every thread count, including 1. Returns `init()` for empty input.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_chunk_fold<T, A, F, G, M>(
    items: &[T],
    threads: usize,
    chunk_size: usize,
    init: G,
    fold: F,
    mut merge: M,
) -> A
where
    T: Sync,
    A: Send,
    G: Fn() -> A + Sync,
    F: Fn(A, usize, &T) -> A + Sync,
    M: FnMut(A, A) -> A,
{
    assert!(chunk_size > 0, "par_chunk_fold needs a positive chunk size");
    s3_obs::global().counter(&FOLD_CALLS).inc();
    if items.is_empty() {
        return init();
    }
    let fold_chunk = |chunk_index: usize, chunk: &[T]| {
        let base = chunk_index * chunk_size;
        let mut acc = init();
        for (offset, item) in chunk.iter().enumerate() {
            acc = fold(acc, base + offset, item);
        }
        acc
    };
    let partials: Vec<A> = if threads <= 1 || items.len() <= chunk_size {
        items
            .chunks(chunk_size)
            .enumerate()
            .map(|(ci, chunk)| fold_chunk(ci, chunk))
            .collect()
    } else {
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        // One worker per contiguous run of chunks; each returns its chunks'
        // accumulators in order.
        let nested = std::thread::scope(|scope| {
            let ranges = split_ranges(chunks.len(), threads.clamp(1, MAX_THREADS));
            s3_obs::global()
                .counter(&WORKERS_SPAWNED)
                .add(ranges.len() as u64);
            let handles: Vec<_> = ranges
                .iter()
                .map(|range| {
                    let fold_chunk = &fold_chunk;
                    let my_chunks = &chunks[range.clone()];
                    let base = range.start;
                    scope.spawn(move || {
                        my_chunks
                            .iter()
                            .enumerate()
                            .map(|(i, chunk)| fold_chunk(base + i, chunk))
                            .collect::<Vec<A>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("par_chunk_fold worker panicked"))
                .collect::<Vec<Vec<A>>>()
        });
        nested.into_iter().flatten().collect()
    };
    let mut iter = partials.into_iter();
    let first = iter.next().expect("non-empty input has a first chunk");
    iter.fold(first, &mut merge)
}

/// Splits `0..len` into `parts` contiguous, near-equal, non-empty ranges.
fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.min(len).max(1);
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_prefers_explicit_request() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(100_000)), MAX_THREADS);
        assert!(resolve_threads(None) >= 1);
        assert!(resolve_threads(Some(0)) >= 1);
    }

    #[test]
    fn split_ranges_tile_exactly() {
        for len in [0usize, 1, 2, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 33] {
                let ranges = split_ranges(len, parts);
                let mut expected_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected_start);
                    assert!(!r.is_empty() || len == 0);
                    expected_start = r.end;
                }
                assert_eq!(expected_start, len);
            }
        }
    }

    #[test]
    fn par_map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..1_000).collect();
        let expected: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 2 + i as u64)
            .collect();
        for threads in [1, 2, 3, 7, 8, 64] {
            let got = par_map(&items, threads, |i, &x| x * 2 + i as u64);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_small_inputs() {
        assert_eq!(par_map::<u8, u8, _>(&[], 8, |_, &x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[5u8], 8, |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn chunk_fold_float_sum_is_thread_count_invariant() {
        // Adversarial magnitudes: naive reassociation visibly changes the
        // result, so equality across thread counts is a real check.
        let items: Vec<f64> = (0..10_000)
            .map(|i| {
                if i % 3 == 0 {
                    1e16
                } else {
                    1.0 + i as f64 * 1e-7
                }
            })
            .collect();
        let reference = par_chunk_fold(
            &items,
            1,
            256,
            || 0.0f64,
            |acc, _, &x| acc + x,
            |a, b| a + b,
        );
        for threads in [2, 3, 4, 8, 61] {
            let got = par_chunk_fold(
                &items,
                threads,
                256,
                || 0.0f64,
                |acc, _, &x| acc + x,
                |a, b| a + b,
            );
            assert_eq!(got.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chunk_fold_passes_global_indices() {
        let items = vec![10u64; 100];
        let sum_of_indices = par_chunk_fold(
            &items,
            4,
            7,
            || 0u64,
            |acc, i, _| acc + i as u64,
            |a, b| a + b,
        );
        assert_eq!(sum_of_indices, (0..100).sum::<u64>());
    }

    #[test]
    fn chunk_fold_empty_input_returns_init() {
        let out = par_chunk_fold::<u8, _, _, _, _>(&[], 4, 16, || 41, |acc, _, _| acc, |a, _| a);
        assert_eq!(out, 41);
    }

    #[test]
    #[should_panic(expected = "positive chunk size")]
    fn chunk_fold_rejects_zero_chunk() {
        let _ = par_chunk_fold(&[1], 2, 0, || 0, |a, _, _| a, |a, _| a);
    }

    #[test]
    fn par_map_uses_multiple_threads_when_asked() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(&items, 4, |_, &x| {
            seen.lock().unwrap().insert(std::thread::current().id());
            x
        });
        assert!(seen.lock().unwrap().len() > 1, "expected work on >1 thread");
    }
}
