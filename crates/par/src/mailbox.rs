//! Bounded blocking channels for shard pipelines.
//!
//! The sharded replay engine (`s3-wlan`) runs one worker thread per
//! controller-domain shard and exchanges *chunked* payloads with a
//! coordinator — each message carries a flat `Vec` of cycles, so channel
//! traffic is amortized over many cycles and capacities stay tiny. Those
//! exchanges need exactly one primitive: a bounded
//! MPSC channel whose `send` blocks when the peer is behind (natural
//! backpressure bounds the number of in-flight cycles) and whose both
//! ends unblock promptly when the other side goes away — a worker must
//! never deadlock because the coordinator aborted on an error, and vice
//! versa. The standard library only ships an unbounded or rendezvous
//! flavor of this with the semantics split across two types, and this
//! workspace vendors no runtime crates, so the channel is hand-rolled on
//! [`std::sync::Mutex`] + two [`std::sync::Condvar`]s.
//!
//! Determinism note: the channel carries no ordering decisions — message
//! order per sender is FIFO, and the sharded engine merges streams by
//! explicit keys, never by receipt timing.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// The peer of a channel endpoint has been dropped; no further messages
/// can flow. The undelivered message is returned to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct Disconnected<T>(pub T);

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sending half of a bounded channel; clone for multiple producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a bounded channel (single consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel holding at most `capacity` undelivered
/// messages (`capacity` is clamped to at least 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Delivers `value`, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] (returning `value`) if the receiver has been
    /// dropped — including while this call was blocked on a full queue.
    pub fn send(&self, value: T) -> Result<(), Disconnected<T>> {
        let mut state = self.shared.state.lock().expect("mailbox lock poisoned");
        loop {
            if !state.receiver_alive {
                return Err(Disconnected(value));
            }
            if state.queue.len() < state.capacity {
                state.queue.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .expect("mailbox lock poisoned");
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .expect("mailbox lock poisoned")
            .senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("mailbox lock poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            // Wake a receiver blocked on an empty queue so it observes
            // end-of-stream.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Takes the next message, blocking while the channel is empty.
    /// Returns `None` once the channel is empty *and* every sender has
    /// been dropped (end of stream).
    pub fn recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().expect("mailbox lock poisoned");
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Some(value);
            }
            if state.senders == 0 {
                return None;
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .expect("mailbox lock poisoned");
        }
    }
}

impl<T> Receiver<T> {
    /// Number of undelivered messages currently queued. A snapshot — by the
    /// time the caller acts, senders may have queued more. The sharded
    /// engine samples this before blocking to export channel occupancy as a
    /// metric (`wlan.shard.channel_occupancy`).
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("mailbox lock poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty (same snapshot caveat as
    /// [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("mailbox lock poisoned");
        state.receiver_alive = false;
        // Undelivered messages are dropped; senders blocked on a full
        // queue must wake up and observe the disconnect.
        state.queue.clear();
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_arrive_in_fifo_order() {
        let (tx, rx) = bounded(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn recv_returns_none_after_all_senders_drop() {
        let (tx, rx) = bounded::<u8>(4);
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Some(9));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "end of stream is sticky");
    }

    #[test]
    fn send_errors_once_receiver_is_gone() {
        let (tx, rx) = bounded(4);
        drop(rx);
        assert_eq!(tx.send(7), Err(Disconnected(7)));
    }

    #[test]
    fn full_channel_blocks_until_a_slot_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first recv
            3
        });
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(handle.join().unwrap(), 3);
    }

    #[test]
    fn blocked_sender_unblocks_when_receiver_drops() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2));
        // Give the sender a moment to block on the full queue, then
        // disconnect; the send must fail instead of hanging.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(handle.join().unwrap(), Err(Disconnected(2)));
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let (tx, rx) = bounded(0);
        tx.send(1).unwrap();
        assert_eq!(rx.recv(), Some(1));
    }
}
