//! Physical network topology: buildings, controllers and APs.

use std::collections::HashMap;

use s3_trace::generator::CampusConfig;
use s3_types::{ApId, BitsPerSec, BuildingId, ControllerId};

/// Static description of one AP.
#[derive(Debug, Clone, PartialEq)]
pub struct ApInfo {
    /// The AP's id (dense across the whole campus).
    pub id: ApId,
    /// Building the AP is deployed in.
    pub building: BuildingId,
    /// Controller managing the AP.
    pub controller: ControllerId,
    /// Backhaul/radio capacity `W(i)` of the paper's constraint.
    pub capacity: BitsPerSec,
    /// Position inside the building, meters (buildings are
    /// `SIDE × SIDE` squares with APs on a uniform grid).
    pub position: (f64, f64),
}

/// Side length of a building's floor plate, meters.
pub const BUILDING_SIDE_M: f64 = 60.0;

/// Default AP capacity: 802.11n-class 100 Mbps effective.
pub fn default_ap_capacity() -> BitsPerSec {
    BitsPerSec::mbps(100.0)
}

/// The campus WLAN topology.
#[derive(Debug, Clone)]
pub struct Topology {
    aps: Vec<ApInfo>,
    by_controller: HashMap<ControllerId, Vec<ApId>>,
    by_building: HashMap<BuildingId, Vec<ApId>>,
}

impl Topology {
    /// Builds the topology implied by a campus configuration with the
    /// default AP capacity.
    pub fn from_campus(config: &CampusConfig) -> Topology {
        Topology::from_campus_with_capacity(config, default_ap_capacity())
    }

    /// [`Topology::from_campus`] with an explicit uniform AP capacity.
    pub fn from_campus_with_capacity(config: &CampusConfig, capacity: BitsPerSec) -> Topology {
        let mut aps = Vec::with_capacity(config.total_aps());
        let mut by_controller: HashMap<ControllerId, Vec<ApId>> = HashMap::new();
        let mut by_building: HashMap<BuildingId, Vec<ApId>> = HashMap::new();
        // APs on a near-square grid inside each building.
        let per_building = config.aps_per_building;
        let cols = (per_building as f64).sqrt().ceil() as usize;
        let rows = per_building.div_ceil(cols);
        for b in 0..config.buildings {
            let building = BuildingId::new(b as u32);
            let controller = config.controller_of(building);
            for (slot, ap) in config.aps_of_building(building).into_iter().enumerate() {
                let col = slot % cols;
                let row = slot / cols;
                let x = BUILDING_SIDE_M * (col as f64 + 0.5) / cols as f64;
                let y = BUILDING_SIDE_M * (row as f64 + 0.5) / rows as f64;
                aps.push(ApInfo {
                    id: ap,
                    building,
                    controller,
                    capacity,
                    position: (x, y),
                });
                by_controller.entry(controller).or_default().push(ap);
                by_building.entry(building).or_default().push(ap);
            }
        }
        aps.sort_by_key(|a| a.id);
        Topology {
            aps,
            by_controller,
            by_building,
        }
    }

    /// Builds a topology directly from an AP list, deriving the
    /// controller and building maps. Unlike [`Topology::from_campus`]
    /// this trusts the caller: AP ids are *not* required to be dense, so
    /// a sparse or duplicated id list produces a topology on which
    /// [`Topology::ap`] fails for the broken ids — exactly the malformed
    /// input shape the engine must reject with
    /// [`crate::engine::EngineError::MissingAp`] instead of panicking.
    pub fn from_aps(mut aps: Vec<ApInfo>) -> Topology {
        aps.sort_by_key(|a| a.id);
        let mut by_controller: HashMap<ControllerId, Vec<ApId>> = HashMap::new();
        let mut by_building: HashMap<BuildingId, Vec<ApId>> = HashMap::new();
        for ap in &aps {
            by_controller.entry(ap.controller).or_default().push(ap.id);
            by_building.entry(ap.building).or_default().push(ap.id);
        }
        Topology {
            aps,
            by_controller,
            by_building,
        }
    }

    /// All APs, ascending by id.
    pub fn aps(&self) -> &[ApInfo] {
        &self.aps
    }

    /// Number of APs.
    pub fn ap_count(&self) -> usize {
        self.aps.len()
    }

    /// Info for one AP, if it exists.
    pub fn ap(&self, id: ApId) -> Option<&ApInfo> {
        self.aps.get(id.index()).filter(|info| info.id == id)
    }

    /// APs managed by `controller` (empty when unknown).
    pub fn aps_of_controller(&self, controller: ControllerId) -> &[ApId] {
        self.by_controller
            .get(&controller)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// APs deployed in `building` (empty when unknown).
    pub fn aps_of_building(&self, building: BuildingId) -> &[ApId] {
        self.by_building
            .get(&building)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All controllers, ascending.
    pub fn controllers(&self) -> Vec<ControllerId> {
        let mut out: Vec<ControllerId> = self.by_controller.keys().copied().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campus() -> CampusConfig {
        CampusConfig::tiny() // 2 buildings × 3 APs
    }

    #[test]
    fn builds_all_aps() {
        let t = Topology::from_campus(&campus());
        assert_eq!(t.ap_count(), 6);
        assert_eq!(t.aps().len(), 6);
        assert_eq!(t.controllers().len(), 2);
        for (i, ap) in t.aps().iter().enumerate() {
            assert_eq!(ap.id.index(), i, "dense ids in order");
        }
    }

    #[test]
    fn controller_and_building_maps_agree_with_config() {
        let cfg = campus();
        let t = Topology::from_campus(&cfg);
        for b in 0..cfg.buildings {
            let building = BuildingId::new(b as u32);
            let controller = cfg.controller_of(building);
            assert_eq!(t.aps_of_building(building), t.aps_of_controller(controller));
            assert_eq!(
                t.aps_of_building(building),
                cfg.aps_of_building(building).as_slice()
            );
        }
        assert!(t.aps_of_controller(ControllerId::new(99)).is_empty());
    }

    #[test]
    fn ap_lookup() {
        let t = Topology::from_campus(&campus());
        let info = t.ap(ApId::new(4)).unwrap();
        assert_eq!(info.building, BuildingId::new(1));
        assert!(t.ap(ApId::new(100)).is_none());
    }

    #[test]
    fn positions_are_inside_the_building_and_distinct() {
        let t = Topology::from_campus(&campus());
        for ap in t.aps() {
            let (x, y) = ap.position;
            assert!((0.0..=BUILDING_SIDE_M).contains(&x));
            assert!((0.0..=BUILDING_SIDE_M).contains(&y));
        }
        // APs of the same building do not coincide.
        let aps = t.aps_of_building(BuildingId::new(0));
        for (i, &a) in aps.iter().enumerate() {
            for &b in &aps[i + 1..] {
                assert_ne!(t.ap(a).unwrap().position, t.ap(b).unwrap().position);
            }
        }
    }

    #[test]
    fn custom_capacity_propagates() {
        let t = Topology::from_campus_with_capacity(&campus(), BitsPerSec::mbps(10.0));
        assert!(t
            .aps()
            .iter()
            .all(|a| (a.capacity.as_f64() - 1e7).abs() < 1e-3));
    }
}
