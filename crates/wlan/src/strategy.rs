//! The pluggable strategy registry: name → selector factory + capability
//! flags.
//!
//! Before this module each layer hard-coded the policy list — the CLI's
//! argument parser, the replay/trace selector construction, the shard
//! clone path and the bench binaries all dispatched on policy names by
//! hand, so adding a strategy meant touching every one of them. A
//! [`StrategyRegistry`] replaces that: each strategy registers once with
//! a factory and its [`StrategyCaps`], and every consumer (CLI parsing,
//! replay, trace, sharded runs, the ablation grid) asks the registry.
//!
//! # Capability flags
//!
//! * `needs_training` — the factory requires a trained artifact (the S³
//!   social model) passed through [`BuildContext::artifact`]. Consumers
//!   that train (the CLI, the bench harness) do so once and hand the
//!   model to every shard's factory call.
//! * `shardable` — the strategy is deterministic under the sharded
//!   engine: byte-identical output at any `--shards`. Strategies whose
//!   decisions consume a shared sequential RNG stream (the `random`
//!   baseline) are not; strategies whose state and randomness key off
//!   shard-stable ids (the ε-greedy MAB) are. [`StrategyRegistry::build_shards`]
//!   enforces the flag, which is also surfaced at CLI parse time.
//! * `produces_meta` — [`crate::ApSelector::last_batch_meta`] returns
//!   per-decision metadata (clique ids, degraded flags) that the
//!   decision-trace harness records.
//!
//! The registry in this crate only knows the training-free strategies; the
//! `s3-core` crate layers the S³ strategy on top (it owns the model type)
//! and exposes the complete default registry to the CLI and benches.

use std::any::Any;
use std::fmt;

use crate::selector::ApSelector;
use crate::selector::{LeastLoadedFirst, LeastUsers, RandomSelector, StrongestRssi};
use crate::strategies::{EpsilonGreedyMab, FlowLevelBalancer, WorkloadClassAware};

/// Capability flags of a registered strategy (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StrategyCaps {
    /// The factory requires a trained artifact in [`BuildContext::artifact`].
    pub needs_training: bool,
    /// Byte-identical output at any `--shards`; enforced by
    /// [`StrategyRegistry::build_shards`].
    pub shardable: bool,
    /// [`crate::ApSelector::last_batch_meta`] yields decision metadata.
    pub produces_meta: bool,
}

/// Everything a strategy factory may consume.
pub struct BuildContext<'a> {
    /// Deterministic seed shared by the whole run.
    pub seed: u64,
    /// Index of the engine shard this selector instance will serve
    /// (`0` for unsharded runs).
    pub shard: usize,
    /// Worker-thread budget (`0` = auto), for strategies with internal
    /// parallelism.
    pub threads: usize,
    /// Trained artifact for `needs_training` strategies (downcast with
    /// [`BuildContext::artifact`]); `None` otherwise.
    pub artifact: Option<&'a (dyn Any + Send + Sync)>,
}

impl<'a> BuildContext<'a> {
    /// A context with no artifact for shard 0 — what unsharded,
    /// training-free consumers need.
    pub fn new(seed: u64, threads: usize) -> Self {
        BuildContext {
            seed,
            shard: 0,
            threads,
            artifact: None,
        }
    }

    /// The trained artifact downcast to `T`, if one of that type was
    /// provided.
    pub fn artifact<T: Any>(&self) -> Option<&'a T> {
        self.artifact.and_then(|a| a.downcast_ref::<T>())
    }
}

impl fmt::Debug for BuildContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BuildContext")
            .field("seed", &self.seed)
            .field("shard", &self.shard)
            .field("threads", &self.threads)
            .field("artifact", &self.artifact.is_some())
            .finish()
    }
}

/// Why a strategy lookup or factory call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyError {
    /// No strategy registered under the name; carries the known names.
    Unknown {
        /// The name that failed to resolve.
        name: String,
        /// Registered names, in registration order.
        known: Vec<&'static str>,
    },
    /// `build_shards` with `shards > 1` on a strategy whose caps say it is
    /// not deterministic under sharding.
    NotShardable(&'static str),
    /// A `needs_training` factory was called without (or with the wrong
    /// type of) trained artifact.
    MissingArtifact(&'static str),
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyError::Unknown { name, known } => {
                write!(f, "unknown policy {name:?} (known: {})", known.join(", "))
            }
            StrategyError::NotShardable(name) => write!(
                f,
                "--shards > 1 is not supported for --policy {name}: the strategy \
                 is not deterministic under sharding (see docs/STRATEGIES.md)"
            ),
            StrategyError::MissingArtifact(name) => write!(
                f,
                "policy {name} needs a trained model artifact in the build context"
            ),
        }
    }
}

impl std::error::Error for StrategyError {}

/// A selector factory; called once per engine shard.
pub type BuildFn = Box<
    dyn Fn(&BuildContext<'_>) -> Result<Box<dyn ApSelector + Send>, StrategyError> + Send + Sync,
>;

/// One registered strategy: canonical name, one-line summary, capability
/// flags and factory.
pub struct Strategy {
    name: &'static str,
    summary: &'static str,
    caps: StrategyCaps,
    build: BuildFn,
}

impl Strategy {
    /// The canonical policy name (what `--policy` accepts and what the
    /// decision-trace header records).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line human summary for listings.
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// Capability flags.
    pub fn caps(&self) -> StrategyCaps {
        self.caps
    }

    /// Builds one selector instance for `ctx`.
    pub fn build(
        &self,
        ctx: &BuildContext<'_>,
    ) -> Result<Box<dyn ApSelector + Send>, StrategyError> {
        (self.build)(ctx)
    }
}

impl fmt::Debug for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Strategy")
            .field("name", &self.name)
            .field("caps", &self.caps)
            .finish()
    }
}

/// The registry: an ordered collection of [`Strategy`] entries.
///
/// Registration order is presentation order — it is what
/// [`StrategyRegistry::names`] yields and what error messages and the
/// ablation grid iterate.
#[derive(Debug, Default)]
pub struct StrategyRegistry {
    entries: Vec<Strategy>,
}

impl StrategyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        StrategyRegistry::default()
    }

    /// Registers a strategy. Panics on a duplicate name — registries are
    /// assembled once at startup from static registration lists, so a
    /// duplicate is a programming error.
    pub fn register(
        &mut self,
        name: &'static str,
        summary: &'static str,
        caps: StrategyCaps,
        build: BuildFn,
    ) {
        assert!(
            self.get(name).is_none(),
            "strategy {name:?} registered twice"
        );
        self.entries.push(Strategy {
            name,
            summary,
            caps,
            build,
        });
    }

    /// Looks up a strategy by canonical name.
    pub fn get(&self, name: &str) -> Option<&Strategy> {
        self.entries.iter().find(|s| s.name == name)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|s| s.name)
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> impl Iterator<Item = &Strategy> + '_ {
        self.entries.iter()
    }

    /// An [`StrategyError::Unknown`] naming every registered strategy.
    pub fn unknown(&self, name: &str) -> StrategyError {
        StrategyError::Unknown {
            name: name.to_string(),
            known: self.names().collect(),
        }
    }

    /// Builds one selector instance of `name` for `ctx`.
    pub fn build(
        &self,
        name: &str,
        ctx: &BuildContext<'_>,
    ) -> Result<Box<dyn ApSelector + Send>, StrategyError> {
        self.get(name).ok_or_else(|| self.unknown(name))?.build(ctx)
    }

    /// Builds one selector per engine shard — the single code path behind
    /// both unsharded replay (`shards == 1`) and the sharded engine, so
    /// "with one shard this is exactly the unsharded construction" holds
    /// by definition. Enforces [`StrategyCaps::shardable`] for
    /// `shards > 1`.
    pub fn build_shards(
        &self,
        name: &str,
        shards: usize,
        seed: u64,
        threads: usize,
        artifact: Option<&(dyn Any + Send + Sync)>,
    ) -> Result<Vec<Box<dyn ApSelector + Send>>, StrategyError> {
        let entry = self.get(name).ok_or_else(|| self.unknown(name))?;
        if shards > 1 && !entry.caps.shardable {
            return Err(StrategyError::NotShardable(entry.name));
        }
        (0..shards.max(1))
            .map(|shard| {
                entry.build(&BuildContext {
                    seed,
                    shard,
                    threads,
                    artifact,
                })
            })
            .collect()
    }
}

/// Registers the paper's four baseline policies: `llf`, `least-users`,
/// `rssi` and `random`.
///
/// `random` is the one strategy not deterministic under sharding: its
/// decisions consume a single sequential RNG stream, so splitting arrivals
/// across shards reorders the draws.
pub fn register_baselines(reg: &mut StrategyRegistry) {
    reg.register(
        "llf",
        "least loaded first (arrival-time state of the art)",
        StrategyCaps {
            shardable: true,
            ..StrategyCaps::default()
        },
        Box::new(|_| Ok(Box::new(LeastLoadedFirst::new()))),
    );
    reg.register(
        "least-users",
        "fewest associated users first",
        StrategyCaps {
            shardable: true,
            ..StrategyCaps::default()
        },
        Box::new(|_| Ok(Box::new(LeastUsers::new()))),
    );
    reg.register(
        "rssi",
        "strongest signal (802.11 default)",
        StrategyCaps {
            shardable: true,
            ..StrategyCaps::default()
        },
        Box::new(|_| Ok(Box::new(StrongestRssi::new()))),
    );
    reg.register(
        "random",
        "uniform random candidate (sequential RNG; single-shard only)",
        StrategyCaps::default(),
        Box::new(|ctx| Ok(Box::new(RandomSelector::new(ctx.seed)))),
    );
}

/// Registers the contender strategies from related work: `flow-lb`, `mab`
/// and `workload` (see [`crate::strategies`]).
pub fn register_contenders(reg: &mut StrategyRegistry) {
    reg.register(
        "flow-lb",
        "flow-level load balancing, max per-flow headroom share (Li et al.)",
        StrategyCaps {
            shardable: true,
            ..StrategyCaps::default()
        },
        Box::new(|_| Ok(Box::new(FlowLevelBalancer::new()))),
    );
    reg.register(
        "mab",
        "per-user epsilon-greedy bandit over domain APs (Carrascosa & Bellalta)",
        StrategyCaps {
            shardable: true,
            ..StrategyCaps::default()
        },
        Box::new(|ctx| Ok(Box::new(EpsilonGreedyMab::new(ctx.seed)))),
    );
    reg.register(
        "workload",
        "demand-class routing: heavy flows by headroom, light by RSSI (Sandholm & Huberman)",
        StrategyCaps {
            shardable: true,
            ..StrategyCaps::default()
        },
        Box::new(|_| Ok(Box::new(WorkloadClassAware::new()))),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> StrategyRegistry {
        let mut reg = StrategyRegistry::new();
        register_baselines(&mut reg);
        register_contenders(&mut reg);
        reg
    }

    #[test]
    fn registers_in_presentation_order() {
        let reg = registry();
        let names: Vec<&str> = reg.names().collect();
        assert_eq!(
            names,
            vec![
                "llf",
                "least-users",
                "rssi",
                "random",
                "flow-lb",
                "mab",
                "workload"
            ]
        );
    }

    #[test]
    fn unknown_name_lists_known_strategies() {
        let reg = registry();
        let err = reg
            .build("slf", &BuildContext::new(1, 0))
            .err()
            .expect("unknown name must fail");
        let msg = err.to_string();
        assert!(msg.contains("unknown policy \"slf\""), "{msg}");
        assert!(msg.contains("llf"), "{msg}");
        assert!(msg.contains("mab"), "{msg}");
    }

    #[test]
    fn build_shards_enforces_the_shardable_flag() {
        let reg = registry();
        let err = reg
            .build_shards("random", 2, 1, 0, None)
            .err()
            .expect("random must be rejected at 2 shards");
        assert_eq!(err, StrategyError::NotShardable("random"));
        // One shard is always fine, and shardable strategies clone freely.
        assert_eq!(reg.build_shards("random", 1, 1, 0, None).unwrap().len(), 1);
        assert_eq!(reg.build_shards("mab", 4, 1, 0, None).unwrap().len(), 4);
    }

    #[test]
    fn built_selectors_report_expected_names() {
        let reg = registry();
        let ctx = BuildContext::new(7, 0);
        for (policy, selector_name) in [
            ("llf", "llf"),
            ("least-users", "least-users"),
            ("rssi", "strongest-rssi"),
            ("random", "random"),
            ("flow-lb", "flow-lb"),
            ("mab", "mab"),
            ("workload", "workload"),
        ] {
            assert_eq!(reg.build(policy, &ctx).unwrap().name(), selector_name);
        }
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = registry();
        register_baselines(&mut reg);
    }

    #[test]
    fn artifact_downcast_round_trips() {
        let model = String::from("artifact");
        let ctx = BuildContext {
            seed: 1,
            shard: 0,
            threads: 0,
            artifact: Some(&model),
        };
        assert_eq!(ctx.artifact::<String>().unwrap(), "artifact");
        assert!(ctx.artifact::<u64>().is_none());
    }
}
