//! Contender AP-selection strategies beyond the paper's four baselines.
//!
//! These are the "strategy zoo" entries from the related work the paper
//! positions itself against (see `docs/STRATEGIES.md` for the full
//! catalogue and citations):
//!
//! * [`FlowLevelBalancer`] — flow-level load balancing à la Li et al.:
//!   join the AP that maximises the projected per-flow share of the
//!   remaining capacity, a proportional-fairness approximation of the
//!   flow-level optimal association.
//! * [`EpsilonGreedyMab`] — decentralised ε-greedy multi-armed-bandit AP
//!   selection à la Carrascosa & Bellalta: each user keeps an arm per
//!   candidate AP of its controller domain and mostly exploits the arm
//!   with the best observed headroom, exploring uniformly with
//!   probability ε. All randomness is hashed from shard-stable keys
//!   (seed, user, domain, per-user decision count), so the policy is
//!   deterministic under sharding — unlike [`crate::selector::RandomSelector`],
//!   it consumes no shared sequential RNG stream.
//! * [`WorkloadClassAware`] — workload-class-aware association à la
//!   Sandholm & Huberman: classify the arrival by its demand hint and
//!   route heavy (bulk) sessions capacity-aware while light
//!   (interactive) sessions keep the strongest-signal default.

use std::collections::HashMap;

use s3_obs::{Desc, Stability, Unit};
use s3_types::{ApId, BitsPerSec, UserId};

use crate::selector::{ApSelector, SelectionContext};

/// Selections routed to the max-headroom AP because the arrival was
/// classified heavy by [`WorkloadClassAware`].
static WORKLOAD_HEAVY: Desc = Desc {
    name: "wlan.strategy.workload_heavy",
    help: "workload-class-aware selections classified heavy (capacity-aware path)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
/// Selections routed to the strongest-RSSI AP because the arrival was
/// classified light by [`WorkloadClassAware`].
static WORKLOAD_LIGHT: Desc = Desc {
    name: "wlan.strategy.workload_light",
    help: "workload-class-aware selections classified light (strongest-signal path)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
/// Exploration decisions taken by [`EpsilonGreedyMab`].
static MAB_EXPLORATIONS: Desc = Desc {
    name: "wlan.strategy.mab_explorations",
    help: "epsilon-greedy MAB selections that explored a uniform random arm",
    unit: Unit::Count,
    stability: Stability::Stable,
};
/// Exploitation decisions taken by [`EpsilonGreedyMab`].
static MAB_EXPLOITATIONS: Desc = Desc {
    name: "wlan.strategy.mab_exploitations",
    help: "epsilon-greedy MAB selections that exploited the best observed arm",
    unit: Unit::Count,
    stability: Stability::Stable,
};

/// **flow-lb** — flow-level load balancing (Li et al.): pick the AP
/// maximising the projected per-flow headroom share
/// `headroom / (users + 1)`, i.e. the residual capacity each flow would
/// get if the arrival joined. Ties break toward the lower AP id.
///
/// This is the greedy one-shot form of the flow-level optimal association
/// problem: it accounts for both load (through headroom) and contention
/// (through the association count), where LLF only ranks by load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowLevelBalancer;

impl FlowLevelBalancer {
    /// Creates the policy.
    pub fn new() -> Self {
        FlowLevelBalancer
    }
}

impl ApSelector for FlowLevelBalancer {
    fn name(&self) -> &str {
        "flow-lb"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize {
        let share = |i: usize| {
            let c = &ctx.candidates[i];
            c.headroom().as_f64() / (c.user_count() + 1) as f64
        };
        let mut best = 0;
        let mut best_share = share(0);
        for i in 1..ctx.candidates.len() {
            let s = share(i);
            // Strict `>` keeps the first (lowest-id) AP on ties: within a
            // controller domain candidates arrive in ascending AP order.
            if s > best_share {
                best = i;
                best_share = s;
            }
        }
        best
    }
}

/// Per-(user, domain) bandit state of [`EpsilonGreedyMab`]: one arm per
/// candidate AP, indexed like the candidate slice.
#[derive(Debug, Clone, Default, PartialEq)]
struct ArmState {
    /// Decisions made for this (user, domain) pair — the per-key counter
    /// that drives the hashed exploration stream.
    decisions: u64,
    /// Times each arm was played.
    plays: Vec<u64>,
    /// Sum of observed rewards per arm (normalised headroom at play time).
    reward_sum: Vec<f64>,
}

/// SplitMix64-style finaliser over shard-stable keys; the only randomness
/// source of [`EpsilonGreedyMab`]. Two decisions share an output only if
/// they share (seed, user, domain, decision index), which the engine's
/// per-controller event-order guarantee makes identical at any shard
/// count.
fn mab_hash(seed: u64, user: UserId, domain: ApId, decision: u64) -> u64 {
    let key = (u64::from(user.raw()) << 32) | u64::from(domain.raw());
    let mut x = seed
        ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ decision.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    for _ in 0..2 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
    }
    x
}

/// **mab** — decentralised ε-greedy multi-armed-bandit AP selection
/// (Carrascosa & Bellalta): each user learns, per controller domain, which
/// AP has historically offered the most residual capacity.
///
/// * **Arms**: the candidate APs of the user's domain, keyed by
///   `(user, lowest candidate AP id)` so state survives across visits.
/// * **Reward**: the chosen AP's headroom normalised by its capacity at
///   decision time (∈ [0, 1]).
/// * **Exploration**: with probability ε a uniform arm; unplayed arms are
///   optimistically tried first. The random stream is a `mab_hash` over
///   shard-stable keys — no sequential RNG, so the strategy is flagged
///   deterministic-under-sharding in the registry.
#[derive(Debug, Clone)]
pub struct EpsilonGreedyMab {
    seed: u64,
    epsilon: f64,
    arms: HashMap<(UserId, ApId), ArmState>,
}

impl EpsilonGreedyMab {
    /// Exploration probability ε.
    pub const EPSILON: f64 = 0.1;

    /// Creates the policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        EpsilonGreedyMab {
            seed,
            epsilon: Self::EPSILON,
            arms: HashMap::new(),
        }
    }
}

impl ApSelector for EpsilonGreedyMab {
    fn name(&self) -> &str {
        "mab"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize {
        let n = ctx.candidates.len();
        // The lowest candidate AP id is a stable key for the controller
        // domain: a domain's candidate set is fixed for a topology.
        let domain = ctx
            .candidates
            .iter()
            .map(|c| c.ap)
            .min()
            .expect("candidates never empty");
        let user = ctx.arrival.user;
        let state = self.arms.entry((user, domain)).or_default();
        if state.plays.len() < n {
            state.plays.resize(n, 0);
            state.reward_sum.resize(n, 0.0);
        }
        let decision = state.decisions;
        state.decisions += 1;

        let h = mab_hash(self.seed, user, domain, decision);
        let uniform = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let explored = uniform < self.epsilon;
        let pick = if explored {
            (h % n as u64) as usize
        } else if let Some(unplayed) = (0..n).find(|&i| state.plays[i] == 0) {
            // Optimistic initialisation: try every arm once before trusting
            // the estimates.
            unplayed
        } else {
            let mut best = 0;
            let mut best_mean = state.reward_sum[0] / state.plays[0] as f64;
            for i in 1..n {
                let mean = state.reward_sum[i] / state.plays[i] as f64;
                if mean > best_mean {
                    best = i;
                    best_mean = mean;
                }
            }
            best
        };

        let chosen = &ctx.candidates[pick];
        let capacity = chosen.capacity.as_f64();
        let reward = if capacity > 0.0 {
            chosen.headroom().as_f64() / capacity
        } else {
            0.0
        };
        state.plays[pick] += 1;
        state.reward_sum[pick] += reward;

        let counter = if explored {
            &MAB_EXPLORATIONS
        } else {
            &MAB_EXPLOITATIONS
        };
        s3_obs::global().counter(counter).add(1);
        pick
    }
}

/// **workload** — workload-class-aware association (Sandholm & Huberman):
/// classify each arrival by its demand hint and place heavy (bulk)
/// sessions on the AP with the most headroom while light (interactive)
/// sessions keep the 802.11 strongest-signal default.
///
/// The default threshold (100 kb/s) sits between the generator's light
/// office/music profiles (~45–55 kb/s median session rate) and its heavy
/// P2P/video profiles (~110–140 kb/s median).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadClassAware {
    /// Arrivals with a demand hint at or above this rate are heavy.
    pub heavy_threshold: BitsPerSec,
}

impl WorkloadClassAware {
    /// Creates the policy with the default 100 kb/s class threshold.
    pub fn new() -> Self {
        WorkloadClassAware {
            heavy_threshold: BitsPerSec::new(100_000.0),
        }
    }
}

impl Default for WorkloadClassAware {
    fn default() -> Self {
        WorkloadClassAware::new()
    }
}

impl ApSelector for WorkloadClassAware {
    fn name(&self) -> &str {
        "workload"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize {
        let heavy = ctx.arrival.demand_hint >= self.heavy_threshold;
        let registry = s3_obs::global();
        let mut best = 0;
        if heavy {
            registry.counter(&WORKLOAD_HEAVY).add(1);
            for i in 1..ctx.candidates.len() {
                if ctx.candidates[i].headroom() > ctx.candidates[best].headroom() {
                    best = i;
                }
            }
        } else {
            registry.counter(&WORKLOAD_LIGHT).add(1);
            let rssi = &ctx.arrival.rssi;
            for i in 1..ctx.candidates.len() {
                if rssi[i] > rssi[best] {
                    best = i;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::{views_of, ApCandidate, ArrivalUser};
    use s3_types::Timestamp;

    fn candidate(ap: u32, load_mbps: f64, users: usize) -> ApCandidate {
        ApCandidate {
            ap: ApId::new(ap),
            load: BitsPerSec::mbps(load_mbps),
            capacity: BitsPerSec::mbps(100.0),
            associated: (0..users as u32).map(|i| UserId::new(1000 + i)).collect(),
        }
    }

    fn arrival(user: u32, rate: BitsPerSec, rssi: Vec<f64>) -> ArrivalUser {
        ArrivalUser {
            user: UserId::new(user),
            now: Timestamp::from_secs(0),
            demand_hint: rate,
            rssi,
        }
    }

    #[test]
    fn flow_lb_accounts_for_contention_not_just_load() {
        // AP 0 has less load but far more flows sharing the headroom; LLF
        // would pick AP 0, flow-lb must pick AP 1.
        let candidates = vec![candidate(0, 10.0, 9), candidate(1, 20.0, 1)];
        let views = views_of(&candidates);
        let a = arrival(1, BitsPerSec::mbps(1.0), vec![-50.0, -50.0]);
        let ctx = SelectionContext {
            arrival: &a,
            candidates: &views,
        };
        assert_eq!(FlowLevelBalancer::new().select(&ctx), 1);
    }

    #[test]
    fn flow_lb_ties_break_toward_first_candidate() {
        let candidates = vec![candidate(2, 5.0, 3), candidate(7, 5.0, 3)];
        let views = views_of(&candidates);
        let a = arrival(1, BitsPerSec::mbps(1.0), vec![-50.0, -40.0]);
        let ctx = SelectionContext {
            arrival: &a,
            candidates: &views,
        };
        assert_eq!(FlowLevelBalancer::new().select(&ctx), 0);
    }

    #[test]
    fn mab_is_deterministic_per_seed_and_in_range() {
        let candidates = vec![
            candidate(0, 1.0, 1),
            candidate(1, 2.0, 2),
            candidate(2, 3.0, 3),
        ];
        let views = views_of(&candidates);
        let run = |seed| -> Vec<usize> {
            let mut s = EpsilonGreedyMab::new(seed);
            (0..40)
                .map(|u| {
                    let a = arrival(u % 4, BitsPerSec::mbps(1.0), vec![-50.0; 3]);
                    let ctx = SelectionContext {
                        arrival: &a,
                        candidates: &views,
                    };
                    s.select(&ctx)
                })
                .collect()
        };
        let x = run(5);
        assert_eq!(x, run(5));
        assert!(x.iter().all(|&i| i < 3));
        assert_ne!(x, run(6));
    }

    #[test]
    fn mab_decisions_depend_only_on_per_user_history() {
        // Interleaving another user's decisions must not perturb user 1's
        // choices — the property that makes the strategy shardable.
        let candidates = vec![candidate(0, 1.0, 1), candidate(1, 2.0, 2)];
        let views = views_of(&candidates);
        let pick_for = |s: &mut EpsilonGreedyMab, user: u32| {
            let a = arrival(user, BitsPerSec::mbps(1.0), vec![-50.0; 2]);
            let ctx = SelectionContext {
                arrival: &a,
                candidates: &views,
            };
            s.select(&ctx)
        };
        let mut solo = EpsilonGreedyMab::new(9);
        let solo_picks: Vec<usize> = (0..20).map(|_| pick_for(&mut solo, 1)).collect();
        let mut mixed = EpsilonGreedyMab::new(9);
        let mut mixed_picks = Vec::new();
        for _ in 0..20 {
            pick_for(&mut mixed, 2);
            mixed_picks.push(pick_for(&mut mixed, 1));
            pick_for(&mut mixed, 3);
        }
        assert_eq!(solo_picks, mixed_picks);
    }

    #[test]
    fn mab_tries_every_arm_then_prefers_high_headroom() {
        // One nearly full AP, one empty: after the optimistic first pass
        // the exploit path must stick to the empty AP.
        let candidates = vec![candidate(0, 95.0, 1), candidate(1, 0.0, 1)];
        let views = views_of(&candidates);
        let mut s = EpsilonGreedyMab::new(3);
        let picks: Vec<usize> = (0..50)
            .map(|_| {
                let a = arrival(1, BitsPerSec::mbps(1.0), vec![-50.0; 2]);
                let ctx = SelectionContext {
                    arrival: &a,
                    candidates: &views,
                };
                s.select(&ctx)
            })
            .collect();
        let ones = picks.iter().filter(|&&p| p == 1).count();
        assert!(
            ones > 40,
            "exploitation should prefer the empty AP: {picks:?}"
        );
    }

    #[test]
    fn contender_strategies_are_shard_invariant() {
        use crate::engine::{SimConfig, SimEngine, SliceSource};
        use crate::strategy::{
            register_baselines, register_contenders, BuildContext, StrategyRegistry,
        };
        use crate::Topology;
        use s3_trace::generator::{CampusConfig, CampusGenerator};

        let campus = CampusGenerator::new(CampusConfig::tiny(), 11).generate();
        let topology = Topology::from_campus(&campus.config);
        let engine = SimEngine::new(topology, SimConfig::default());
        let mut reg = StrategyRegistry::new();
        register_baselines(&mut reg);
        register_contenders(&mut reg);
        for name in ["flow-lb", "mab", "workload"] {
            let mut unified = reg.build(name, &BuildContext::new(7, 0)).unwrap();
            let base = engine.run(&campus.demands, unified.as_mut());
            for shards in [2, 3] {
                let mut selectors = reg.build_shards(name, shards, 7, 0, None).unwrap();
                let sharded = engine
                    .run_sharded_source(&mut SliceSource::new(&campus.demands), &mut selectors)
                    .unwrap();
                assert_eq!(
                    base.records, sharded.records,
                    "{name} must be byte-identical at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn workload_routes_heavy_by_headroom_and_light_by_rssi() {
        // AP 0 is closest (best RSSI) but nearly full.
        let candidates = vec![candidate(0, 90.0, 5), candidate(1, 10.0, 5)];
        let views = views_of(&candidates);
        let mut s = WorkloadClassAware::new();
        let heavy = arrival(1, BitsPerSec::mbps(2.0), vec![-40.0, -70.0]);
        let ctx = SelectionContext {
            arrival: &heavy,
            candidates: &views,
        };
        assert_eq!(s.select(&ctx), 1, "heavy flows go to headroom");
        let light = arrival(1, BitsPerSec::new(10_000.0), vec![-40.0, -70.0]);
        let ctx = SelectionContext {
            arrival: &light,
            candidates: &views,
        };
        assert_eq!(s.select(&ctx), 0, "light flows keep strongest signal");
    }
}
