//! Demand sources and record sinks — the engine's streaming I/O boundary.
//!
//! [`DemandSource`] abstracts where demands come from: an in-memory slice
//! ([`SliceSource`], the classic path) or any fallible iterator such as a
//! [`s3_trace::ingest::DemandReader`] streaming straight off disk
//! ([`StreamSource`]). [`RecordSink`] abstracts where session records go:
//! an in-memory vector ([`CollectSink`]) or an incremental writer that
//! never holds more than one record. Together they are what lets
//! `s3wlan replay --stream` run a trace larger than RAM with peak memory
//! bounded by *concurrent sessions*, not trace length.

use std::io;

use s3_trace::csv::CsvError;
use s3_trace::{SessionDemand, SessionRecord};
use s3_types::{ApId, ControllerId};

/// Errors from an event-driven engine run over a fallible source/sink.
#[derive(Debug)]
pub enum EngineError {
    /// The demand source failed (I/O or parse error from the reader).
    Source(CsvError),
    /// The record sink failed to write.
    Sink(io::Error),
    /// The source yielded a demand arriving before its predecessor. The
    /// streaming engine cannot re-sort (that would require materializing
    /// the trace); re-sort the file or use the in-memory
    /// [`crate::SimEngine::run_unsorted`] path.
    Unsorted {
        /// Arrival second of the preceding demand.
        prev: u64,
        /// Arrival second of the offending demand.
        next: u64,
    },
    /// Streaming replay was requested together with the online rebalancer,
    /// whose mid-session record splits require the full session table and
    /// a global record sort.
    StreamedRebalance,
    /// A controller's AP list named an AP the topology cannot resolve — a
    /// malformed topology (sparse or duplicate AP ids) or an adversarial
    /// trace. The engine used to panic here (`expect("ap exists")`); it
    /// now aborts the run with the offending ids so the caller can point
    /// at the corrupt input.
    MissingAp {
        /// The unresolvable AP.
        ap: ApId,
        /// The controller whose domain listed it.
        controller: ControllerId,
    },
    /// The rebalancer selected a session index that is no longer live —
    /// an engine-state invariant violation (sessions are closed exactly
    /// once, at departure), surfaced as an error instead of the former
    /// `expect("candidate is live")` panic.
    DeadSession {
        /// The stale session index.
        session: u32,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Source(e) => write!(f, "demand source error: {e}"),
            EngineError::Sink(e) => write!(f, "record sink error: {e}"),
            EngineError::Unsorted { prev, next } => write!(
                f,
                "demand stream is not sorted by arrival time \
                 (arrive={next} after arrive={prev}); \
                 re-sort the input or use the in-memory path"
            ),
            EngineError::StreamedRebalance => write!(
                f,
                "streaming replay does not support the online rebalancer \
                 (migration segments need the full session log in memory)"
            ),
            EngineError::MissingAp { ap, controller } => write!(
                f,
                "controller {} lists AP {} which the topology cannot resolve \
                 (malformed or adversarial topology)",
                controller.raw(),
                ap.raw()
            ),
            EngineError::DeadSession { session } => write!(
                f,
                "rebalance candidate session {session} is not live \
                 (engine-state invariant violated)"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Source(e) => Some(e),
            EngineError::Sink(e) => Some(e),
            _ => None,
        }
    }
}

/// A pull-based stream of session demands, ordered by arrival time.
///
/// The engine pulls one demand at a time and never looks further ahead
/// than one batching window, so implementations need not hold the whole
/// trace.
pub trait DemandSource {
    /// The next demand, `Ok(None)` at end of stream.
    ///
    /// # Errors
    ///
    /// Propagates the underlying reader's failure; the engine aborts the
    /// run and surfaces it as [`EngineError::Source`].
    fn next_demand(&mut self) -> Result<Option<SessionDemand>, CsvError>;

    /// Total demand count, when known up front (lets collecting sinks
    /// pre-allocate).
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

/// [`DemandSource`] over an in-memory, already-sorted slice.
#[derive(Debug)]
pub struct SliceSource<'a> {
    demands: &'a [SessionDemand],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Creates a source over `demands` (sorted by arrival time).
    pub fn new(demands: &'a [SessionDemand]) -> Self {
        SliceSource { demands, pos: 0 }
    }
}

impl DemandSource for SliceSource<'_> {
    fn next_demand(&mut self) -> Result<Option<SessionDemand>, CsvError> {
        let next = self.demands.get(self.pos).cloned();
        self.pos += next.is_some() as usize;
        Ok(next)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.demands.len())
    }
}

/// [`DemandSource`] over any fallible demand iterator — in particular a
/// [`s3_trace::ingest::DemandReader`] streaming a CSV file off disk.
#[derive(Debug)]
pub struct StreamSource<I> {
    inner: I,
}

impl<I> StreamSource<I>
where
    I: Iterator<Item = Result<SessionDemand, CsvError>>,
{
    /// Wraps a fallible demand iterator.
    pub fn new(inner: I) -> Self {
        StreamSource { inner }
    }

    /// Unwraps the underlying iterator (e.g. to recover a reader's
    /// [`s3_trace::ingest::IngestReport`] after the run).
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I> DemandSource for StreamSource<I>
where
    I: Iterator<Item = Result<SessionDemand, CsvError>>,
{
    fn next_demand(&mut self) -> Result<Option<SessionDemand>, CsvError> {
        self.inner.next().transpose()
    }
}

/// Consumes session records as the engine emits them.
pub trait RecordSink {
    /// Accepts one record.
    ///
    /// # Errors
    ///
    /// Propagates writer failures; the engine aborts the run and surfaces
    /// them as [`EngineError::Sink`].
    fn emit(&mut self, record: SessionRecord) -> io::Result<()>;

    /// Observes one engine decision as it is made, in exact processing
    /// order (the decision-trace hook — see
    /// [`super::tracing::TraceSink`] and `docs/TRACING.md`). The default
    /// discards the event, so ordinary sinks pay nothing: the engine only
    /// hands over a borrowed view, never an allocation.
    ///
    /// # Errors
    ///
    /// Propagates writer failures; the engine aborts the run and surfaces
    /// them as [`EngineError::Sink`].
    fn observe(&mut self, event: &super::tracing::TraceEvent<'_>) -> io::Result<()> {
        let _ = event;
        Ok(())
    }
}

/// [`RecordSink`] that collects records in memory (the classic
/// [`crate::SimResult`] path).
#[derive(Debug, Default)]
pub struct CollectSink {
    /// The collected records, in emission order.
    pub records: Vec<SessionRecord>,
}

impl CollectSink {
    /// Creates an empty sink, pre-allocating `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        CollectSink {
            records: Vec::with_capacity(capacity),
        }
    }
}

impl RecordSink for CollectSink {
    fn emit(&mut self, record: SessionRecord) -> io::Result<()> {
        self.records.push(record);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_types::{BuildingId, Bytes, ControllerId, Timestamp, UserId, APP_CATEGORY_COUNT};

    fn demand(user: u32, arrive: u64) -> SessionDemand {
        SessionDemand {
            user: UserId::new(user),
            building: BuildingId::new(0),
            controller: ControllerId::new(0),
            arrive: Timestamp::from_secs(arrive),
            depart: Timestamp::from_secs(arrive + 60),
            volume_by_app: [Bytes::ZERO; APP_CATEGORY_COUNT],
        }
    }

    #[test]
    fn slice_source_yields_in_order_then_none() {
        let demands = vec![demand(1, 10), demand(2, 20)];
        let mut source = SliceSource::new(&demands);
        assert_eq!(source.len_hint(), Some(2));
        assert_eq!(source.next_demand().unwrap().unwrap().user, UserId::new(1));
        assert_eq!(source.next_demand().unwrap().unwrap().user, UserId::new(2));
        assert!(source.next_demand().unwrap().is_none());
        assert!(source.next_demand().unwrap().is_none());
    }

    #[test]
    fn stream_source_propagates_errors() {
        let rows: Vec<Result<SessionDemand, CsvError>> = vec![
            Ok(demand(1, 10)),
            Err(CsvError::Parse {
                line: 3,
                detail: "boom".into(),
            }),
        ];
        let mut source = StreamSource::new(rows.into_iter());
        assert!(source.next_demand().unwrap().is_some());
        assert!(source.next_demand().is_err());
        assert_eq!(source.len_hint(), None);
    }
}
