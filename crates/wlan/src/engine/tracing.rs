//! Decision tracing: the engine side of the `s3-dtrace/1` harness.
//!
//! Three pieces live here (the format itself is
//! [`s3_trace::decision_log`]; the contract is `docs/TRACING.md`):
//!
//! * [`TraceEvent`] — a borrowed view of one engine decision, handed to
//!   [`super::source::RecordSink::observe`] at the exact moment the
//!   decision is made. Ordinary sinks inherit a no-op observer; nothing is
//!   allocated on their behalf.
//! * [`TraceSink`] — a [`RecordSink`] that discards session records and
//!   serializes every observed decision to a
//!   [`s3_trace::decision_log::DecisionLogWriter`]. Because the engine is
//!   sequential within a run (worker threads only parallelize training,
//!   which is itself deterministic), the emitted log is byte-identical at
//!   any thread count.
//! * [`check_log`] — the invariant checker behind `s3wlan check-trace`:
//!   a sequential replay of a log against the paper's steadiness
//!   guarantees (event ordering, capacity, no hidden migrations,
//!   candidate membership, conservation of arrivals), reporting every
//!   violation with its 1-based line number.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::{self, BufRead, Write};

use s3_obs::{Desc, Stability, Unit};
use s3_trace::decision_log::{
    DecisionLogError, DecisionLogReader, DecisionLogWriter, DecisionRecord, TraceHeader,
};
use s3_trace::SessionDemand;
use s3_types::{ApId, BitsPerSec, Timestamp, UserId};

use super::source::RecordSink;
use crate::topology::Topology;

// Trace-harness metrics (documented in docs/METRICS.md). Both are pure
// functions of the traced run / checked log, hence stable.
static RECORDS_WRITTEN: Desc = Desc {
    name: "wlan.trace.records_written",
    help: "Decision-trace records serialized by trace sinks",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static CHECK_VIOLATIONS: Desc = Desc {
    name: "wlan.trace.check_violations",
    help: "Invariant violations reported by decision-trace checks",
    unit: Unit::Count,
    stability: Stability::Stable,
};

/// One engine decision, borrowed from the engine's live state at the
/// moment it happens. The variants map one-to-one onto
/// [`DecisionRecord`] (see `docs/TRACING.md` for the field tables).
#[derive(Debug, Clone, Copy)]
pub enum TraceEvent<'a> {
    /// An arrival batch is about to be placed (queue rank 3).
    Batch {
        /// Batch head (the event time).
        at: Timestamp,
        /// Event-queue insertion sequence.
        seq: u64,
        /// The batch, in arrival order.
        batch: &'a [SessionDemand],
    },
    /// One user was placed on an AP.
    Select {
        /// The batch head.
        at: Timestamp,
        /// Engine session index.
        sid: u32,
        /// The user.
        user: UserId,
        /// The chosen AP.
        ap: ApId,
        /// Clique index within the selection call (S³ only).
        clique: Option<u32>,
        /// Whether a degraded-model fallback decided.
        degraded: bool,
        /// The session's mean rate (the load the placement adds).
        rate: BitsPerSec,
        /// The candidate APs of the user's controller domain.
        candidates: &'a [ApId],
    },
    /// One user had no candidate AP.
    Reject {
        /// The batch head.
        at: Timestamp,
        /// The user.
        user: UserId,
    },
    /// A rebalance epoch boundary fired (queue rank 1).
    Tick {
        /// Event time.
        at: Timestamp,
        /// Event-queue insertion sequence.
        seq: u64,
    },
    /// The rebalancer migrated one session.
    Move {
        /// The tick time.
        at: Timestamp,
        /// Engine session index.
        sid: u32,
        /// The user.
        user: UserId,
        /// AP the session left.
        from: ApId,
        /// AP the session joined.
        to: ApId,
    },
    /// A controller load report refreshed (queue rank 2).
    Report {
        /// Event time.
        at: Timestamp,
        /// Event-queue insertion sequence.
        seq: u64,
        /// Per-AP reported loads, indexed by AP.
        loads: &'a [BitsPerSec],
    },
    /// A session departed on schedule (queue rank 0).
    Depart {
        /// Event time.
        at: Timestamp,
        /// Event-queue insertion sequence.
        seq: u64,
        /// Engine session index.
        sid: u32,
        /// The user.
        user: UserId,
        /// The AP the session was on.
        ap: ApId,
    },
    /// The run finished (always the last decision).
    End {
        /// Sessions placed.
        placed: u64,
        /// Demands with no candidate AP.
        rejected: u64,
        /// Sessions closed at their scheduled departure.
        departed: u64,
        /// Sessions still active at the end of the run.
        active: u64,
    },
}

impl TraceEvent<'_> {
    /// Materializes the borrowed event as an owned wire record.
    pub fn to_record(&self) -> DecisionRecord {
        match *self {
            TraceEvent::Batch { at, seq, batch } => DecisionRecord::Batch {
                at: at.as_secs(),
                seq,
                users: batch.iter().map(|d| d.user.raw()).collect(),
            },
            TraceEvent::Select {
                at,
                sid,
                user,
                ap,
                clique,
                degraded,
                rate,
                candidates,
            } => DecisionRecord::Select {
                at: at.as_secs(),
                sid,
                user: user.raw(),
                ap: ap.raw(),
                clique,
                degraded,
                rate_bps: rate.as_f64(),
                candidates: candidates.iter().map(|a| a.raw()).collect(),
            },
            TraceEvent::Reject { at, user } => DecisionRecord::Reject {
                at: at.as_secs(),
                user: user.raw(),
            },
            TraceEvent::Tick { at, seq } => DecisionRecord::Tick {
                at: at.as_secs(),
                seq,
            },
            TraceEvent::Move {
                at,
                sid,
                user,
                from,
                to,
            } => DecisionRecord::Move {
                at: at.as_secs(),
                sid,
                user: user.raw(),
                from: from.raw(),
                to: to.raw(),
            },
            TraceEvent::Report { at, seq, loads } => DecisionRecord::Report {
                at: at.as_secs(),
                seq,
                loads_bps: loads.iter().map(|l| l.as_f64()).collect(),
            },
            TraceEvent::Depart {
                at,
                seq,
                sid,
                user,
                ap,
            } => DecisionRecord::Depart {
                at: at.as_secs(),
                seq,
                sid,
                user: user.raw(),
                ap: ap.raw(),
            },
            TraceEvent::End {
                placed,
                rejected,
                departed,
                active,
            } => DecisionRecord::End {
                placed,
                rejected,
                departed,
                active,
            },
        }
    }
}

/// Builds the `s3-dtrace/1` header for a run over `topology`.
///
/// `threads` and `shards` are recorded as provenance only — the decision
/// lines of a log never depend on either (`docs/TRACING.md` specifies the
/// canonicalization rule determinism comparisons use).
pub fn trace_header(
    topology: &Topology,
    seed: u64,
    threads: u64,
    shards: u64,
    strategy: &str,
    config_hash: u64,
) -> TraceHeader {
    let ap_capacity_bps = (0..topology.ap_count() as u32)
        .map(|ap| {
            topology
                .ap(ApId::new(ap))
                .expect("dense AP ids")
                .capacity
                .as_f64()
        })
        .collect();
    TraceHeader {
        seed,
        threads,
        shards,
        strategy: strategy.to_string(),
        config_hash,
        ap_capacity_bps,
    }
}

/// A [`RecordSink`] that writes every observed engine decision to a
/// decision log and discards session records (pair it with a normal run
/// when you also need the session CSV).
#[derive(Debug)]
pub struct TraceSink<W: Write> {
    writer: DecisionLogWriter<W>,
}

impl<W: Write> TraceSink<W> {
    /// Creates the sink, writing the header line immediately.
    ///
    /// # Errors
    ///
    /// Propagates the writer's failure.
    pub fn new(out: W, header: &TraceHeader) -> io::Result<Self> {
        Ok(TraceSink {
            writer: DecisionLogWriter::new(out, header)?,
        })
    }

    /// Records written so far (header excluded).
    pub fn records_written(&self) -> u64 {
        self.writer.records_written()
    }

    /// Flushes, publishes `wlan.trace.records_written`, and returns the
    /// underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn finish(self) -> io::Result<W> {
        let written = self.writer.records_written();
        let out = self.writer.finish()?;
        s3_obs::global().counter(&RECORDS_WRITTEN).add(written);
        Ok(out)
    }
}

impl<W: Write> RecordSink for TraceSink<W> {
    fn emit(&mut self, _record: s3_trace::SessionRecord) -> io::Result<()> {
        Ok(())
    }

    fn observe(&mut self, event: &TraceEvent<'_>) -> io::Result<()> {
        self.writer.write(&event.to_record())
    }
}

/// The invariant a violation breaks (one per seeded-corruption test
/// class; `docs/TRACING.md` catalogues them with their paper rationale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantClass {
    /// The line is not a well-formed `s3-dtrace/1` record.
    Format,
    /// Event times/ranks/sequences violate the queue's ordering contract.
    EventOrder,
    /// A placement pushed an AP's live load above its capacity `W(i)`.
    Capacity,
    /// A session changed APs outside a rebalance epoch (or departed from
    /// an AP it was never on — a hidden migration).
    Migration,
    /// A selected AP is not in the user's candidate set.
    Candidate,
    /// Arrival/departure/load accounting does not balance.
    Conservation,
}

impl InvariantClass {
    /// Stable lowercase name, used in violation reports and tests.
    pub fn name(self) -> &'static str {
        match self {
            InvariantClass::Format => "format",
            InvariantClass::EventOrder => "event-order",
            InvariantClass::Capacity => "capacity",
            InvariantClass::Migration => "migration",
            InvariantClass::Candidate => "candidate",
            InvariantClass::Conservation => "conservation",
        }
    }
}

impl fmt::Display for InvariantClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One invariant violation, anchored to a log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// 1-based line number of the offending record (line 1 is the
    /// header).
    pub line: u64,
    /// The invariant broken.
    pub class: InvariantClass,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: [{}] {}", self.line, self.class, self.detail)
    }
}

/// Result of checking one decision log.
#[derive(Debug)]
pub struct CheckReport {
    /// The log's header.
    pub header: TraceHeader,
    /// Record lines examined (parse failures included).
    pub records: u64,
    /// Violations, in log order.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether the log satisfied every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Mirrors [`BitsPerSec::new`]'s clamp so the checker's load replay is
/// bit-for-bit the engine's arithmetic.
fn bps_clamp(v: f64) -> f64 {
    if v.is_finite() && v > 0.0 {
        v
    } else {
        0.0
    }
}

#[derive(Debug, Clone, Copy)]
struct LiveSession {
    user: u32,
    ap: u32,
    rate: f64,
}

/// Sequentially replays a decision log against the invariant catalogue.
///
/// Reports every violation with its 1-based line number; malformed record
/// lines are collected as [`InvariantClass::Format`] violations rather
/// than aborting, so one bad line does not hide later ones. The count of
/// violations is also published to `wlan.trace.check_violations`.
///
/// # Errors
///
/// [`DecisionLogError`] only when the *header* (line 1) is unreadable —
/// without it no invariant is checkable.
pub fn check_log<R: BufRead>(input: R) -> Result<CheckReport, DecisionLogError> {
    let reader = DecisionLogReader::new(input)?;
    let header = reader.header().clone();
    let caps = header.ap_capacity_bps.clone();
    let n_aps = caps.len();

    let mut violations: Vec<Violation> = Vec::new();
    let mut records: u64 = 0;

    // Reconstructed engine state.
    let mut loads = vec![0.0f64; n_aps];
    let mut sessions: HashMap<u32, LiveSession> = HashMap::new();
    let mut seen_seqs: HashSet<u64> = HashSet::new();

    // Event-order state: global time floor plus the per-drain-cycle key
    // (cycles end right after a batch record — the engine's drain stops
    // there, so deferred departures may legally restart at a lower rank).
    let mut last_time: u64 = 0;
    let mut cycle_key: Option<(u64, u8, u64)> = None;

    // Scope state: the open batch's pending arrivals / the open tick.
    let mut batch_pending: HashMap<u32, usize> = HashMap::new();
    let mut batch_open: Option<(u64, u64)> = None; // (line, at)
    let mut tick_open: Option<u64> = None; // at

    // Conservation tallies.
    let (mut placed, mut rejected, mut departed) = (0u64, 0u64, 0u64);
    let mut end_line: Option<u64> = None;

    for item in reader {
        records += 1;
        let (line, record) = match item {
            Ok(ok) => ok,
            Err(e) => {
                violations.push(Violation {
                    line: e.line,
                    class: InvariantClass::Format,
                    detail: e.detail,
                });
                continue;
            }
        };

        if let Some(end) = end_line {
            violations.push(Violation {
                line,
                class: InvariantClass::Conservation,
                detail: format!(
                    "{} record after the end record at line {end}",
                    record.kind()
                ),
            });
            continue;
        }

        // Queue-event records carry the (t, rank, seq) key: close the open
        // scopes and check the ordering contract.
        if let Some(key) = record.queue_key() {
            if let Some((batch_line, _)) = batch_open.take() {
                let undecided: usize = batch_pending.values().sum();
                if undecided > 0 {
                    violations.push(Violation {
                        line: batch_line,
                        class: InvariantClass::Conservation,
                        detail: format!(
                            "{undecided} arrival(s) of this batch never reached a \
                             select/reject decision"
                        ),
                    });
                }
                batch_pending.clear();
            }
            tick_open = None;

            let (t, _rank, seq) = key;
            if t < last_time {
                violations.push(Violation {
                    line,
                    class: InvariantClass::EventOrder,
                    detail: format!(
                        "event time {t} runs backwards (previous event at {last_time})"
                    ),
                });
            }
            last_time = last_time.max(t);
            if !seen_seqs.insert(seq) {
                violations.push(Violation {
                    line,
                    class: InvariantClass::EventOrder,
                    detail: format!("event sequence {seq} reused (queue sequences are unique)"),
                });
            }
            if let Some(prev) = cycle_key {
                if key <= prev {
                    violations.push(Violation {
                        line,
                        class: InvariantClass::EventOrder,
                        detail: format!(
                            "event key (t={}, rank={}, seq={}) does not advance past \
                             (t={}, rank={}, seq={}) within the drain cycle",
                            key.0, key.1, key.2, prev.0, prev.1, prev.2
                        ),
                    });
                }
            }
            // A batch ends the drain cycle; anything else extends it.
            cycle_key = match record {
                DecisionRecord::Batch { .. } => None,
                _ => Some(key),
            };
        }

        match record {
            DecisionRecord::Batch { at, users, .. } => {
                batch_open = Some((line, at));
                batch_pending.clear();
                for u in users {
                    *batch_pending.entry(u).or_insert(0) += 1;
                }
            }
            DecisionRecord::Select {
                at,
                sid,
                user,
                ap,
                rate_bps,
                ref candidates,
                ..
            } => {
                placed += 1;
                match batch_open {
                    None => violations.push(Violation {
                        line,
                        class: InvariantClass::Conservation,
                        detail: format!("select of user {user} outside an arrival batch"),
                    }),
                    Some((_, batch_at)) => {
                        if at != batch_at {
                            violations.push(Violation {
                                line,
                                class: InvariantClass::EventOrder,
                                detail: format!("select at t={at} inside a batch at t={batch_at}"),
                            });
                        }
                        match batch_pending.get_mut(&user) {
                            Some(n) if *n > 0 => *n -= 1,
                            _ => violations.push(Violation {
                                line,
                                class: InvariantClass::Conservation,
                                detail: format!(
                                    "select of user {user} who is not pending in the \
                                     enclosing batch"
                                ),
                            }),
                        }
                    }
                }
                if !candidates.contains(&ap) {
                    violations.push(Violation {
                        line,
                        class: InvariantClass::Candidate,
                        detail: format!(
                            "selected AP {ap} is not in the candidate set {candidates:?}"
                        ),
                    });
                }
                if (ap as usize) >= n_aps {
                    violations.push(Violation {
                        line,
                        class: InvariantClass::Format,
                        detail: format!("AP id {ap} out of range (header has {n_aps} APs)"),
                    });
                } else {
                    loads[ap as usize] += rate_bps;
                    if loads[ap as usize] > caps[ap as usize] {
                        violations.push(Violation {
                            line,
                            class: InvariantClass::Capacity,
                            detail: format!(
                                "AP {ap} live load {} bps exceeds capacity W(i) = {} bps",
                                loads[ap as usize], caps[ap as usize]
                            ),
                        });
                    }
                    if sessions
                        .insert(
                            sid,
                            LiveSession {
                                user,
                                ap,
                                rate: rate_bps,
                            },
                        )
                        .is_some()
                    {
                        violations.push(Violation {
                            line,
                            class: InvariantClass::Conservation,
                            detail: format!("session id {sid} placed twice"),
                        });
                    }
                }
            }
            DecisionRecord::Reject { user, .. } => {
                rejected += 1;
                match batch_open {
                    None => violations.push(Violation {
                        line,
                        class: InvariantClass::Conservation,
                        detail: format!("reject of user {user} outside an arrival batch"),
                    }),
                    Some(_) => match batch_pending.get_mut(&user) {
                        Some(n) if *n > 0 => *n -= 1,
                        _ => violations.push(Violation {
                            line,
                            class: InvariantClass::Conservation,
                            detail: format!(
                                "reject of user {user} who is not pending in the enclosing batch"
                            ),
                        }),
                    },
                }
            }
            DecisionRecord::Tick { at, .. } => {
                tick_open = Some(at);
            }
            DecisionRecord::Move {
                at,
                sid,
                user,
                from,
                to,
            } => match tick_open {
                None => violations.push(Violation {
                    line,
                    class: InvariantClass::Migration,
                    detail: format!(
                        "mid-session migration of user {user} outside a rebalance epoch"
                    ),
                }),
                Some(tick_at) => {
                    if at != tick_at {
                        violations.push(Violation {
                            line,
                            class: InvariantClass::EventOrder,
                            detail: format!("move at t={at} inside a tick at t={tick_at}"),
                        });
                    }
                    if (from as usize) >= n_aps || (to as usize) >= n_aps {
                        violations.push(Violation {
                            line,
                            class: InvariantClass::Format,
                            detail: format!(
                                "AP id out of range in move {from}->{to} (header has {n_aps} APs)"
                            ),
                        });
                    } else {
                        match sessions.get_mut(&sid) {
                            None => violations.push(Violation {
                                line,
                                class: InvariantClass::Migration,
                                detail: format!("move of unknown session {sid}"),
                            }),
                            Some(s) => {
                                if s.user != user || s.ap != from {
                                    violations.push(Violation {
                                        line,
                                        class: InvariantClass::Migration,
                                        detail: format!(
                                            "move says user {user} leaves AP {from}, but session \
                                             {sid} is user {} on AP {}",
                                            s.user, s.ap
                                        ),
                                    });
                                }
                                let rate = s.rate;
                                s.ap = to;
                                loads[from as usize] = bps_clamp(loads[from as usize] - rate);
                                loads[to as usize] += rate;
                            }
                        }
                    }
                }
            },
            DecisionRecord::Report { ref loads_bps, .. } => {
                if loads_bps.len() != n_aps {
                    violations.push(Violation {
                        line,
                        class: InvariantClass::Format,
                        detail: format!(
                            "report carries {} loads but the header has {n_aps} APs",
                            loads_bps.len()
                        ),
                    });
                } else {
                    for (ap, (&got, &want)) in loads_bps.iter().zip(&loads).enumerate() {
                        if got.to_bits() != want.to_bits() {
                            violations.push(Violation {
                                line,
                                class: InvariantClass::Conservation,
                                detail: format!(
                                    "AP {ap} reported load {got} bps disagrees with the sum of \
                                     live session rates {want} bps"
                                ),
                            });
                        }
                    }
                }
            }
            DecisionRecord::Depart { sid, user, ap, .. } => {
                departed += 1;
                match sessions.remove(&sid) {
                    None => violations.push(Violation {
                        line,
                        class: InvariantClass::Conservation,
                        detail: format!("departure of unknown session {sid}"),
                    }),
                    Some(s) => {
                        if s.user != user || s.ap != ap {
                            violations.push(Violation {
                                line,
                                class: InvariantClass::Migration,
                                detail: format!(
                                    "departure says user {user} leaves AP {ap}, but session \
                                     {sid} is user {} on AP {} — a hidden migration",
                                    s.user, s.ap
                                ),
                            });
                        }
                        if (s.ap as usize) < n_aps {
                            loads[s.ap as usize] = bps_clamp(loads[s.ap as usize] - s.rate);
                        }
                    }
                }
            }
            DecisionRecord::End {
                placed: p,
                rejected: r,
                departed: d,
                active: a,
            } => {
                end_line = Some(line);
                let live = sessions.len() as u64;
                if (p, r, d) != (placed, rejected, departed) {
                    violations.push(Violation {
                        line,
                        class: InvariantClass::Conservation,
                        detail: format!(
                            "end counts placed={p}/rejected={r}/departed={d} disagree with the \
                             log's placed={placed}/rejected={rejected}/departed={departed}"
                        ),
                    });
                }
                if a != live {
                    violations.push(Violation {
                        line,
                        class: InvariantClass::Conservation,
                        detail: format!(
                            "end claims {a} active session(s) but {live} never departed"
                        ),
                    });
                }
                if p != d + a {
                    violations.push(Violation {
                        line,
                        class: InvariantClass::Conservation,
                        detail: format!(
                            "arrivals are not conserved: placed ({p}) != departed ({d}) + \
                             active ({a})"
                        ),
                    });
                }
            }
        }
    }

    if let Some((batch_line, _)) = batch_open {
        let undecided: usize = batch_pending.values().sum();
        if undecided > 0 {
            violations.push(Violation {
                line: batch_line,
                class: InvariantClass::Conservation,
                detail: format!(
                    "{undecided} arrival(s) of this batch never reached a select/reject decision"
                ),
            });
        }
    }
    if end_line.is_none() {
        violations.push(Violation {
            line: records + 1,
            class: InvariantClass::Conservation,
            detail: "log has no end record (truncated trace)".into(),
        });
    }

    s3_obs::global()
        .counter(&CHECK_VIOLATIONS)
        .add(violations.len() as u64);
    Ok(CheckReport {
        header,
        records,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, SimEngine, SliceSource};
    use crate::selector::LeastLoadedFirst;
    use s3_trace::decision_log::config_hash;
    use s3_trace::generator::{CampusConfig, CampusGenerator};
    use std::io::BufReader;

    fn traced_log(seed: u64) -> Vec<u8> {
        let campus = CampusGenerator::new(CampusConfig::tiny(), seed).generate();
        let topology = Topology::from_campus(&campus.config);
        let engine = SimEngine::new(topology, SimConfig::default());
        let header = trace_header(
            engine.topology(),
            seed,
            1,
            1,
            "llf",
            config_hash("policy=llf;test"),
        );
        let mut sink = TraceSink::new(Vec::new(), &header).unwrap();
        let mut source = SliceSource::new(&campus.demands);
        engine
            .run_traced(&mut source, &mut LeastLoadedFirst::new(), &mut sink)
            .unwrap();
        sink.finish().unwrap()
    }

    #[test]
    fn clean_traced_run_passes_every_invariant() {
        let log = traced_log(7);
        let report = check_log(BufReader::new(log.as_slice())).unwrap();
        assert!(
            report.is_clean(),
            "clean run must pass: {:?}",
            report.violations
        );
        assert!(report.records > 0);
        assert_eq!(report.header.strategy, "llf");
    }

    #[test]
    fn trace_is_deterministic_across_runs() {
        assert_eq!(traced_log(7), traced_log(7));
        assert_ne!(traced_log(7), traced_log(8), "seed must matter");
    }

    #[test]
    fn corrupting_a_select_ap_is_a_candidate_violation() {
        let log = String::from_utf8(traced_log(7)).unwrap();
        // Point the first select at an AP outside its candidate set.
        let mut lines: Vec<String> = log.lines().map(String::from).collect();
        let idx = lines
            .iter()
            .position(|l| l.contains("\"k\":\"select\""))
            .expect("log has selects");
        lines[idx] = lines[idx].replace("\"ap\":", "\"ap\":9999, \"was\":");
        let corrupted = lines.join("\n");
        let report = check_log(BufReader::new(corrupted.as_bytes())).unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| v.class == InvariantClass::Candidate && v.line == idx as u64 + 1));
    }

    #[test]
    fn missing_end_record_is_flagged() {
        let log = String::from_utf8(traced_log(7)).unwrap();
        let truncated: String = log
            .lines()
            .filter(|l| !l.contains("\"k\":\"end\""))
            .collect::<Vec<_>>()
            .join("\n");
        let report = check_log(BufReader::new(truncated.as_bytes())).unwrap();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.class == InvariantClass::Conservation
                    && v.detail.contains("no end record"))
        );
    }

    #[test]
    fn header_failure_is_an_error_not_a_report() {
        assert!(check_log(BufReader::new(&b"not a header\n"[..])).is_err());
    }
}
