//! Controller-domain sharding: the replay engine partitioned into
//! shard-local event loops joined by deterministic epoch barriers.
//!
//! # Why sharding by controller is decision-preserving
//!
//! Every placement decision is a pure function of `(topology, shard-local
//! run state, group demands)`: `place_batch` groups each arrival batch
//! per controller, candidate APs never cross controllers, and the
//! rebalancer migrates only within a controller's domain. Partitioning
//! controllers across shards therefore cannot change any decision — only
//! the *interleaving* of work. Three couplings remain global, and all
//! three live on the coordinator side:
//!
//! * **batch boundaries** — batches are formed from the global arrival
//!   stream ([`next_batch`]); a per-shard batcher would group a
//!   controller's arrivals differently and change selector inputs;
//! * **identifier assignment** — session indices and event-queue
//!   sequence numbers are pure functions of the cycle structure (what
//!   fires this cycle, which members place), so the ingest thread
//!   computes them up front and shards schedule departures under the
//!   exact `(time, rank, seq)` keys the unified queue would have used;
//! * **output order** — each cycle's decisions are merged in the
//!   canonical order of the unified drain: departures by `(time, seq)`
//!   across shards, moves in ascending-controller order, one global load
//!   report, then the batch's groups in first-appearance order.
//!
//! # Batched-epoch wire contract
//!
//! A *cycle* (one arrival batch plus everything due at its head) is the
//! epoch, but cycles never travel alone: the wire unit is a **chunk** of
//! up to [`CHUNK_CYCLES`] cycles, so channel traffic is one send per
//! shard per chunk instead of one per shard per cycle. Three message
//! streams exist:
//!
//! * ingest → shard: [`ToShard::Chunk`] carrying a flat `Vec<CycleMsg>`.
//!   Each [`CycleMsg`] shares the cycle's arrival batch as an
//!   `Arc<Vec<SessionDemand>>` (one allocation fanned out to every
//!   shard) and lists only the groups the shard owns, as
//!   `Arc<GroupMsg>`s holding *member indices into the batch* — demands
//!   are never copied per shard.
//! * ingest → merger: [`MetaMsg::Chunk`] carrying the matching
//!   `Vec<CycleMeta>` (same batch `Arc`, every group with its owner, the
//!   cycle's pre-assigned sequence numbers). `MetaMsg::Finish` /
//!   `MetaMsg::Fail` terminate the stream.
//! * shard → merger: one reply per chunk, `Ok(Vec<CycleOut>)` with
//!   exactly one entry per cycle of the chunk (or the first error).
//!
//! Within a chunk the ingest thread sends every shard's payload *before*
//! the meta payload, and the merger consumes meta chunks in order — so
//! whenever the merger waits on chunk `k`'s shard replies, every shard
//! already holds chunk `k`. All channels are bounded at
//! [`IN_FLIGHT_CHUNKS`]; backpressure bounds memory without deadlock.
//!
//! # Pipeline roles
//!
//! Three roles run under one thread scope:
//!
//! 1. the **ingest thread** pulls demands, forms global cycles
//!    ([`next_batch`] + [`EpochSchedule`]), assigns session indices and
//!    queue sequences, groups members per controller, and fans chunks
//!    out — overlapping source I/O and cycle formation with shard
//!    execution;
//! 2. **shard workers** (one per non-empty shard) drain their own
//!    departures, run their rebalance/report share, and place their
//!    groups;
//! 3. the **merger** (the calling thread — it owns the non-`Send` sink)
//!    joins each cycle at the barrier and emits everything in unified
//!    order.
//!
//! Shards beyond the controller count are structurally empty and are
//! never spawned: the plan packs non-empty shards into a prefix, so the
//! barrier only ever waits on shards with actual work.
//!
//! The result is byte-identical to the unified engine at any
//! `--shards N × --threads M`: same records, same `s3-dtrace/1` bodies,
//! same stable metrics. The unified queue's `events_processed` /
//! queue-peak totals are reproduced from per-cycle counters: every push
//! and pop of the unified drain is mirrored as a bulk add/subtract at
//! the exact cycle boundaries, and since pushes within a cycle are
//! monotone (no interleaved pops), bulk peak updates see the same
//! maximum the per-event mirror did.
//!
//! # Shard-invariance contract
//!
//! Selectors must be deterministic per controller group (decisions a
//! pure function of the group's inputs). Every shipped policy satisfies
//! this except `RandomSelector`, which draws from one sequential RNG
//! stream — the CLI rejects `--shards > 1` with the random policy.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use s3_obs::{Desc, HistogramDesc, Stability, Unit};
use s3_par::mailbox::{self, Receiver, Sender};
use s3_trace::{SessionDemand, SessionRecord};
use s3_types::{ApId, BitsPerSec, ControllerId, TimeDelta, Timestamp, UserId};

use super::events::{publish_queue_totals, EventPayload, EventQueue};
use super::runner::{
    next_batch, rebalance_controller, select_group, EpochSchedule, RunTotals, AP_LOAD_KBPS,
    BATCHES, BATCH_SIZE, DEMANDS, DEPARTURES, LOAD_REPORTS, MIGRATIONS, PLACEMENTS,
    REBALANCE_ROUNDS, REJECTED, RUNS, RUN_MICROS,
};
use super::source::{DemandSource, EngineError, RecordSink};
use super::state::{Active, RunState};
use super::tracing::TraceEvent;
use super::{RebalanceConfig, SimEngine};
use crate::selector::{ApSelector, ArrivalUser};
use crate::topology::Topology;

/// Cycles carried per cross-shard chunk. Larger chunks amortize channel
/// locking further but delay the merger's first byte; 32 keeps the
/// end-to-end latency of a chunk well under a millisecond at city scale
/// while cutting sends by ~32× versus the per-cycle protocol.
const CHUNK_CYCLES: usize = 32;

/// Chunks in flight per channel (ingest→shard, shard→merger and
/// ingest→merger are all bounded at this). Sized so a temporarily slow
/// role never stalls the others: up to `IN_FLIGHT_CHUNKS × CHUNK_CYCLES`
/// cycles of work sit between ingest and merge.
const IN_FLIGHT_CHUNKS: usize = 4;

// Sharded-pipeline phase metrics (documented in docs/METRICS.md). All
// Volatile: their values depend on host timing and shard count, and the
// stable-snapshot identity contract (`--shards 1` vs `--shards 4` byte-
// identical) only covers Stable metrics — the unified path never records
// these.
static CHUNKS: Desc = Desc {
    name: "wlan.shard.chunks",
    help: "Cross-shard chunk rounds merged at the epoch barrier",
    unit: Unit::Count,
    stability: Stability::Volatile,
};
static BARRIER_WAIT_MICROS: HistogramDesc = HistogramDesc {
    name: "wlan.shard.barrier_wait_micros",
    help: "Coordinator wall time waiting on shard replies, per chunk",
    unit: Unit::Micros,
    stability: Stability::Volatile,
    bounds: &[10, 100, 1_000, 10_000, 100_000, 1_000_000],
};
static MERGE_MICROS: HistogramDesc = HistogramDesc {
    name: "wlan.shard.merge_micros",
    help: "Coordinator wall time merging one chunk's cycle outputs",
    unit: Unit::Micros,
    stability: Stability::Volatile,
    bounds: &[10, 100, 1_000, 10_000, 100_000, 1_000_000],
};
static SELECT_MICROS: HistogramDesc = HistogramDesc {
    name: "wlan.shard.select_micros",
    help: "Shard-worker wall time in policy selection, per chunk",
    unit: Unit::Micros,
    stability: Stability::Volatile,
    bounds: &[10, 100, 1_000, 10_000, 100_000, 1_000_000],
};
static CHANNEL_OCCUPANCY: HistogramDesc = HistogramDesc {
    name: "wlan.shard.channel_occupancy",
    help: "Shard replies already queued when the coordinator reaches the barrier",
    unit: Unit::Count,
    stability: Stability::Volatile,
    bounds: &[1, 2, 3, 4],
};

/// Assignment of controllers to shards: the ascending controller list
/// split into contiguous, near-equal chunks (extras to low indices).
/// Contiguity keeps the merged move stream in ascending-controller order
/// by plain shard-order concatenation, and front-loading the extras
/// packs every non-empty shard into a prefix — shards past the
/// controller count are structurally empty and never spawned.
struct ShardPlan {
    shards: Vec<Vec<ControllerId>>,
    owner: HashMap<ControllerId, usize>,
}

impl ShardPlan {
    fn new(topology: &Topology, shard_count: usize) -> ShardPlan {
        let controllers = topology.controllers();
        let n = shard_count.max(1);
        let mut shards = vec![Vec::new(); n];
        let per = controllers.len() / n;
        let extra = controllers.len() % n;
        let mut it = controllers.into_iter();
        for (i, shard) in shards.iter_mut().enumerate() {
            shard.extend(it.by_ref().take(per + usize::from(i < extra)));
        }
        let owner = shards
            .iter()
            .enumerate()
            .flat_map(|(i, cs)| cs.iter().map(move |&c| (c, i)))
            .collect();
        ShardPlan { shards, owner }
    }
}

/// One controller group of a cycle, with ingest-assigned ids: the
/// group's sessions get consecutive indices from `first_sid` and their
/// departure events consecutive queue sequences from `first_dep_seq`.
/// Members are indices into the cycle's shared batch — the demands
/// themselves travel once, inside the batch `Arc`. Shared (`Arc`)
/// between the owner shard's [`CycleMsg`] and the merger's
/// [`CycleMeta`].
struct GroupMsg {
    controller: ControllerId,
    /// Indices into the cycle's batch, in batch order.
    members: Vec<u32>,
    first_sid: u32,
    first_dep_seq: u64,
}

/// One epoch's work order for a shard. `groups` lists only the groups
/// this shard owns; the batch is shared across all shards and the meta
/// stream.
struct CycleMsg {
    head: Timestamp,
    tick: bool,
    report: bool,
    batch: Arc<Vec<SessionDemand>>,
    groups: Vec<Arc<GroupMsg>>,
}

enum ToShard {
    /// Up to [`CHUNK_CYCLES`] cycles; reply with one [`CycleOut`] each.
    Chunk(Vec<CycleMsg>),
    /// Source exhausted: drain every remaining departure and reply with
    /// a single-element chunk holding the final drain.
    Finish,
}

/// A shard's per-chunk reply: one [`CycleOut`] per cycle, or the first
/// error (after which the worker exits).
type ShardReply = Result<Vec<CycleOut>, EngineError>;

/// Ingest → merger stream, mirroring the shard chunking one-to-one.
enum MetaMsg {
    Chunk(Vec<CycleMeta>),
    /// Source exhausted; shards have been told to finish.
    Finish,
    /// The demand source failed; abort with this error.
    Fail(EngineError),
}

/// How one cycle group resolves at merge time.
struct MetaGroup {
    /// Owner shard, or `None` for controllers without APs — those are
    /// unknown to every shard plan and the merger rejects the members
    /// itself.
    shard: Option<usize>,
    msg: Arc<GroupMsg>,
}

/// Everything the merger must know about a cycle to emit it once every
/// shard has reported back.
struct CycleMeta {
    head: Timestamp,
    tick_seq: Option<u64>,
    report_seq: Option<u64>,
    batch_seq: u64,
    batch: Arc<Vec<SessionDemand>>,
    /// All groups in first-appearance order (placed and rejected).
    groups: Vec<MetaGroup>,
    /// Events the unified queue pushes for this cycle (1 for the batch,
    /// +1 tick, +1 report) — input to the merger's queue counters.
    cycle_events: u8,
}

/// One placement decision. Everything else the merger needs (sid, user,
/// rate) is recomputed from the group's ids and the shared batch, so
/// only the genuinely shard-computed fields cross the channel.
struct SelectOut {
    ap: ApId,
    clique: Option<u32>,
    degraded: bool,
}

struct DepartOut {
    at: Timestamp,
    seq: u64,
    sid: u32,
    user: UserId,
    ap: ApId,
    record: Option<SessionRecord>,
}

struct MoveOut {
    sid: u32,
    user: UserId,
    from: ApId,
    to: ApId,
    record: Option<SessionRecord>,
}

/// A shard's results for one cycle, in shard-local processing order.
#[derive(Default)]
struct CycleOut {
    /// Queue events this cycle popped (including departures of sessions
    /// already closed) — folded into the merger's processed/depth
    /// counters once per cycle instead of mirroring every event.
    popped: u64,
    departs: Vec<DepartOut>,
    moves: Vec<MoveOut>,
    /// Own APs' loads after the report refresh (when the cycle reported).
    report: Option<Vec<(ApId, BitsPerSec)>>,
    /// One selects-vec per owned group, in [`CycleMsg::groups`] order.
    groups: Vec<Vec<SelectOut>>,
}

/// Shard-local engine state driven by [`CycleMsg`]s. Holds full-size AP
/// vectors (indexed by global AP id) but only ever touches its own
/// controllers' entries; the local [`EventQueue`] holds only departures,
/// scheduled under ingest-assigned sequence numbers.
struct ShardWorker<'a> {
    topology: &'a Topology,
    /// Own controllers, ascending.
    controllers: &'a [ControllerId],
    max_moves: usize,
    emit_at_departure: bool,
    run: RunState,
    queue: EventQueue,
    arrivals: Vec<ArrivalUser>,
    /// Selection wall time accumulated since the last chunk reply.
    select_elapsed: Duration,
}

impl ShardWorker<'_> {
    fn run_loop(
        mut self,
        selector: &mut (dyn ApSelector + Send),
        rx: Receiver<ToShard>,
        tx: Sender<ShardReply>,
    ) {
        let select_micros = s3_obs::global().histogram(&SELECT_MICROS);
        while let Some(msg) = rx.recv() {
            match msg {
                ToShard::Chunk(cycles) => {
                    let mut outs = Vec::with_capacity(cycles.len());
                    for cycle in cycles {
                        match self.run_cycle(cycle, selector) {
                            Ok(out) => outs.push(out),
                            Err(e) => {
                                let _ = tx.send(Err(e));
                                return;
                            }
                        }
                    }
                    select_micros.observe(self.select_elapsed.as_micros() as u64);
                    self.select_elapsed = Duration::ZERO;
                    if tx.send(Ok(outs)).is_err() {
                        return;
                    }
                }
                ToShard::Finish => {
                    let mut departs = Vec::new();
                    let popped = self.pop_departures(None, &mut departs);
                    let out = CycleOut {
                        popped,
                        departs,
                        ..CycleOut::default()
                    };
                    let _ = tx.send(Ok(vec![out]));
                    return;
                }
            }
        }
    }

    /// Drains departures due at or before `due` (all of them when
    /// `None`), in global `(time, seq)` order restricted to this shard —
    /// which preserves the per-AP floating-point release order, since an
    /// AP lives in exactly one shard. Returns the number of events
    /// popped (dead sessions included — the unified loop counts those
    /// pops too).
    fn pop_departures(&mut self, due: Option<Timestamp>, departs: &mut Vec<DepartOut>) -> u64 {
        let mut popped = 0;
        loop {
            let event = match due {
                Some(head) => self.queue.pop_due(head),
                None => self.queue.pop(),
            };
            let Some(event) = event else { break };
            popped += 1;
            let EventPayload::Departure { session } = event.payload else {
                unreachable!("shard queues hold departures only");
            };
            let Some(mut active) = self.run.close(session) else {
                continue;
            };
            let end = active.depart;
            let record = self
                .emit_at_departure
                .then(|| active.close_segment(end, true));
            self.run.release(active.ap, active.user, active.rate);
            departs.push(DepartOut {
                at: event.at,
                seq: event.seq,
                sid: session,
                user: active.user,
                ap: active.ap,
                record,
            });
        }
        popped
    }

    fn run_cycle(
        &mut self,
        cycle: CycleMsg,
        selector: &mut (dyn ApSelector + Send),
    ) -> Result<CycleOut, EngineError> {
        // Rank order of the unified drain at one head: departures (0),
        // rebalance tick (1), load report (2), arrival batch (3).
        let mut departs = Vec::new();
        let popped = self.pop_departures(Some(cycle.head), &mut departs);
        let mut out = CycleOut {
            popped,
            departs,
            ..CycleOut::default()
        };
        if cycle.tick {
            for &controller in self.controllers {
                let aps = self.topology.aps_of_controller(controller);
                rebalance_controller(&mut self.run, aps, self.max_moves, cycle.head, &mut |mv| {
                    out.moves.push(MoveOut {
                        sid: mv.sid,
                        user: mv.user,
                        from: mv.from,
                        to: mv.to,
                        record: mv.record,
                    });
                    Ok(())
                })?;
            }
        }
        if cycle.report {
            let mut loads = Vec::new();
            for &controller in self.controllers {
                for &ap in self.topology.aps_of_controller(controller) {
                    let Some(&load) = self.run.loads.get(ap.index()) else {
                        return Err(EngineError::MissingAp { ap, controller });
                    };
                    self.run.reported[ap.index()] = load;
                    loads.push((ap, load));
                }
            }
            out.report = Some(loads);
        }
        let started = Instant::now();
        for group in &cycle.groups {
            let aps = self.topology.aps_of_controller(group.controller);
            let (picks, metas) = select_group(
                self.topology,
                &self.run,
                selector,
                group.controller,
                aps,
                group.members.iter().map(|&i| &cycle.batch[i as usize]),
                &mut self.arrivals,
            )?;
            let mut selects = Vec::with_capacity(picks.len());
            for (j, (&pick, &i)) in picks.iter().zip(&group.members).enumerate() {
                let d = &cycle.batch[i as usize];
                let sid = group.first_sid + j as u32;
                let ap = aps[pick];
                self.run.place_at(d, ap, sid);
                let m = metas[j];
                selects.push(SelectOut {
                    ap,
                    clique: m.clique,
                    degraded: m.degraded,
                });
                self.queue.push_with_seq(
                    d.depart,
                    group.first_dep_seq + j as u64,
                    EventPayload::Departure { session: sid },
                );
            }
            out.groups.push(selects);
        }
        self.select_elapsed += started.elapsed();
        Ok(out)
    }
}

fn worker_died() -> EngineError {
    EngineError::Sink(io::Error::other("shard worker terminated unexpectedly"))
}

/// Takes one chunk reply off a shard's output channel.
fn recv_reply(rx: &Receiver<ShardReply>) -> Result<Vec<CycleOut>, EngineError> {
    match rx.recv() {
        Some(Ok(outs)) => Ok(outs),
        Some(Err(e)) => Err(e),
        None => Err(worker_died()),
    }
}

/// Recovers the terminal error after the ingest thread died without a
/// verdict (its send to a shard failed, so a worker holds the real
/// explanation on its output channel — drain them all until one shows).
fn sweep_worker_error(from_shards: &[Receiver<ShardReply>]) -> EngineError {
    for rx in from_shards {
        while let Some(reply) = rx.recv() {
            if let Err(e) = reply {
                return e;
            }
        }
    }
    worker_died()
}

/// Sends the buffered chunk: every shard's payload first, then the meta
/// payload — the order the deadlock-freedom argument in the module docs
/// relies on. Returns `false` if a peer disconnected (the pipeline is
/// unwinding; the caller just exits).
fn flush_chunk(
    to_shards: &[Sender<ToShard>],
    meta_tx: &Sender<MetaMsg>,
    shard_bufs: &mut [Vec<CycleMsg>],
    meta_buf: &mut Vec<CycleMeta>,
) -> bool {
    for (tx, buf) in to_shards.iter().zip(shard_bufs.iter_mut()) {
        let chunk = std::mem::replace(buf, Vec::with_capacity(CHUNK_CYCLES));
        if tx.send(ToShard::Chunk(chunk)).is_err() {
            return false;
        }
    }
    let metas = std::mem::replace(meta_buf, Vec::with_capacity(CHUNK_CYCLES));
    meta_tx.send(MetaMsg::Chunk(metas)).is_ok()
}

/// The ingest role: pulls demands, forms global cycles, assigns every
/// identifier, and fans chunks out to the shards and the merger. Runs on
/// its own thread so source I/O and cycle formation overlap shard
/// execution and merging.
fn ingest_cycles(
    source: &mut (dyn DemandSource + Send),
    batch_window: TimeDelta,
    report_interval: TimeDelta,
    rebalance: Option<RebalanceConfig>,
    plan: &ShardPlan,
    to_shards: Vec<Sender<ToShard>>,
    meta_tx: Sender<MetaMsg>,
) {
    let demands_total = s3_obs::global().counter(&DEMANDS);
    let mut epochs = EpochSchedule::new();
    let mut pending: Option<SessionDemand> = None;
    let mut next_seq: u64 = 0;
    let mut next_sid: u32 = 0;
    // Reusable per-cycle grouping scratch: controller → group index, the
    // groups in first-appearance order (owner, controller, members), and
    // the per-shard routed group lists.
    let mut group_of: HashMap<ControllerId, usize> = HashMap::new();
    let mut order: Vec<(Option<usize>, ControllerId, Vec<u32>)> = Vec::new();
    let mut per_shard: Vec<Vec<Arc<GroupMsg>>> = to_shards.iter().map(|_| Vec::new()).collect();
    let mut shard_bufs: Vec<Vec<CycleMsg>> = to_shards
        .iter()
        .map(|_| Vec::with_capacity(CHUNK_CYCLES))
        .collect();
    let mut meta_buf: Vec<CycleMeta> = Vec::with_capacity(CHUNK_CYCLES);

    loop {
        let batch = match next_batch(source, &mut pending, batch_window) {
            Ok(Some(batch)) => batch,
            Ok(None) => break,
            Err(e) => {
                // Buffered cycles are discarded along with the error
                // verdict's successors: the shards never saw them, so
                // the pipeline stays consistent.
                let _ = meta_tx.send(MetaMsg::Fail(e));
                return;
            }
        };
        let head = batch[0].arrive;
        demands_total.add(batch.len() as u64);
        let tick = epochs.tick_due(head, rebalance.as_ref());
        let report = epochs.report_due(head, report_interval);
        // Sequence numbers replicate the unified push order: tick,
        // report, arrival batch, then one per placed member.
        let mut take_seq = || {
            let s = next_seq;
            next_seq += 1;
            s
        };
        let tick_seq = tick.then(&mut take_seq);
        let report_seq = report.then(&mut take_seq);
        let batch_seq = take_seq();
        let cycle_events = 1 + u8::from(tick) + u8::from(report);

        // Group by controller in first-appearance order (the same
        // grouping `place_batch` computes). Controllers without APs are
        // unknown to every shard plan: their groups carry no ids and the
        // merger rejects the members.
        group_of.clear();
        let mut used = 0usize;
        for (i, d) in batch.iter().enumerate() {
            let gi = *group_of.entry(d.controller).or_insert_with(|| {
                let shard = plan.owner.get(&d.controller).copied();
                if used < order.len() {
                    order[used].0 = shard;
                    order[used].1 = d.controller;
                    order[used].2.clear();
                } else {
                    order.push((shard, d.controller, Vec::new()));
                }
                used += 1;
                used - 1
            });
            order[gi].2.push(i as u32);
        }
        // Assign sids/departure seqs in global group-major order — the
        // order `place_batch` admits sessions and schedules departures
        // (rejected groups consume no ids).
        let mut meta_groups: Vec<MetaGroup> = Vec::with_capacity(used);
        for (shard, controller, members) in &mut order[..used] {
            let (first_sid, first_dep_seq) = if shard.is_some() {
                let ids = (next_sid, next_seq);
                next_sid += members.len() as u32;
                next_seq += members.len() as u64;
                ids
            } else {
                (0, 0)
            };
            let msg = Arc::new(GroupMsg {
                controller: *controller,
                members: std::mem::take(members),
                first_sid,
                first_dep_seq,
            });
            if let Some(s) = *shard {
                per_shard[s].push(Arc::clone(&msg));
            }
            meta_groups.push(MetaGroup { shard: *shard, msg });
        }

        let batch = Arc::new(batch);
        for (s, buf) in shard_bufs.iter_mut().enumerate() {
            buf.push(CycleMsg {
                head,
                tick,
                report,
                batch: Arc::clone(&batch),
                groups: std::mem::take(&mut per_shard[s]),
            });
        }
        meta_buf.push(CycleMeta {
            head,
            tick_seq,
            report_seq,
            batch_seq,
            batch,
            groups: meta_groups,
            cycle_events,
        });
        if meta_buf.len() >= CHUNK_CYCLES
            && !flush_chunk(&to_shards, &meta_tx, &mut shard_bufs, &mut meta_buf)
        {
            return;
        }
    }
    if !meta_buf.is_empty() && !flush_chunk(&to_shards, &meta_tx, &mut shard_bufs, &mut meta_buf) {
        return;
    }
    for tx in &to_shards {
        if tx.send(ToShard::Finish).is_err() {
            return;
        }
    }
    let _ = meta_tx.send(MetaMsg::Finish);
}

impl SimEngine {
    /// The sharded replay loop: one worker thread per non-empty shard,
    /// one ingest thread forming global cycles and assigning
    /// identifiers, and the calling thread merging shard outputs in
    /// canonical order. See the module docs for the determinism argument
    /// and the wire contract.
    pub(super) fn run_events_sharded(
        &self,
        source: &mut (dyn DemandSource + Send),
        selectors: &mut [Box<dyn ApSelector + Send>],
        sink: &mut dyn RecordSink,
    ) -> Result<RunTotals, EngineError> {
        assert!(
            !selectors.is_empty(),
            "sharded run needs at least one selector"
        );
        let registry = s3_obs::global();
        let _span = registry.timer(&RUN_MICROS);
        registry.counter(&RUNS).inc();
        let plan = ShardPlan::new(&self.topology, selectors.len());
        // Non-empty shards form a prefix of the plan; empty ones would
        // only add barrier traffic for structurally empty replies.
        let active = plan.shards.iter().take_while(|s| !s.is_empty()).count();
        let rebalance = self.config.rebalance.clone();
        let max_moves = rebalance.as_ref().map_or(0, |rb| rb.max_moves_per_round);
        let emit_at_departure = rebalance.is_some();
        let batch_window = self.config.batch_window;
        let report_interval = self.config.load_report_interval;

        std::thread::scope(|scope| {
            let mut to_shards: Vec<Sender<ToShard>> = Vec::with_capacity(active);
            let mut from_shards: Vec<Receiver<ShardReply>> = Vec::with_capacity(active);
            for (i, selector) in selectors.iter_mut().take(active).enumerate() {
                let (to_tx, to_rx) = mailbox::bounded(IN_FLIGHT_CHUNKS);
                let (out_tx, out_rx) = mailbox::bounded(IN_FLIGHT_CHUNKS);
                let worker = ShardWorker {
                    topology: &self.topology,
                    controllers: &plan.shards[i],
                    max_moves,
                    emit_at_departure,
                    run: RunState::new(self.topology.ap_count()),
                    queue: EventQueue::new(),
                    arrivals: Vec::new(),
                    select_elapsed: Duration::ZERO,
                };
                let sel: &mut (dyn ApSelector + Send) = &mut **selector;
                scope.spawn(move || worker.run_loop(sel, to_rx, out_tx));
                to_shards.push(to_tx);
                from_shards.push(out_rx);
            }
            let (meta_tx, meta_rx) = mailbox::bounded(IN_FLIGHT_CHUNKS);
            let plan_ref = &plan;
            scope.spawn(move || {
                ingest_cycles(
                    source,
                    batch_window,
                    report_interval,
                    rebalance,
                    plan_ref,
                    to_shards,
                    meta_tx,
                );
            });
            let mut merger = Merger {
                topology: &self.topology,
                sink,
                emit_at_departure,
                reported: vec![BitsPerSec::ZERO; self.topology.ap_count()],
                depth: 0,
                peak: 0,
                processed: 0,
                dep_pos: Vec::new(),
                group_cursor: Vec::new(),
                record_buf: Vec::new(),
                placed: 0,
                rejected: 0,
                departed: 0,
                migrations: 0,
                records: 0,
                batches: registry.counter(&BATCHES),
                batch_size: registry.histogram(&BATCH_SIZE),
                placements: registry.counter(&PLACEMENTS),
                departures: registry.counter(&DEPARTURES),
                load_reports: registry.counter(&LOAD_REPORTS),
                ap_load_kbps: registry.histogram(&AP_LOAD_KBPS),
                chunks: registry.counter(&CHUNKS),
                barrier_wait: registry.histogram(&BARRIER_WAIT_MICROS),
                merge_micros: registry.histogram(&MERGE_MICROS),
                channel_occupancy: registry.histogram(&CHANNEL_OCCUPANCY),
            };
            merger.run(&meta_rx, &from_shards)
        })
    }
}

/// Merger-side emission state: joins each chunk at the barrier, merges
/// every cycle's shard outputs in the canonical order of the unified
/// drain, and owns every sink call — so trace bodies and record streams
/// are byte-identical to the unified engine's.
struct Merger<'a, 't> {
    topology: &'t Topology,
    sink: &'a mut dyn RecordSink,
    emit_at_departure: bool,
    /// The global reported-load vector (what the unified engine keeps in
    /// `RunState::reported`), assembled from shard fragments.
    reported: Vec<BitsPerSec>,
    /// Unified-queue counters, reduced from per-cycle pop counts (the
    /// old per-event heap mirror, folded into three integers).
    depth: usize,
    peak: usize,
    processed: u64,
    /// Reusable k-way departure-merge cursors, one per shard.
    dep_pos: Vec<usize>,
    /// Reusable per-shard group cursors for the group walk.
    group_cursor: Vec<usize>,
    /// Reusable placement-mode record staging (per cycle).
    record_buf: Vec<SessionRecord>,
    placed: usize,
    rejected: usize,
    departed: usize,
    migrations: usize,
    records: usize,
    batches: s3_obs::Counter,
    batch_size: s3_obs::Histogram,
    placements: s3_obs::Counter,
    departures: s3_obs::Counter,
    load_reports: s3_obs::Counter,
    ap_load_kbps: s3_obs::Histogram,
    chunks: s3_obs::Counter,
    barrier_wait: s3_obs::Histogram,
    merge_micros: s3_obs::Histogram,
    channel_occupancy: s3_obs::Histogram,
}

impl Merger<'_, '_> {
    fn emit(&mut self, record: SessionRecord) -> Result<(), EngineError> {
        self.sink.emit(record).map_err(EngineError::Sink)?;
        self.records += 1;
        Ok(())
    }

    fn observe(&mut self, event: &TraceEvent<'_>) -> Result<(), EngineError> {
        self.sink.observe(event).map_err(EngineError::Sink)
    }

    /// The merge loop: consumes the meta stream in order, joining each
    /// chunk's shard replies at the barrier.
    fn run(
        &mut self,
        meta_rx: &Receiver<MetaMsg>,
        from_shards: &[Receiver<ShardReply>],
    ) -> Result<RunTotals, EngineError> {
        let mut outs: Vec<Vec<CycleOut>> = Vec::with_capacity(from_shards.len());
        loop {
            let Some(msg) = meta_rx.recv() else {
                // The ingest thread died without a verdict: its send to
                // a shard failed, so a worker holds the real error.
                return Err(sweep_worker_error(from_shards));
            };
            match msg {
                MetaMsg::Chunk(metas) => {
                    self.chunks.inc();
                    outs.clear();
                    let waited = Instant::now();
                    for rx in from_shards {
                        self.channel_occupancy.observe(rx.len() as u64);
                        outs.push(recv_reply(rx)?);
                    }
                    self.barrier_wait
                        .observe(waited.elapsed().as_micros() as u64);
                    let merging = Instant::now();
                    for (c, meta) in metas.iter().enumerate() {
                        self.merge_cycle(meta, &mut outs, c)?;
                    }
                    self.merge_micros
                        .observe(merging.elapsed().as_micros() as u64);
                }
                MetaMsg::Finish => {
                    // Final drain: every shard closes its remaining
                    // sessions; the merged departures complete the log.
                    outs.clear();
                    for rx in from_shards {
                        outs.push(recv_reply(rx)?);
                    }
                    let popped: u64 = outs
                        .iter()
                        .map(|o| o.first().map_or(0, |out| out.popped))
                        .sum();
                    self.merge_departures_at(&mut outs, 0)?;
                    self.processed += popped;
                    return self.finish();
                }
                MetaMsg::Fail(e) => return Err(e),
            }
        }
    }

    /// Merges cycle `c`'s departures across shards in global
    /// `(time, seq)` order. Each shard's departs are already sorted by
    /// that key (queue pop order), so an allocation-free k-way cursor
    /// min reproduces the old collect-and-sort exactly.
    fn merge_departures_at(
        &mut self,
        outs: &mut [Vec<CycleOut>],
        c: usize,
    ) -> Result<(), EngineError> {
        self.dep_pos.clear();
        self.dep_pos.resize(outs.len(), 0);
        loop {
            let mut best: Option<((u64, u64), usize)> = None;
            for (s, shard) in outs.iter().enumerate() {
                if let Some(d) = shard[c].departs.get(self.dep_pos[s]) {
                    let key = (d.at.as_secs(), d.seq);
                    if best.is_none_or(|(k, _)| key < k) {
                        best = Some((key, s));
                    }
                }
            }
            let Some((_, s)) = best else { break };
            let pos = self.dep_pos[s];
            self.dep_pos[s] += 1;
            let d = &mut outs[s][c].departs[pos];
            let (at, seq, sid, user, ap) = (d.at, d.seq, d.sid, d.user, d.ap);
            let record = d.record.take();
            self.departures.inc();
            self.departed += 1;
            self.observe(&TraceEvent::Depart {
                at,
                seq,
                sid,
                user,
                ap,
            })?;
            if let Some(record) = record {
                self.emit(record)?;
            }
        }
        Ok(())
    }

    fn merge_cycle(
        &mut self,
        meta: &CycleMeta,
        outs: &mut [Vec<CycleOut>],
        c: usize,
    ) -> Result<(), EngineError> {
        // Queue counters, mirroring the unified push/pop order: the
        // cycle's events push (monotone — peak after the bulk add sees
        // the same maximum), then the drain pops everything due plus the
        // cycle events themselves.
        let cycle_events = meta.cycle_events as usize;
        self.depth += cycle_events;
        self.peak = self.peak.max(self.depth);
        let popped: u64 = outs.iter().map(|shard| shard[c].popped).sum();
        self.depth -= popped as usize + cycle_events;
        self.processed += popped + cycle_events as u64;
        // 1. Departures due at this head, merged across shards.
        self.merge_departures_at(outs, c)?;
        // 2. The rebalance tick; moves concatenate in shard order, which
        //    is ascending-controller order (the plan is contiguous).
        if let Some(seq) = meta.tick_seq {
            s3_obs::global().counter(&REBALANCE_ROUNDS).inc();
            self.observe(&TraceEvent::Tick { at: meta.head, seq })?;
            for shard in outs.iter_mut() {
                for mv in std::mem::take(&mut shard[c].moves) {
                    self.migrations += 1;
                    self.observe(&TraceEvent::Move {
                        at: meta.head,
                        sid: mv.sid,
                        user: mv.user,
                        from: mv.from,
                        to: mv.to,
                    })?;
                    if let Some(record) = mv.record {
                        self.emit(record)?;
                    }
                }
            }
        }
        // 3. One global load report assembled from shard fragments; the
        //    histogram samples every AP in index order, as the unified
        //    refresh loop does.
        if let Some(seq) = meta.report_seq {
            self.load_reports.inc();
            for shard in outs.iter_mut() {
                for (ap, load) in shard[c].report.take().unwrap_or_default() {
                    self.reported[ap.index()] = load;
                }
            }
            for load in &self.reported {
                self.ap_load_kbps.observe((load.as_f64() / 1_000.0) as u64);
            }
            let event = TraceEvent::Report {
                at: meta.head,
                seq,
                loads: &self.reported,
            };
            self.sink.observe(&event).map_err(EngineError::Sink)?;
        }
        // 4. The batch and its groups in first-appearance order.
        self.observe(&TraceEvent::Batch {
            at: meta.head,
            seq: meta.batch_seq,
            batch: &meta.batch,
        })?;
        self.batches.inc();
        self.batch_size.observe(meta.batch.len() as u64);
        self.group_cursor.clear();
        self.group_cursor.resize(outs.len(), 0);
        for group in &meta.groups {
            let msg = &group.msg;
            match group.shard {
                None => {
                    self.rejected += msg.members.len();
                    for &i in &msg.members {
                        self.observe(&TraceEvent::Reject {
                            at: meta.head,
                            user: meta.batch[i as usize].user,
                        })?;
                    }
                }
                Some(s) => {
                    let gi = self.group_cursor[s];
                    self.group_cursor[s] += 1;
                    let selects = &outs[s][c].groups[gi];
                    // Placed departures push onto the unified queue here.
                    self.depth += selects.len();
                    self.peak = self.peak.max(self.depth);
                    let candidates = self.topology.aps_of_controller(msg.controller);
                    self.placements.add(selects.len() as u64);
                    self.placed += selects.len();
                    for (j, sel) in selects.iter().enumerate() {
                        let d = &meta.batch[msg.members[j] as usize];
                        self.sink
                            .observe(&TraceEvent::Select {
                                at: meta.head,
                                sid: msg.first_sid + j as u32,
                                user: d.user,
                                ap: sel.ap,
                                clique: sel.clique,
                                degraded: sel.degraded,
                                rate: d.mean_rate(),
                                candidates,
                            })
                            .map_err(EngineError::Sink)?;
                        if !self.emit_at_departure {
                            // Placement-mode records are fully determined
                            // here — staged in group-major member order,
                            // exactly the unified scratch order.
                            let mut active = Active::from_demand(d, sel.ap);
                            self.record_buf.push(active.close_segment(d.depart, true));
                        }
                    }
                }
            }
        }
        // 5. Placement-mode records, batch-sorted by `(connect, user,
        //    ap)` like the unified scratch emit (stable sort over the
        //    same staging order ⇒ identical output).
        if !self.emit_at_departure && !self.record_buf.is_empty() {
            let mut records = std::mem::take(&mut self.record_buf);
            records.sort_by_key(|r| (r.connect, r.user, r.ap));
            for record in records.drain(..) {
                self.emit(record)?;
            }
            self.record_buf = records;
        }
        Ok(())
    }

    /// Emits the end-of-run trace record and publishes the run counters
    /// (all metrics live on the merger; shards publish only their
    /// volatile phase timers). Active sessions at end-of-trace are
    /// exactly `placed − departed`: sessions close only at departure,
    /// and migration never closes one.
    fn finish(&mut self) -> Result<RunTotals, EngineError> {
        let end = TraceEvent::End {
            placed: self.placed as u64,
            rejected: self.rejected as u64,
            departed: self.departed as u64,
            active: (self.placed - self.departed) as u64,
        };
        self.observe(&end)?;
        publish_queue_totals(self.processed, self.peak);
        let registry = s3_obs::global();
        registry.counter(&REJECTED).add(self.rejected as u64);
        registry.counter(&MIGRATIONS).add(self.migrations as u64);
        Ok(RunTotals {
            placed: self.placed,
            rejected: self.rejected,
            migrations: self.migrations,
            records: self.records,
        })
    }
}
