//! Controller-domain sharding: the replay engine partitioned into
//! shard-local event loops joined by deterministic epoch barriers.
//!
//! # Why sharding by controller is decision-preserving
//!
//! Every placement decision is a pure function of `(topology, shard-local
//! run state, group demands)`: `place_batch` groups each arrival batch
//! per controller, candidate APs never cross controllers, and the
//! rebalancer migrates only within a controller's domain. Partitioning
//! controllers across shards therefore cannot change any decision — only
//! the *interleaving* of work. Three couplings remain global, and all
//! three live on the coordinator:
//!
//! * **batch boundaries** — batches are formed from the global arrival
//!   stream ([`next_batch`]); a per-shard batcher would group a
//!   controller's arrivals differently and change selector inputs;
//! * **identifier assignment** — session indices and event-queue
//!   sequence numbers are pure functions of the cycle structure (what
//!   fires this cycle, which members place), so the coordinator computes
//!   them up front and shards schedule departures under the exact
//!   `(time, rank, seq)` keys the unified queue would have used;
//! * **output order** — each cycle's decisions are merged in the
//!   canonical order of the unified drain: departures by `(time, seq)`
//!   across shards, moves in ascending-controller order, one global load
//!   report, then the batch's groups in first-appearance order.
//!
//! # Barrier model
//!
//! A *cycle* (one arrival batch plus everything due at its head) is the
//! epoch. The coordinator forms the cycle, mails a [`CycleMsg`] to every
//! shard, and each shard independently drains its own departures, runs
//! its rebalance/report share, and places its groups. The barrier is the
//! merge: cycle `c` is emitted only when every shard has returned its
//! [`CycleOut`] for `c`. Up to [`PIPELINE_CYCLES`] cycles are in flight
//! per shard, so shards overlap work without ever reordering output.
//! Cross-shard events cannot exist mid-cycle by construction: a session
//! lives and dies within one controller (roaming appears in traces as
//! separate sessions), so the only cross-shard exchanges are the global
//! batch fan-out and the merged report/trace stream — both at barriers.
//!
//! The result is byte-identical to the unified engine at any
//! `--shards N × --threads M`: same records, same `s3-dtrace/1` bodies,
//! same stable metrics (a [`QueueMirror`] on the coordinator replays the
//! unified queue's push/pop sequence so even the queue-depth histogram
//! matches).
//!
//! # Shard-invariance contract
//!
//! Selectors must be deterministic per controller group (decisions a
//! pure function of the group's inputs). Every shipped policy satisfies
//! this except `RandomSelector`, which draws from one sequential RNG
//! stream — the CLI rejects `--shards > 1` with the random policy.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io;

use s3_par::mailbox::{self, Receiver, Sender};
use s3_trace::{SessionDemand, SessionRecord};
use s3_types::{ApId, BitsPerSec, ControllerId, Timestamp, UserId};

use super::events::{publish_queue_totals, EventPayload, EventQueue};
use super::runner::{
    next_batch, rebalance_controller, select_group, EpochSchedule, RunTotals, AP_LOAD_KBPS,
    BATCHES, BATCH_SIZE, DEMANDS, DEPARTURES, LOAD_REPORTS, MIGRATIONS, PLACEMENTS,
    REBALANCE_ROUNDS, REJECTED, RUNS, RUN_MICROS,
};
use super::source::{DemandSource, EngineError, RecordSink};
use super::state::{Active, RunState};
use super::tracing::TraceEvent;
use super::SimEngine;
use crate::selector::{ApSelector, ArrivalUser};
use crate::topology::Topology;

/// Cycles in flight per shard between the coordinator and the merge
/// barrier. Mailbox capacities exceed this by a margin, so neither side
/// ever blocks on a send — the window only bounds memory.
const PIPELINE_CYCLES: usize = 16;

/// Assignment of controllers to shards: the ascending controller list
/// split into contiguous, near-equal chunks. Contiguity keeps the merged
/// move stream in ascending-controller order by plain shard-order
/// concatenation. Shards beyond the controller count stay empty (legal:
/// an empty shard drains nothing and returns empty cycles).
struct ShardPlan {
    shards: Vec<Vec<ControllerId>>,
    owner: HashMap<ControllerId, usize>,
}

impl ShardPlan {
    fn new(topology: &Topology, shard_count: usize) -> ShardPlan {
        let controllers = topology.controllers();
        let n = shard_count.max(1);
        let mut shards = vec![Vec::new(); n];
        let per = controllers.len() / n;
        let extra = controllers.len() % n;
        let mut it = controllers.into_iter();
        for (i, shard) in shards.iter_mut().enumerate() {
            shard.extend(it.by_ref().take(per + usize::from(i < extra)));
        }
        let owner = shards
            .iter()
            .enumerate()
            .flat_map(|(i, cs)| cs.iter().map(move |&c| (c, i)))
            .collect();
        ShardPlan { shards, owner }
    }
}

/// One controller group of a cycle, with coordinator-assigned ids: the
/// group's sessions get consecutive indices from `first_sid` and their
/// departure events consecutive queue sequences from `first_dep_seq`.
struct GroupMsg {
    controller: ControllerId,
    demands: Vec<SessionDemand>,
    first_sid: u32,
    first_dep_seq: u64,
}

/// One epoch's work order for a shard.
struct CycleMsg {
    head: Timestamp,
    tick: bool,
    report: bool,
    groups: Vec<GroupMsg>,
}

enum ToShard {
    Cycle(Box<CycleMsg>),
    /// Source exhausted: drain every remaining departure and reply with
    /// one final [`CycleOut`].
    Finish,
}

struct SelectOut {
    sid: u32,
    user: UserId,
    ap: ApId,
    clique: Option<u32>,
    degraded: bool,
    rate: BitsPerSec,
}

struct GroupOut {
    controller: ControllerId,
    selects: Vec<SelectOut>,
}

struct DepartOut {
    at: Timestamp,
    seq: u64,
    sid: u32,
    user: UserId,
    ap: ApId,
    record: Option<SessionRecord>,
}

struct MoveOut {
    sid: u32,
    user: UserId,
    from: ApId,
    to: ApId,
    record: Option<SessionRecord>,
}

/// A shard's results for one cycle, in shard-local processing order.
#[derive(Default)]
struct CycleOut {
    departs: Vec<DepartOut>,
    moves: Vec<MoveOut>,
    /// Own APs' loads after the report refresh (when the cycle reported).
    report: Option<Vec<(ApId, BitsPerSec)>>,
    groups: Vec<GroupOut>,
    /// Placement-mode records of this cycle's groups.
    records: Vec<SessionRecord>,
}

impl CycleOut {
    fn empty() -> Self {
        CycleOut::default()
    }
}

/// Mirror of the unified [`EventQueue`]'s push/pop sequence, kept by the
/// coordinator so `wlan.engine.events_processed` and the queue-peak
/// histogram are byte-identical to the unified run: per cycle it pushes
/// the cycle events, drains everything due at the head, then pushes the
/// placed departures — exactly the unified order, counting depth and
/// peak without owning payloads.
struct QueueMirror {
    departs: BinaryHeap<Reverse<u64>>,
    depth: usize,
    peak: usize,
    processed: u64,
}

impl QueueMirror {
    fn new() -> Self {
        QueueMirror {
            departs: BinaryHeap::new(),
            depth: 0,
            peak: 0,
            processed: 0,
        }
    }

    /// Mirrors pushing the cycle's tick/report/arrival events.
    fn push_cycle_events(&mut self, count: usize) {
        for _ in 0..count {
            self.depth += 1;
            self.peak = self.peak.max(self.depth);
        }
    }

    /// Mirrors the cycle drain: every departure due at or before the
    /// head, plus the cycle events themselves.
    fn drain_due(&mut self, head_secs: u64, cycle_events: usize) {
        let mut popped = 0;
        while self
            .departs
            .peek()
            .is_some_and(|&Reverse(t)| t <= head_secs)
        {
            self.departs.pop();
            popped += 1;
        }
        self.depth -= popped + cycle_events;
        self.processed += (popped + cycle_events) as u64;
    }

    /// Mirrors scheduling one departure during placement.
    fn push_departure(&mut self, depart_secs: u64) {
        self.departs.push(Reverse(depart_secs));
        self.depth += 1;
        self.peak = self.peak.max(self.depth);
    }

    /// Mirrors the final unconditional drain and publishes the totals.
    fn finish_and_publish(mut self) {
        self.processed += self.departs.len() as u64;
        self.departs.clear();
        publish_queue_totals(self.processed, self.peak);
    }
}

/// How one cycle group resolves at merge time.
enum MergeGroup {
    /// Controller without APs: the coordinator rejects the members
    /// itself (such controllers are unknown to every shard plan).
    Rejected { users: Vec<UserId> },
    /// Placed by `shard`; its [`GroupOut`]s are consumed in order.
    Placed { shard: usize },
}

/// Everything the coordinator must remember about an in-flight cycle to
/// merge it once all shards report back.
struct CycleMeta {
    head: Timestamp,
    tick_seq: Option<u64>,
    report_seq: Option<u64>,
    batch_seq: u64,
    batch: Vec<SessionDemand>,
    groups: Vec<MergeGroup>,
}

/// Shard-local engine state driven by [`CycleMsg`]s. Holds full-size AP
/// vectors (indexed by global AP id) but only ever touches its own
/// controllers' entries; the local [`EventQueue`] holds only departures,
/// scheduled under coordinator-assigned sequence numbers.
struct ShardWorker<'t> {
    topology: &'t Topology,
    /// Own controllers, ascending.
    controllers: Vec<ControllerId>,
    max_moves: usize,
    emit_at_departure: bool,
    run: RunState,
    queue: EventQueue,
    arrivals: Vec<ArrivalUser>,
}

impl ShardWorker<'_> {
    fn run_loop(
        mut self,
        selector: &mut (dyn ApSelector + Send),
        rx: Receiver<ToShard>,
        tx: Sender<Result<CycleOut, EngineError>>,
    ) {
        while let Some(msg) = rx.recv() {
            match msg {
                ToShard::Cycle(cycle) => {
                    let result = self.run_cycle(*cycle, selector);
                    let stop = result.is_err();
                    if tx.send(result).is_err() || stop {
                        return;
                    }
                }
                ToShard::Finish => {
                    let mut out = CycleOut::empty();
                    self.pop_departures(None, &mut out);
                    let _ = tx.send(Ok(out));
                    return;
                }
            }
        }
    }

    /// Drains departures due at or before `due` (all of them when
    /// `None`), in global `(time, seq)` order restricted to this shard —
    /// which preserves the per-AP floating-point release order, since an
    /// AP lives in exactly one shard.
    fn pop_departures(&mut self, due: Option<Timestamp>, out: &mut CycleOut) {
        loop {
            let event = match due {
                Some(head) => self.queue.pop_due(head),
                None => self.queue.pop(),
            };
            let Some(event) = event else { break };
            let EventPayload::Departure { session } = event.payload else {
                unreachable!("shard queues hold departures only");
            };
            let Some(mut active) = self.run.close(session) else {
                continue;
            };
            let end = active.depart;
            let record = self
                .emit_at_departure
                .then(|| active.close_segment(end, true));
            self.run.release(active.ap, active.user, active.rate);
            out.departs.push(DepartOut {
                at: event.at,
                seq: event.seq,
                sid: session,
                user: active.user,
                ap: active.ap,
                record,
            });
        }
    }

    fn run_cycle(
        &mut self,
        cycle: CycleMsg,
        selector: &mut (dyn ApSelector + Send),
    ) -> Result<CycleOut, EngineError> {
        let mut out = CycleOut::empty();
        // Rank order of the unified drain at one head: departures (0),
        // rebalance tick (1), load report (2), arrival batch (3).
        self.pop_departures(Some(cycle.head), &mut out);
        if cycle.tick {
            for &controller in &self.controllers {
                let aps = self.topology.aps_of_controller(controller);
                rebalance_controller(&mut self.run, aps, self.max_moves, cycle.head, &mut |mv| {
                    out.moves.push(MoveOut {
                        sid: mv.sid,
                        user: mv.user,
                        from: mv.from,
                        to: mv.to,
                        record: mv.record,
                    });
                    Ok(())
                })?;
            }
        }
        if cycle.report {
            let mut loads = Vec::new();
            for &controller in &self.controllers {
                for &ap in self.topology.aps_of_controller(controller) {
                    let Some(state) = self.run.state.get(ap.index()) else {
                        return Err(EngineError::MissingAp { ap, controller });
                    };
                    let load = state.load;
                    self.run.reported[ap.index()] = load;
                    loads.push((ap, load));
                }
            }
            out.report = Some(loads);
        }
        for group in cycle.groups {
            let aps = self.topology.aps_of_controller(group.controller);
            let (picks, metas) = select_group(
                self.topology,
                &self.run,
                selector,
                group.controller,
                aps,
                group.demands.iter(),
                &mut self.arrivals,
            )?;
            let mut selects = Vec::with_capacity(picks.len());
            for (j, (&pick, d)) in picks.iter().zip(&group.demands).enumerate() {
                let sid = group.first_sid + j as u32;
                let ap = aps[pick];
                self.run.place_at(d, ap, sid);
                let m = metas[j];
                selects.push(SelectOut {
                    sid,
                    user: d.user,
                    ap,
                    clique: m.clique,
                    degraded: m.degraded,
                    rate: d.mean_rate(),
                });
                self.queue.push_with_seq(
                    d.depart,
                    group.first_dep_seq + j as u64,
                    EventPayload::Departure { session: sid },
                );
                if !self.emit_at_departure {
                    let mut active = Active::from_demand(d, ap);
                    out.records.push(active.close_segment(d.depart, true));
                }
            }
            out.groups.push(GroupOut {
                controller: group.controller,
                selects,
            });
        }
        Ok(out)
    }
}

fn worker_died() -> EngineError {
    EngineError::Sink(io::Error::other("shard worker terminated unexpectedly"))
}

impl SimEngine {
    /// The sharded replay loop: one worker thread per selector, one
    /// coordinator (the calling thread) forming global cycles, assigning
    /// identifiers, and merging shard outputs in canonical order. See
    /// the module docs for the determinism argument.
    pub(super) fn run_events_sharded(
        &self,
        source: &mut dyn DemandSource,
        selectors: &mut [Box<dyn ApSelector + Send>],
        sink: &mut dyn RecordSink,
    ) -> Result<RunTotals, EngineError> {
        assert!(
            !selectors.is_empty(),
            "sharded run needs at least one selector"
        );
        let shard_count = selectors.len();
        let registry = s3_obs::global();
        let _span = registry.timer(&RUN_MICROS);
        registry.counter(&RUNS).inc();
        let plan = ShardPlan::new(&self.topology, shard_count);
        let rebalance = self.config.rebalance.clone();
        let max_moves = rebalance.as_ref().map_or(0, |rb| rb.max_moves_per_round);
        let emit_at_departure = rebalance.is_some();

        std::thread::scope(|scope| {
            let mut to_shards: Vec<Sender<ToShard>> = Vec::with_capacity(shard_count);
            let mut from_shards: Vec<Receiver<Result<CycleOut, EngineError>>> =
                Vec::with_capacity(shard_count);
            for (i, selector) in selectors.iter_mut().enumerate() {
                let (to_tx, to_rx) = mailbox::bounded(PIPELINE_CYCLES + 2);
                let (out_tx, out_rx) = mailbox::bounded(PIPELINE_CYCLES + 2);
                let worker = ShardWorker {
                    topology: &self.topology,
                    controllers: plan.shards[i].clone(),
                    max_moves,
                    emit_at_departure,
                    run: RunState::new(self.topology.ap_count()),
                    queue: EventQueue::new(),
                    arrivals: Vec::new(),
                };
                let sel: &mut (dyn ApSelector + Send) = &mut **selector;
                scope.spawn(move || worker.run_loop(sel, to_rx, out_tx));
                to_shards.push(to_tx);
                from_shards.push(out_rx);
            }
            let mut merger = Merger {
                topology: &self.topology,
                sink,
                emit_at_departure,
                reported: vec![BitsPerSec::ZERO; self.topology.ap_count()],
                placed: 0,
                rejected: 0,
                departed: 0,
                migrations: 0,
                records: 0,
                batches: registry.counter(&BATCHES),
                batch_size: registry.histogram(&BATCH_SIZE),
                placements: registry.counter(&PLACEMENTS),
                departures: registry.counter(&DEPARTURES),
                load_reports: registry.counter(&LOAD_REPORTS),
                ap_load_kbps: registry.histogram(&AP_LOAD_KBPS),
            };
            self.coordinate(
                source,
                &rebalance,
                &plan,
                &to_shards,
                &from_shards,
                &mut merger,
            )
        })
    }

    fn coordinate(
        &self,
        source: &mut dyn DemandSource,
        rebalance: &Option<super::RebalanceConfig>,
        plan: &ShardPlan,
        to_shards: &[Sender<ToShard>],
        from_shards: &[Receiver<Result<CycleOut, EngineError>>],
        merger: &mut Merger<'_, '_>,
    ) -> Result<RunTotals, EngineError> {
        let demands_total = s3_obs::global().counter(&DEMANDS);
        let shard_count = to_shards.len();
        let mut epochs = EpochSchedule::new();
        let mut pending: Option<SessionDemand> = None;
        let mut in_flight: VecDeque<CycleMeta> = VecDeque::new();
        let mut mirror = QueueMirror::new();
        let mut next_seq: u64 = 0;
        let mut next_sid: u32 = 0;

        while let Some(batch) = next_batch(source, &mut pending, self.config.batch_window)? {
            let head = batch[0].arrive;
            demands_total.add(batch.len() as u64);
            let tick = epochs.tick_due(head, rebalance.as_ref());
            let report = epochs.report_due(head, self.config.load_report_interval);
            // Sequence numbers replicate the unified push order: tick,
            // report, arrival batch, then one per placed member.
            let mut take_seq = || {
                let s = next_seq;
                next_seq += 1;
                s
            };
            let tick_seq = tick.then(&mut take_seq);
            let report_seq = report.then(&mut take_seq);
            let batch_seq = take_seq();
            let cycle_events = 1 + usize::from(tick) + usize::from(report);
            mirror.push_cycle_events(cycle_events);
            mirror.drain_due(head.as_secs(), cycle_events);

            // Group by controller in first-appearance order (the same
            // grouping `place_batch` computes), routing each group to
            // its owner shard with pre-assigned session indices and
            // departure sequences. Controllers without APs are unknown
            // to every shard: the coordinator rejects those members.
            let mut group_of: HashMap<ControllerId, usize> = HashMap::new();
            let mut merge_groups: Vec<MergeGroup> = Vec::new();
            let mut shard_groups: Vec<Vec<GroupMsg>> =
                (0..shard_count).map(|_| Vec::new()).collect();
            let mut slot_of: Vec<Option<(usize, usize)>> = Vec::new();
            for d in &batch {
                let gi = *group_of.entry(d.controller).or_insert_with(|| {
                    if let Some(&shard) = plan.owner.get(&d.controller) {
                        shard_groups[shard].push(GroupMsg {
                            controller: d.controller,
                            demands: Vec::new(),
                            first_sid: 0,
                            first_dep_seq: 0,
                        });
                        slot_of.push(Some((shard, shard_groups[shard].len() - 1)));
                        merge_groups.push(MergeGroup::Placed { shard });
                    } else {
                        slot_of.push(None);
                        merge_groups.push(MergeGroup::Rejected { users: Vec::new() });
                    }
                    merge_groups.len() - 1
                });
                match slot_of[gi] {
                    Some((shard, slot)) => shard_groups[shard][slot].demands.push(d.clone()),
                    None => {
                        let MergeGroup::Rejected { users } = &mut merge_groups[gi] else {
                            unreachable!("slot-less groups are rejections");
                        };
                        users.push(d.user);
                    }
                }
            }
            // Assign sids/departure seqs in global group-major order —
            // the order `place_batch` admits sessions and schedules
            // departures. `slot_of` walks groups in first appearance.
            for slot in &slot_of {
                let Some((shard, idx)) = *slot else { continue };
                let group = &mut shard_groups[shard][idx];
                group.first_sid = next_sid;
                group.first_dep_seq = next_seq;
                next_sid += group.demands.len() as u32;
                next_seq += group.demands.len() as u64;
                for d in &group.demands {
                    mirror.push_departure(d.depart.as_secs());
                }
            }

            for (shard, groups) in shard_groups.into_iter().enumerate() {
                let msg = ToShard::Cycle(Box::new(CycleMsg {
                    head,
                    tick,
                    report,
                    groups,
                }));
                if to_shards[shard].send(msg).is_err() {
                    return Err(take_worker_error(&from_shards[shard]));
                }
            }
            in_flight.push_back(CycleMeta {
                head,
                tick_seq,
                report_seq,
                batch_seq,
                batch,
                groups: merge_groups,
            });
            if in_flight.len() >= PIPELINE_CYCLES {
                let meta = in_flight.pop_front().expect("window is non-empty");
                merger.merge_cycle(meta, from_shards)?;
            }
        }
        while let Some(meta) = in_flight.pop_front() {
            merger.merge_cycle(meta, from_shards)?;
        }
        // Final drain: every shard closes its remaining sessions; the
        // merged departures complete the log.
        for (shard, tx) in to_shards.iter().enumerate() {
            if tx.send(ToShard::Finish).is_err() {
                return Err(take_worker_error(&from_shards[shard]));
            }
        }
        let mut outs = Vec::with_capacity(shard_count);
        for rx in from_shards {
            match rx.recv() {
                Some(Ok(out)) => outs.push(out),
                Some(Err(e)) => return Err(e),
                None => return Err(worker_died()),
            }
        }
        merger.merge_departures(&mut outs)?;
        merger.finish(mirror)
    }
}

/// Pulls the terminal error out of a dead worker's output channel (the
/// worker sends `Err` then exits, so a failed `send` to it means the
/// explanation is waiting — or the thread died without one).
fn take_worker_error(rx: &Receiver<Result<CycleOut, EngineError>>) -> EngineError {
    while let Some(result) = rx.recv() {
        if let Err(e) = result {
            return e;
        }
    }
    worker_died()
}

/// Coordinator-side emission state: merges each cycle's shard outputs in
/// the canonical order of the unified drain and owns every sink call, so
/// trace bodies and record streams are byte-identical to the unified
/// engine's.
struct Merger<'a, 't> {
    topology: &'t Topology,
    sink: &'a mut dyn RecordSink,
    emit_at_departure: bool,
    /// The global reported-load vector (what the unified engine keeps in
    /// `RunState::reported`), assembled from shard fragments.
    reported: Vec<BitsPerSec>,
    placed: usize,
    rejected: usize,
    departed: usize,
    migrations: usize,
    records: usize,
    batches: s3_obs::Counter,
    batch_size: s3_obs::Histogram,
    placements: s3_obs::Counter,
    departures: s3_obs::Counter,
    load_reports: s3_obs::Counter,
    ap_load_kbps: s3_obs::Histogram,
}

impl Merger<'_, '_> {
    fn emit(&mut self, record: SessionRecord) -> Result<(), EngineError> {
        self.sink.emit(record).map_err(EngineError::Sink)?;
        self.records += 1;
        Ok(())
    }

    fn observe(&mut self, event: &TraceEvent<'_>) -> Result<(), EngineError> {
        self.sink.observe(event).map_err(EngineError::Sink)
    }

    /// Merged departures of one drain, in global `(time, seq)` order.
    fn merge_departures(&mut self, outs: &mut [CycleOut]) -> Result<(), EngineError> {
        let mut departs: Vec<DepartOut> =
            outs.iter_mut().flat_map(|o| o.departs.drain(..)).collect();
        departs.sort_by_key(|d| (d.at.as_secs(), d.seq));
        for d in departs {
            self.departures.inc();
            self.departed += 1;
            self.observe(&TraceEvent::Depart {
                at: d.at,
                seq: d.seq,
                sid: d.sid,
                user: d.user,
                ap: d.ap,
            })?;
            if let Some(record) = d.record {
                self.emit(record)?;
            }
        }
        Ok(())
    }

    fn merge_cycle(
        &mut self,
        meta: CycleMeta,
        from_shards: &[Receiver<Result<CycleOut, EngineError>>],
    ) -> Result<(), EngineError> {
        let mut outs = Vec::with_capacity(from_shards.len());
        for rx in from_shards {
            match rx.recv() {
                Some(Ok(out)) => outs.push(out),
                Some(Err(e)) => return Err(e),
                None => return Err(worker_died()),
            }
        }
        // 1. Departures due at this head, merged across shards.
        self.merge_departures(&mut outs)?;
        // 2. The rebalance tick; moves concatenate in shard order, which
        //    is ascending-controller order (the plan is contiguous).
        if let Some(seq) = meta.tick_seq {
            s3_obs::global().counter(&REBALANCE_ROUNDS).inc();
            self.observe(&TraceEvent::Tick { at: meta.head, seq })?;
            for out in &mut outs {
                for mv in std::mem::take(&mut out.moves) {
                    self.migrations += 1;
                    self.observe(&TraceEvent::Move {
                        at: meta.head,
                        sid: mv.sid,
                        user: mv.user,
                        from: mv.from,
                        to: mv.to,
                    })?;
                    if let Some(record) = mv.record {
                        self.emit(record)?;
                    }
                }
            }
        }
        // 3. One global load report assembled from shard fragments; the
        //    histogram samples every AP in index order, as the unified
        //    refresh loop does.
        if let Some(seq) = meta.report_seq {
            self.load_reports.inc();
            for out in &mut outs {
                for (ap, load) in out.report.take().unwrap_or_default() {
                    self.reported[ap.index()] = load;
                }
            }
            for load in &self.reported {
                self.ap_load_kbps.observe((load.as_f64() / 1_000.0) as u64);
            }
            let event = TraceEvent::Report {
                at: meta.head,
                seq,
                loads: &self.reported,
            };
            self.sink.observe(&event).map_err(EngineError::Sink)?;
        }
        // 4. The batch and its groups in first-appearance order.
        self.observe(&TraceEvent::Batch {
            at: meta.head,
            seq: meta.batch_seq,
            batch: &meta.batch,
        })?;
        self.batches.inc();
        self.batch_size.observe(meta.batch.len() as u64);
        let mut cursors = vec![0usize; outs.len()];
        for group in &meta.groups {
            match group {
                MergeGroup::Rejected { users } => {
                    self.rejected += users.len();
                    for &user in users {
                        self.observe(&TraceEvent::Reject {
                            at: meta.head,
                            user,
                        })?;
                    }
                }
                MergeGroup::Placed { shard } => {
                    let out = &outs[*shard].groups[cursors[*shard]];
                    cursors[*shard] += 1;
                    let candidates = self.topology.aps_of_controller(out.controller);
                    self.placements.add(out.selects.len() as u64);
                    self.placed += out.selects.len();
                    for sel in &out.selects {
                        self.sink
                            .observe(&TraceEvent::Select {
                                at: meta.head,
                                sid: sel.sid,
                                user: sel.user,
                                ap: sel.ap,
                                clique: sel.clique,
                                degraded: sel.degraded,
                                rate: sel.rate,
                                candidates,
                            })
                            .map_err(EngineError::Sink)?;
                    }
                }
            }
        }
        // 5. Placement-mode records, batch-sorted by `(connect, user,
        //    ap)` like the unified scratch emit. Ties on the full key
        //    share an AP, hence a shard, so shard-order concatenation
        //    plus a stable sort reproduces the unified order exactly.
        if !self.emit_at_departure {
            let mut records: Vec<SessionRecord> =
                outs.iter_mut().flat_map(|o| o.records.drain(..)).collect();
            records.sort_by_key(|r| (r.connect, r.user, r.ap));
            for record in records {
                self.emit(record)?;
            }
        }
        Ok(())
    }

    /// Emits the end-of-run trace record and publishes the run counters
    /// (all metrics live on the coordinator; shards publish nothing).
    /// Active sessions at end-of-trace are exactly `placed − departed`:
    /// sessions close only at departure, and migration never closes one.
    fn finish(&mut self, mirror: QueueMirror) -> Result<RunTotals, EngineError> {
        let end = TraceEvent::End {
            placed: self.placed as u64,
            rejected: self.rejected as u64,
            departed: self.departed as u64,
            active: (self.placed - self.departed) as u64,
        };
        self.observe(&end)?;
        mirror.finish_and_publish();
        let registry = s3_obs::global();
        registry.counter(&REJECTED).add(self.rejected as u64);
        registry.counter(&MIGRATIONS).add(self.migrations as u64);
        Ok(RunTotals {
            placed: self.placed,
            rejected: self.rejected,
            migrations: self.migrations,
            records: self.records,
        })
    }
}
