//! Mutable per-run simulation state: AP loads, associations, and the live
//! session table.
//!
//! The session table is a `BTreeMap` keyed by a monotonically increasing
//! index. Two determinism contracts hang off that choice:
//!
//! * departure events are scheduled with the session index at placement
//!   time, so same-second departures fire in placement order — which
//!   fixes the (non-associative) floating-point order in which loads are
//!   released;
//! * the rebalancer scans sessions in ascending index order and its
//!   `max_by` keeps the *last* maximum, so rate ties resolve to the most
//!   recently placed session — exactly what the old `Vec<Option<Active>>`
//!   slab did.

use std::collections::BTreeMap;

use s3_trace::{SessionDemand, SessionRecord};
use s3_types::{ApId, BitsPerSec, Bytes, ControllerId, Timestamp, UserId, APP_CATEGORY_COUNT};

/// A live session being served.
#[derive(Debug, Clone)]
pub(crate) struct Active {
    pub user: UserId,
    pub controller: ControllerId,
    pub ap: ApId,
    pub rate: BitsPerSec,
    pub depart: Timestamp,
    /// Start of the current segment (arrival, or the last migration).
    pub segment_start: Timestamp,
    /// Volume not yet attributed to a closed segment.
    pub remaining: [Bytes; APP_CATEGORY_COUNT],
}

impl Active {
    pub fn from_demand(demand: &SessionDemand, ap: ApId) -> Self {
        Active {
            user: demand.user,
            controller: demand.controller,
            ap,
            rate: demand.mean_rate(),
            depart: demand.depart,
            segment_start: demand.arrive,
            remaining: demand.volume_by_app,
        }
    }

    /// Closes the current segment at `end`, emitting a record carrying the
    /// proportional share of the remaining volume (the final segment takes
    /// everything left, so totals are conserved exactly).
    pub fn close_segment(&mut self, end: Timestamp, is_final: bool) -> SessionRecord {
        let mut volume = [Bytes::ZERO; APP_CATEGORY_COUNT];
        if is_final {
            volume = self.remaining;
            self.remaining = [Bytes::ZERO; APP_CATEGORY_COUNT];
        } else {
            let total_left = self.depart.saturating_sub(self.segment_start).as_secs_f64();
            let seg = end.saturating_sub(self.segment_start).as_secs_f64();
            let frac = if total_left > 0.0 {
                (seg / total_left).clamp(0.0, 1.0)
            } else {
                1.0
            };
            for (slot, rem) in volume.iter_mut().zip(self.remaining.iter_mut()) {
                // Round half-to-even: a plain `as u64` cast floors, which
                // under-credits every non-final segment by up to a byte.
                // `frac <= 1` and rounding is monotone, so `take <= rem`.
                let take = Bytes::new((rem.as_f64() * frac).round_ties_even() as u64);
                *slot = take;
                *rem -= take;
            }
        }
        let record = SessionRecord {
            user: self.user,
            ap: self.ap,
            controller: self.controller,
            connect: self.segment_start,
            disconnect: end,
            volume_by_app: volume,
        };
        self.segment_start = end;
        record
    }
}

/// All mutable state of one replay run.
///
/// Per-AP state is stored struct-of-arrays: the hot paths touch loads and
/// associations at different rates (the rebalancer and load reports scan
/// every load each round but only ever touch one or two association lists),
/// so splitting them keeps load scans on a dense `Vec<BitsPerSec>` instead
/// of striding over association `Vec` headers.
#[derive(Debug)]
pub(crate) struct RunState {
    /// Live offered load per AP, indexed by AP.
    pub loads: Vec<BitsPerSec>,
    /// Associated users per AP, indexed by AP — the backing store the
    /// zero-copy [`crate::selector::ApView`] borrows from.
    pub associated: Vec<Vec<UserId>>,
    /// Per-AP load as of the last controller report — what policies see.
    pub reported: Vec<BitsPerSec>,
    /// Live sessions keyed by placement index.
    sessions: BTreeMap<u32, Active>,
    next_session: u32,
    /// Mid-session migrations performed so far.
    pub migrations: usize,
}

impl RunState {
    pub fn new(ap_count: usize) -> Self {
        RunState {
            loads: vec![BitsPerSec::ZERO; ap_count],
            associated: vec![Vec::new(); ap_count],
            reported: vec![BitsPerSec::ZERO; ap_count],
            sessions: BTreeMap::new(),
            next_session: 0,
            migrations: 0,
        }
    }

    /// Removes and returns the session at `idx` (None if already closed,
    /// e.g. a departure event for a session the rebalancer never moves —
    /// sessions are removed exactly once, at departure).
    pub fn close(&mut self, idx: u32) -> Option<Active> {
        self.sessions.remove(&idx)
    }

    pub fn session_mut(&mut self, idx: u32) -> Option<&mut Active> {
        self.sessions.get_mut(&idx)
    }

    /// Live sessions in ascending placement-index order.
    pub fn sessions(&self) -> impl Iterator<Item = (u32, &Active)> {
        self.sessions.iter().map(|(&idx, s)| (idx, s))
    }

    /// Applies a placement: adds load and association, admits the session.
    pub fn place(&mut self, demand: &SessionDemand, ap: ApId) -> u32 {
        let idx = self.next_session;
        self.next_session += 1;
        self.place_at(demand, ap, idx);
        idx
    }

    /// [`RunState::place`] with an externally assigned session index. The
    /// sharded engine's coordinator numbers sessions globally (indices are
    /// a pure function of the cycle structure), so shard-local state must
    /// admit under the coordinator's index, not a local counter.
    pub fn place_at(&mut self, demand: &SessionDemand, ap: ApId, idx: u32) {
        let rate = demand.mean_rate();
        self.loads[ap.index()] += rate;
        self.associated[ap.index()].push(demand.user);
        self.sessions.insert(idx, Active::from_demand(demand, ap));
    }

    /// Releases a departing/migrating session's footprint on `ap`.
    pub fn release(&mut self, ap: ApId, user: UserId, rate: BitsPerSec) {
        let load = &mut self.loads[ap.index()];
        *load = load.saturating_sub(rate);
        let assoc = &mut self.associated[ap.index()];
        if let Some(pos) = assoc.iter().position(|&u| u == user) {
            assoc.swap_remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(user: u32, arrive: u64, depart: u64) -> SessionDemand {
        let mut volume_by_app = [Bytes::ZERO; APP_CATEGORY_COUNT];
        volume_by_app[0] = Bytes::megabytes(10);
        SessionDemand {
            user: UserId::new(user),
            building: s3_types::BuildingId::new(0),
            controller: ControllerId::new(0),
            arrive: Timestamp::from_secs(arrive),
            depart: Timestamp::from_secs(depart),
            volume_by_app,
        }
    }

    #[test]
    fn session_indices_are_monotone_and_stable_after_close() {
        let mut run = RunState::new(2);
        let a = run.place(&demand(1, 0, 100), ApId::new(0));
        let b = run.place(&demand(2, 0, 100), ApId::new(1));
        assert_eq!((a, b), (0, 1));
        assert!(run.close(a).is_some());
        assert!(run.close(a).is_none(), "sessions close exactly once");
        // Indices never recycle: the slab grows monotonically.
        let c = run.place(&demand(3, 10, 100), ApId::new(0));
        assert_eq!(c, 2);
        let order: Vec<u32> = run.sessions().map(|(idx, _)| idx).collect();
        assert_eq!(order, vec![1, 2], "iteration is ascending placement order");
    }

    #[test]
    fn place_and_release_are_inverse_on_load_and_association() {
        let mut run = RunState::new(1);
        let d = demand(7, 0, 1_000);
        let idx = run.place(&d, ApId::new(0));
        assert_eq!(run.associated[0], vec![UserId::new(7)]);
        assert!(run.loads[0].as_f64() > 0.0);
        let active = run.close(idx).unwrap();
        run.release(active.ap, active.user, active.rate);
        assert!(run.associated[0].is_empty());
        assert_eq!(run.loads[0], BitsPerSec::ZERO);
        assert_eq!(run.sessions().count(), 0);
    }

    #[test]
    fn final_segment_takes_all_remaining_volume() {
        let d = demand(1, 0, 100);
        let mut active = Active::from_demand(&d, ApId::new(0));
        let record = active.close_segment(Timestamp::from_secs(100), true);
        assert_eq!(record.volume_by_app, d.volume_by_app);
        assert_eq!(record.connect, d.arrive);
        assert_eq!(record.disconnect, d.depart);
    }

    #[test]
    fn partial_segment_rounds_to_nearest_not_floor() {
        // Regression for the fractional-byte truncation bug: the old
        // `(rem * frac) as u64` cast floored, so a 100-byte session split
        // at 2/3 of its span credited 66 bytes to the first segment
        // instead of the nearest 67. Conservation always held (the final
        // segment takes the remainder), but the split itself drifted low.
        let mut d = demand(1, 0, 300);
        d.volume_by_app[0] = Bytes::new(100);
        let mut active = Active::from_demand(&d, ApId::new(0));
        let first = active.close_segment(Timestamp::from_secs(200), false);
        assert_eq!(
            first.volume_by_app[0].as_u64(),
            67,
            "2/3 of 100 bytes must round to 67, not floor to 66"
        );
        let last = active.close_segment(Timestamp::from_secs(300), true);
        assert_eq!(last.volume_by_app[0].as_u64(), 33);
    }

    #[test]
    fn partial_segment_half_byte_rounds_to_even() {
        // 1999 bytes split exactly in half: 999.5 rounds half-to-even to
        // 1000 (the floor gave 999).
        let mut d = demand(1, 0, 200);
        d.volume_by_app[0] = Bytes::new(1_999);
        let mut active = Active::from_demand(&d, ApId::new(0));
        let first = active.close_segment(Timestamp::from_secs(100), false);
        assert_eq!(first.volume_by_app[0].as_u64(), 1_000);
        let last = active.close_segment(Timestamp::from_secs(100 + 100), true);
        assert_eq!(last.volume_by_app[0].as_u64(), 999);
    }

    #[test]
    fn repeated_splits_stay_near_exact_proportional_share() {
        // Nine migrations at 100-second marks of a 1000-second session
        // carrying 999 bytes. The exact proportional credit after nine
        // partial segments is 899.1 bytes; because each split re-derives
        // its fraction from the *remaining* volume, per-split rounding
        // error must not compound — and the final segment still conserves
        // the total exactly.
        let mut d = demand(1, 0, 1_000);
        d.volume_by_app[0] = Bytes::new(999);
        let mut active = Active::from_demand(&d, ApId::new(0));
        let mut credited = 0u64;
        for k in 1..=9u64 {
            let rec = active.close_segment(Timestamp::from_secs(k * 100), false);
            credited += rec.volume_by_app[0].as_u64();
        }
        assert!(
            (credited as f64 - 899.1).abs() <= 1.0,
            "nine nearest-rounded splits credited {credited} bytes, \
             expected within 1 of 899.1"
        );
        let last = active.close_segment(Timestamp::from_secs(1_000), true);
        assert_eq!(credited + last.volume_by_app[0].as_u64(), 999);
    }

    #[test]
    fn place_at_admits_under_the_given_index() {
        let mut run = RunState::new(2);
        run.place_at(&demand(5, 0, 100), ApId::new(1), 42);
        let order: Vec<u32> = run.sessions().map(|(idx, _)| idx).collect();
        assert_eq!(order, vec![42]);
        assert_eq!(run.associated[1], vec![UserId::new(5)]);
        assert!(run.session_mut(42).is_some());
    }

    #[test]
    fn partial_segments_conserve_volume() {
        let d = demand(1, 0, 100);
        let mut active = Active::from_demand(&d, ApId::new(0));
        let first = active.close_segment(Timestamp::from_secs(50), false);
        active.ap = ApId::new(1);
        let last = active.close_segment(Timestamp::from_secs(100), true);
        let total: u64 = first
            .volume_by_app
            .iter()
            .chain(last.volume_by_app.iter())
            .map(|v| v.as_u64())
            .sum();
        assert_eq!(total, d.total_volume().as_u64());
        assert_eq!(first.disconnect, last.connect);
    }
}
