//! The event-driven trace-replay simulation engine.
//!
//! Replays a time-sorted [`s3_trace::SessionDemand`] stream against a
//! [`Topology`] under an [`ApSelector`] policy. The core is one unified
//! loop draining a time-ordered event queue over incrementally maintained
//! per-AP state:
//!
//! 1. **Departures** scheduled before the next batch head release load
//!    and association state;
//! 2. **rebalance ticks** and **load-report refreshes** fire lazily at
//!    epoch boundaries crossed by a batch head;
//! 3. an **arrival batch** — everything inside one batching window —
//!    is grouped per controller and handed to the policy as a batch (a
//!    class start is a burst of simultaneous arrivals — precisely the
//!    case where the S³ clique logic matters).
//!
//! Demands are pulled from a [`DemandSource`]: an in-memory slice
//! ([`SliceSource`]) or a streaming reader ([`StreamSource`]) that lets
//! [`SimEngine::run_streamed`] replay traces larger than RAM with memory
//! bounded by concurrent sessions. Policies see candidate APs through
//! borrowed zero-copy [`crate::selector::ApView`]s into the engine's live
//! state (see `docs/ENGINE.md` for the full event model).
//!
//! Load accounting uses each session's true mean rate — the simulator's
//! equivalent of the paper's "served traffic amount" field. Policies do
//! *not* see that live load: they see per-AP loads as of the last counter
//! report ([`SimConfig::load_report_interval`]), which is what makes the
//! incumbent least-load controller herd arrival bursts.
//!
//! The engine can also run an **online rebalancer**
//! ([`SimConfig::rebalance`]) that periodically migrates sessions from the
//! most- to the least-loaded AP — the "other category" of load balancing
//! the paper contrasts with: excellent balance, at the price of counted
//! connection disruptions. A migrated session is split into per-AP
//! [`s3_trace::SessionRecord`] segments with its volume
//! divided proportionally.

mod events;
mod runner;
mod shard;
mod source;
mod state;
pub mod tracing;

pub use runner::RunTotals;
pub use source::{CollectSink, DemandSource, EngineError, RecordSink, SliceSource, StreamSource};
pub use tracing::{
    check_log, trace_header, CheckReport, InvariantClass, TraceEvent, TraceSink, Violation,
};

use s3_obs::{Desc, Stability, Unit};
use s3_trace::{SessionDemand, SessionRecord};
use s3_types::TimeDelta;

use crate::selector::ApSelector;
use crate::topology::Topology;

static UNSORTED_RECOVERIES: Desc = Desc {
    name: "wlan.engine.unsorted_recoveries",
    help: "Replay inputs that arrived out of order and were re-sorted",
    unit: Unit::Count,
    stability: Stability::Stable,
};

/// Online-rebalancer settings (the migrating baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceConfig {
    /// How often the rebalancer runs.
    pub interval: TimeDelta,
    /// Maximum migrations per controller per round.
    pub max_moves_per_round: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            interval: TimeDelta::minutes(5),
            max_moves_per_round: 8,
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Arrivals within this window of the batch head are presented to the
    /// policy together (per controller). Zero disables batching.
    pub batch_window: TimeDelta,
    /// How often APs report traffic counters to the controller. Policies
    /// see the load *as of the last report* — the classic SNMP-style
    /// polling lag that makes pure least-load controllers herd bursts of
    /// arrivals onto one AP. Associations (who is connected where) are
    /// always live: the controller mediates them itself. Zero disables the
    /// lag (policies see live load — an oracle baseline).
    pub load_report_interval: TimeDelta,
    /// Optional online rebalancer: periodically migrates sessions off the
    /// most-loaded AP. `None` (the default) keeps every session where the
    /// policy placed it — the paper's "user-friendly" regime.
    pub rebalance: Option<RebalanceConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            batch_window: TimeDelta::secs(30),
            load_report_interval: TimeDelta::minutes(5),
            rebalance: None,
        }
    }
}

/// Output of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Session records, sorted by connect time. Without rebalancing,
    /// exactly one record per demand; with it, migrated sessions appear as
    /// several per-AP segments whose volumes sum to the demand's.
    pub records: Vec<SessionRecord>,
    /// Demands that could not be placed (no candidate AP — topology
    /// mismatch; normally zero).
    pub rejected: usize,
    /// Mid-session migrations performed by the rebalancer (each one is a
    /// user-visible connection disruption).
    pub migrations: usize,
}

/// The replay engine.
#[derive(Debug)]
pub struct SimEngine {
    pub(crate) topology: Topology,
    pub(crate) config: SimConfig,
}

impl SimEngine {
    /// Creates an engine over `topology`.
    pub fn new(topology: Topology, config: SimConfig) -> Self {
        SimEngine { topology, config }
    }

    /// The engine's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// [`SimEngine::run`] for demand streams that may be out of arrival
    /// order — e.g. recovered leniently from a clock-skewed or
    /// fault-injected log. When a resort is needed the demands are copied,
    /// sorted by `(arrive, user)` (the canonical deterministic order) and
    /// the recovery is counted in `wlan.engine.unsorted_recoveries`;
    /// already-sorted input delegates directly with no copy.
    pub fn run_unsorted(
        &self,
        demands: &[SessionDemand],
        selector: &mut dyn ApSelector,
    ) -> SimResult {
        if demands.windows(2).all(|w| w[0].arrive <= w[1].arrive) {
            return self.run(demands, selector);
        }
        s3_obs::global().counter(&UNSORTED_RECOVERIES).inc();
        let mut sorted = demands.to_vec();
        sorted.sort_by_key(|d| (d.arrive, d.user));
        self.run(&sorted, selector)
    }

    /// Replays `demands` (must be sorted by arrival time) under `selector`.
    /// Use [`SimEngine::run_unsorted`] for streams of unknown order and
    /// [`SimEngine::run_streamed`] for traces that do not fit in memory.
    ///
    /// # Panics
    ///
    /// Panics if `demands` is not sorted by arrival time, or if the
    /// selector returns an out-of-range candidate index.
    pub fn run(&self, demands: &[SessionDemand], selector: &mut dyn ApSelector) -> SimResult {
        assert!(
            demands.windows(2).all(|w| w[0].arrive <= w[1].arrive),
            "demands must be sorted by arrival time"
        );
        let mut source = SliceSource::new(demands);
        self.run_source(&mut source, selector)
            .expect("slice replay is infallible")
    }

    /// Replays demands pulled from any [`DemandSource`], collecting the
    /// result in memory.
    ///
    /// # Errors
    ///
    /// [`EngineError::Source`] on reader failures and
    /// [`EngineError::Unsorted`] if the source yields demands out of
    /// arrival order.
    pub fn run_source(
        &self,
        source: &mut dyn DemandSource,
        selector: &mut dyn ApSelector,
    ) -> Result<SimResult, EngineError> {
        let mut sink = CollectSink::with_capacity(source.len_hint().unwrap_or(0));
        let totals = self.run_events(source, selector, &mut sink)?;
        let mut records = sink.records;
        // Migrations close segments out of connect order; restore a stable
        // order for downstream consumers.
        records.sort_by_key(|r| (r.connect, r.user, r.ap));
        Ok(SimResult {
            records,
            rejected: totals.rejected,
            migrations: totals.migrations,
        })
    }

    /// Fully streaming replay: demands pulled from `source`, records
    /// pushed to `sink` as soon as each batch is placed. Peak memory is
    /// bounded by the live session table and the widest arrival batch —
    /// not the trace length — and the emitted record stream is globally
    /// sorted by `(connect, user, ap)`, byte-identical to what
    /// [`SimEngine::run`] would produce for the same demands.
    ///
    /// # Errors
    ///
    /// [`EngineError::StreamedRebalance`] if the engine is configured with
    /// the online rebalancer (its mid-session segment splits need the full
    /// record log); otherwise as [`SimEngine::run_source`], plus
    /// [`EngineError::Sink`] on writer failures.
    pub fn run_streamed(
        &self,
        source: &mut dyn DemandSource,
        selector: &mut dyn ApSelector,
        sink: &mut dyn RecordSink,
    ) -> Result<RunTotals, EngineError> {
        if self.config.rebalance.is_some() {
            return Err(EngineError::StreamedRebalance);
        }
        self.run_events(source, selector, sink)
    }

    /// Replays demands while `sink` observes every engine decision in
    /// exact processing order — the `s3wlan trace` entry point, normally
    /// run with a [`tracing::TraceSink`] writing an `s3-dtrace/1` log
    /// (see `docs/TRACING.md`).
    ///
    /// Unlike [`SimEngine::run_streamed`] the online rebalancer is
    /// permitted: its migrations become `move` records, and trace sinks
    /// discard session records, so the global record sort the streaming
    /// path cannot afford is never needed here.
    ///
    /// # Errors
    ///
    /// As [`SimEngine::run_source`], plus [`EngineError::Sink`] when the
    /// sink's writer fails.
    pub fn run_traced(
        &self,
        source: &mut dyn DemandSource,
        selector: &mut dyn ApSelector,
        sink: &mut dyn RecordSink,
    ) -> Result<RunTotals, EngineError> {
        self.run_events(source, selector, sink)
    }

    /// Routes a run to the unified loop (one selector) or the sharded
    /// engine (one shard per selector). A single shard has nothing to
    /// merge, so it delegates straight to [`SimEngine::run_events`] —
    /// `--shards 1` *is* the unified engine, not a one-worker pipeline.
    fn run_events_dispatch(
        &self,
        source: &mut (dyn DemandSource + Send),
        selectors: &mut [Box<dyn ApSelector + Send>],
        sink: &mut dyn RecordSink,
    ) -> Result<RunTotals, EngineError> {
        match selectors {
            [] => panic!("at least one selector required"),
            [only] => self.run_events(source, &mut **only, sink),
            _ => self.run_events_sharded(source, selectors, sink),
        }
    }

    /// [`SimEngine::run_source`] over controller-domain shards: one
    /// worker per selector, each owning a contiguous slice of the
    /// controller space, synchronized at per-batch epoch barriers. The
    /// result is byte-identical to the unified engine for any selector
    /// whose decisions are a pure function of its controller group (every
    /// shipped policy except `random`, which draws from one sequential
    /// RNG stream). See `docs/ENGINE.md` for the sharding model.
    ///
    /// Each shard needs its own selector value because selectors are
    /// stateful; build N equivalent instances (for trained policies,
    /// train once and clone the model).
    ///
    /// # Errors
    ///
    /// As [`SimEngine::run_source`].
    pub fn run_sharded_source(
        &self,
        source: &mut (dyn DemandSource + Send),
        selectors: &mut [Box<dyn ApSelector + Send>],
    ) -> Result<SimResult, EngineError> {
        let mut sink = CollectSink::with_capacity(source.len_hint().unwrap_or(0));
        let totals = self.run_events_dispatch(source, selectors, &mut sink)?;
        let mut records = sink.records;
        records.sort_by_key(|r| (r.connect, r.user, r.ap));
        Ok(SimResult {
            records,
            rejected: totals.rejected,
            migrations: totals.migrations,
        })
    }

    /// [`SimEngine::run_streamed`] over controller-domain shards; the
    /// emitted record stream is byte-identical to the unified streamed
    /// run (and to the in-memory paths).
    ///
    /// # Errors
    ///
    /// As [`SimEngine::run_streamed`] (in particular
    /// [`EngineError::StreamedRebalance`] with the rebalancer on).
    pub fn run_sharded_streamed(
        &self,
        source: &mut (dyn DemandSource + Send),
        selectors: &mut [Box<dyn ApSelector + Send>],
        sink: &mut dyn RecordSink,
    ) -> Result<RunTotals, EngineError> {
        if self.config.rebalance.is_some() {
            return Err(EngineError::StreamedRebalance);
        }
        self.run_events_dispatch(source, selectors, sink)
    }

    /// [`SimEngine::run_traced`] over controller-domain shards: shard
    /// outputs are merged in the canonical cycle order before the sink
    /// observes them, so `s3-dtrace/1` bodies are byte-identical across
    /// shard counts.
    ///
    /// # Errors
    ///
    /// As [`SimEngine::run_traced`].
    pub fn run_sharded_traced(
        &self,
        source: &mut (dyn DemandSource + Send),
        selectors: &mut [Box<dyn ApSelector + Send>],
        sink: &mut dyn RecordSink,
    ) -> Result<RunTotals, EngineError> {
        self.run_events_dispatch(source, selectors, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::{ApView, ArrivalUser, LeastLoadedFirst, SelectionContext, StrongestRssi};
    use crate::topology::Topology;
    use s3_trace::generator::{CampusConfig, CampusGenerator};
    use s3_types::{ApId, AppCategory, BuildingId, Bytes, ControllerId, Timestamp, UserId};
    use std::io::BufReader;

    fn demand(user: u32, building: u32, arrive: u64, depart: u64, mb: u64) -> SessionDemand {
        let mut volume_by_app = [Bytes::ZERO; 6];
        volume_by_app[AppCategory::WebBrowsing.index()] = Bytes::megabytes(mb);
        SessionDemand {
            user: UserId::new(user),
            building: BuildingId::new(building),
            controller: ControllerId::new(building),
            arrive: Timestamp::from_secs(arrive),
            depart: Timestamp::from_secs(depart),
            volume_by_app,
        }
    }

    fn tiny_engine() -> SimEngine {
        let topology = Topology::from_campus(&CampusConfig::tiny());
        SimEngine::new(topology, SimConfig::default())
    }

    #[test]
    fn every_demand_is_placed() {
        let campus = CampusGenerator::new(CampusConfig::tiny(), 3).generate();
        let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
        let result = engine.run(&campus.demands, &mut LeastLoadedFirst::new());
        assert_eq!(result.records.len(), campus.demands.len());
        assert_eq!(result.rejected, 0);
        assert_eq!(result.migrations, 0);
        // Every record's AP belongs to the record's controller.
        for r in &result.records {
            assert!(engine
                .topology()
                .aps_of_controller(r.controller)
                .contains(&r.ap));
        }
    }

    #[test]
    fn llf_spreads_simultaneous_arrivals() {
        let engine = tiny_engine();
        // Three users arrive together in building 0 (3 APs).
        let demands = vec![
            demand(1, 0, 100, 5_000, 10),
            demand(2, 0, 105, 5_000, 10),
            demand(3, 0, 110, 5_000, 10),
        ];
        let result = engine.run(&demands, &mut LeastLoadedFirst::new());
        let aps: std::collections::HashSet<ApId> = result.records.iter().map(|r| r.ap).collect();
        assert_eq!(
            aps.len(),
            3,
            "LLF must use all three APs: {:?}",
            result.records
        );
    }

    #[test]
    fn departures_release_load() {
        let engine = tiny_engine();
        // User 1 occupies an AP then leaves; user 2 arrives after and must
        // see an empty domain (LLF picks the lowest id again).
        let demands = vec![demand(1, 0, 100, 200, 100), demand(2, 0, 700, 800, 100)];
        let result = engine.run(&demands, &mut LeastLoadedFirst::new());
        assert_eq!(result.records[0].ap, result.records[1].ap);
    }

    #[test]
    fn load_accumulates_within_sessions() {
        let engine = tiny_engine();
        // Users overlap; the user-count tie-break sees the first user's
        // association immediately, so the second lands elsewhere.
        let demands = vec![
            demand(1, 0, 100, 10_000, 500),
            demand(2, 0, 200, 10_000, 500),
        ];
        let result = engine.run(&demands, &mut LeastLoadedFirst::new());
        assert_ne!(result.records[0].ap, result.records[1].ap);
    }

    #[test]
    fn controllers_are_isolated() {
        let engine = tiny_engine();
        let demands = vec![demand(1, 0, 100, 200, 1), demand(2, 1, 100, 200, 1)];
        let result = engine.run(&demands, &mut LeastLoadedFirst::new());
        assert_eq!(result.records[0].controller, ControllerId::new(0));
        assert_eq!(result.records[1].controller, ControllerId::new(1));
        assert_ne!(result.records[0].ap, result.records[1].ap);
    }

    #[test]
    fn strongest_rssi_is_stable_per_session() {
        let engine = tiny_engine();
        let demands = vec![demand(7, 0, 1_000, 2_000, 1)];
        let a = engine.run(&demands, &mut StrongestRssi::new());
        let b = engine.run(&demands, &mut StrongestRssi::new());
        assert_eq!(
            a.records[0].ap, b.records[0].ap,
            "radio model is deterministic"
        );
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_demands_panic() {
        let engine = tiny_engine();
        let demands = vec![demand(1, 0, 500, 600, 1), demand(2, 0, 100, 200, 1)];
        let _ = engine.run(&demands, &mut LeastLoadedFirst::new());
    }

    #[test]
    fn run_unsorted_delegation_and_recovery_counter() {
        // Satellite coverage for run_unsorted through the DemandSource
        // path: sorted input takes the no-copy fast path (no recovery
        // counted); skewed input is re-sorted once and counted. Both
        // checks live in one test so the process-wide counter delta is
        // race-free under the parallel test runner.
        let recoveries = s3_obs::global().counter(&UNSORTED_RECOVERIES);
        let engine = tiny_engine();
        let sorted = vec![demand(2, 0, 100, 200, 1), demand(1, 0, 500, 600, 1)];

        let before = recoveries.get();
        let a = engine.run_unsorted(&sorted, &mut LeastLoadedFirst::new());
        assert_eq!(
            recoveries.get(),
            before,
            "sorted input must take the fast path without a recovery"
        );

        let shuffled = vec![sorted[1].clone(), sorted[0].clone()];
        let before = recoveries.get();
        let b = engine.run_unsorted(&shuffled, &mut LeastLoadedFirst::new());
        assert_eq!(recoveries.get(), before + 1, "skew must count one recovery");
        assert_eq!(a, b, "recovery must reproduce the sorted replay exactly");
    }

    /// A selector that records how many users it saw per batch call.
    struct Recorder {
        batch_sizes: Vec<usize>,
    }
    impl ApSelector for Recorder {
        fn name(&self) -> &str {
            "recorder"
        }
        fn select(&mut self, _ctx: &SelectionContext<'_>) -> usize {
            0
        }
        fn select_batch(&mut self, users: &[ArrivalUser], candidates: &[ApView<'_>]) -> Vec<usize> {
            self.batch_sizes.push(users.len());
            vec![0; users.len().min(candidates.len().max(1))]
        }
    }

    #[test]
    fn batch_window_groups_arrivals() {
        let engine = tiny_engine();
        let demands = vec![
            demand(1, 0, 100, 900, 1),
            demand(2, 0, 110, 900, 1), // within 30 s of head
            demand(3, 0, 500, 900, 1), // separate batch
        ];
        let mut recorder = Recorder {
            batch_sizes: vec![],
        };
        let _ = engine.run(&demands, &mut recorder);
        assert_eq!(recorder.batch_sizes, vec![2, 1]);
    }

    #[test]
    fn demand_at_exact_window_boundary_joins_the_batch() {
        // Regression pin for the `<=` convention: an arrival at exactly
        // `batch_head + batch_window` belongs to the batch; one second
        // later starts a new one. The event-driven queue must not silently
        // flip this boundary.
        let engine = tiny_engine(); // batch_window = 30 s
        let demands = vec![
            demand(1, 0, 100, 900, 1),
            demand(2, 0, 130, 900, 1), // exactly head + window: included
            demand(3, 0, 131, 900, 1), // one past: a new batch
        ];
        let mut recorder = Recorder {
            batch_sizes: vec![],
        };
        let _ = engine.run(&demands, &mut recorder);
        assert_eq!(recorder.batch_sizes, vec![2, 1]);
    }

    #[test]
    fn zero_batch_window_processes_one_by_one() {
        let engine = SimEngine::new(
            Topology::from_campus(&CampusConfig::tiny()),
            SimConfig {
                batch_window: TimeDelta::ZERO,
                ..SimConfig::default()
            },
        );
        let demands = vec![demand(1, 0, 100, 900, 1), demand(2, 0, 100, 900, 1)];
        let result = engine.run(&demands, &mut LeastLoadedFirst::new());
        // Same-instant arrivals still both placed.
        assert_eq!(result.records.len(), 2);
    }

    #[test]
    fn stream_source_replay_equals_slice_replay() {
        // The streaming adapter over DemandReader must reproduce the
        // in-memory path exactly, records included.
        let campus = CampusGenerator::new(CampusConfig::tiny(), 11).generate();
        let mut demands = campus.demands.clone();
        demands.sort_by_key(|d| (d.arrive, d.user));
        let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
        let in_memory = engine.run(&demands, &mut LeastLoadedFirst::new());

        let mut csv = Vec::new();
        s3_trace::csv::write_demands(&mut csv, &demands).unwrap();
        let reader = s3_trace::ingest::DemandReader::new(
            BufReader::new(csv.as_slice()),
            s3_trace::ingest::IngestMode::Strict,
        )
        .unwrap()
        .without_publish();
        let mut source = StreamSource::new(reader);
        let streamed = engine
            .run_source(&mut source, &mut LeastLoadedFirst::new())
            .unwrap();
        assert_eq!(streamed, in_memory);
    }

    #[test]
    fn run_streamed_sink_stream_is_globally_sorted_and_complete() {
        let campus = CampusGenerator::new(CampusConfig::tiny(), 12).generate();
        let mut demands = campus.demands.clone();
        demands.sort_by_key(|d| (d.arrive, d.user));
        let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
        let in_memory = engine.run(&demands, &mut LeastLoadedFirst::new());

        let mut source = SliceSource::new(&demands);
        let mut sink = CollectSink::default();
        let totals = engine
            .run_streamed(&mut source, &mut LeastLoadedFirst::new(), &mut sink)
            .unwrap();
        // Emission order IS the final order: no post-hoc sort allowed in a
        // streaming pipeline.
        assert_eq!(sink.records, in_memory.records);
        assert_eq!(totals.placed, demands.len());
        assert_eq!(totals.records, in_memory.records.len());
        assert_eq!(totals.rejected, 0);
        assert_eq!(totals.migrations, 0);
    }

    #[test]
    fn run_streamed_rejects_the_rebalancer() {
        let engine = rebalancing_engine();
        let demands = stacked_demands();
        let mut source = SliceSource::new(&demands);
        let mut sink = CollectSink::default();
        let err = engine
            .run_streamed(&mut source, &mut Stacker, &mut sink)
            .unwrap_err();
        assert!(matches!(err, EngineError::StreamedRebalance), "{err}");
    }

    #[test]
    fn unsorted_stream_source_is_an_error_not_a_panic() {
        // The streaming engine cannot pre-scan, so skew surfaces as a
        // typed error naming both timestamps.
        let engine = tiny_engine();
        let demands = vec![demand(1, 0, 500, 600, 1), demand(2, 0, 100, 200, 1)];
        let mut source = SliceSource::new(&demands);
        let err = engine
            .run_source(&mut source, &mut LeastLoadedFirst::new())
            .unwrap_err();
        match err {
            EngineError::Unsorted { prev, next } => {
                assert_eq!((prev, next), (500, 100));
            }
            other => panic!("expected Unsorted, got {other}"),
        }
    }

    fn rebalancing_engine() -> SimEngine {
        SimEngine::new(
            Topology::from_campus(&CampusConfig::tiny()),
            SimConfig {
                rebalance: Some(RebalanceConfig {
                    interval: TimeDelta::minutes(5),
                    max_moves_per_round: 4,
                }),
                ..SimConfig::default()
            },
        )
    }

    /// A pathological policy that stacks every arrival on candidate 0 —
    /// the worst case the rebalancer exists to clean up.
    struct Stacker;
    impl ApSelector for Stacker {
        fn name(&self) -> &str {
            "stacker"
        }
        fn select(&mut self, _ctx: &SelectionContext<'_>) -> usize {
            0
        }
    }

    /// Six heavy sessions that the stacker piles on one AP, plus a later
    /// arrival that triggers a rebalance round.
    fn stacked_demands() -> Vec<SessionDemand> {
        let mut demands: Vec<SessionDemand> = (0..6)
            .map(|i| demand(i, 0, 100 + i as u64, 50_000, 200))
            .collect();
        demands.push(demand(99, 0, 10_000, 11_000, 1));
        demands
    }

    #[test]
    fn rebalancer_migrates_and_conserves_volume() {
        let engine = rebalancing_engine();
        let demands = stacked_demands();
        let result = engine.run(&demands, &mut Stacker);
        assert!(result.migrations > 0, "rebalancer must move something");
        let served: u64 = result
            .records
            .iter()
            .map(|r| r.total_volume().as_u64())
            .sum();
        let demanded: u64 = demands.iter().map(|d| d.total_volume().as_u64()).sum();
        assert_eq!(served, demanded, "migration must conserve traffic");
    }

    #[test]
    fn migrated_sessions_split_into_contiguous_segments() {
        let engine = rebalancing_engine();
        let demands = stacked_demands();
        let result = engine.run(&demands, &mut Stacker);
        for d in &demands {
            let mut segments: Vec<&SessionRecord> =
                result.records.iter().filter(|r| r.user == d.user).collect();
            segments.sort_by_key(|r| r.connect);
            assert_eq!(segments.first().unwrap().connect, d.arrive);
            assert_eq!(segments.last().unwrap().disconnect, d.depart);
            for w in segments.windows(2) {
                assert_eq!(
                    w[0].disconnect, w[1].connect,
                    "segments must tile the session"
                );
                assert_ne!(w[0].ap, w[1].ap, "a migration changes the AP");
            }
            let vol: u64 = segments.iter().map(|r| r.total_volume().as_u64()).sum();
            assert_eq!(vol, d.total_volume().as_u64());
        }
    }

    #[test]
    fn no_rebalance_config_means_no_migrations() {
        let engine = tiny_engine();
        let demands = stacked_demands();
        let result = engine.run(&demands, &mut Stacker);
        assert_eq!(result.migrations, 0);
        assert_eq!(result.records.len(), demands.len());
    }

    #[test]
    fn rebalancer_improves_balance_of_a_stacked_domain() {
        let demands = stacked_demands();
        let plain = tiny_engine().run(&demands, &mut Stacker);
        let rebalanced = rebalancing_engine().run(&demands, &mut Stacker);
        let spread = |records: &[SessionRecord]| {
            records
                .iter()
                .map(|r| r.ap)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert!(
            spread(&rebalanced.records) > spread(&plain.records),
            "rebalancing must spread sessions over more APs"
        );
    }

    /// Shard-invariance suite: the controller-domain sharded engine must
    /// reproduce the unified engine byte for byte — results, streamed
    /// record order and `s3-dtrace/1` log bodies — at every shard count,
    /// including more shards than controllers (empty shards).
    mod sharded {
        use super::*;
        use s3_trace::decision_log::config_hash;

        fn shard_selectors(n: usize) -> Vec<Box<dyn ApSelector + Send>> {
            (0..n)
                .map(|_| Box::new(LeastLoadedFirst::new()) as Box<dyn ApSelector + Send>)
                .collect()
        }

        fn run_sharded(
            engine: &SimEngine,
            demands: &[SessionDemand],
            mut selectors: Vec<Box<dyn ApSelector + Send>>,
        ) -> SimResult {
            let mut source = SliceSource::new(demands);
            engine
                .run_sharded_source(&mut source, &mut selectors)
                .unwrap()
        }

        /// A generated four-controller campus, sorted for replay.
        fn four_controller_fixture() -> (CampusConfig, Vec<SessionDemand>) {
            let config = CampusConfig {
                buildings: 4,
                aps_per_building: 3,
                users: 60,
                days: 2,
                ..CampusConfig::campus()
            };
            let campus = CampusGenerator::new(config, 21).generate();
            let mut demands = campus.demands;
            demands.sort_by_key(|d| (d.arrive, d.user));
            (campus.config, demands)
        }

        /// The `s3-dtrace/1` log body (header line stripped) of a traced
        /// run at `shards`; `shards == 1` is the unified engine.
        fn traced_body(engine: &SimEngine, demands: &[SessionDemand], shards: usize) -> String {
            let header = trace_header(
                engine.topology(),
                7,
                1,
                shards as u64,
                "llf",
                config_hash("shard-tests"),
            );
            let mut sink = TraceSink::new(Vec::new(), &header).unwrap();
            let mut source = SliceSource::new(demands);
            if shards == 1 {
                engine
                    .run_traced(&mut source, &mut LeastLoadedFirst::new(), &mut sink)
                    .unwrap();
            } else {
                let mut selectors = shard_selectors(shards);
                engine
                    .run_sharded_traced(&mut source, &mut selectors, &mut sink)
                    .unwrap();
            }
            let log = String::from_utf8(sink.finish().unwrap()).unwrap();
            log.split_once('\n').unwrap().1.to_string()
        }

        #[test]
        fn replay_matches_unified_at_every_shard_count() {
            let (config, demands) = four_controller_fixture();
            let engine = SimEngine::new(Topology::from_campus(&config), SimConfig::default());
            let unified = engine.run(&demands, &mut LeastLoadedFirst::new());
            // 8 > 4 controllers: the last four shards own nothing and must
            // stay byte-transparent.
            for shards in [1, 2, 3, 4, 8] {
                let sharded = run_sharded(&engine, &demands, shard_selectors(shards));
                assert_eq!(sharded, unified, "shards={shards}");
            }
        }

        #[test]
        fn rebalancing_replay_matches_unified() {
            let engine = rebalancing_engine();
            let demands = stacked_demands();
            let unified = engine.run(&demands, &mut Stacker);
            assert!(
                unified.migrations > 0,
                "fixture must exercise the rebalancer"
            );
            for shards in [2, 4] {
                let selectors: Vec<Box<dyn ApSelector + Send>> = (0..shards)
                    .map(|_| Box::new(Stacker) as Box<dyn ApSelector + Send>)
                    .collect();
                let sharded = run_sharded(&engine, &demands, selectors);
                assert_eq!(sharded, unified, "shards={shards}");
            }
        }

        #[test]
        fn streamed_emission_order_matches_unified() {
            let (config, demands) = four_controller_fixture();
            let engine = SimEngine::new(Topology::from_campus(&config), SimConfig::default());
            let unified = engine.run(&demands, &mut LeastLoadedFirst::new());

            let mut selectors = shard_selectors(3);
            let mut source = SliceSource::new(&demands);
            let mut sink = CollectSink::default();
            let totals = engine
                .run_sharded_streamed(&mut source, &mut selectors, &mut sink)
                .unwrap();
            // Emission order IS the final order, exactly as in the unified
            // streaming contract.
            assert_eq!(sink.records, unified.records);
            assert_eq!(totals.records, unified.records.len());
            assert_eq!(totals.placed, demands.len());
        }

        #[test]
        fn trace_bodies_are_byte_identical_across_shard_counts() {
            // Rebalancer on, so tick/move/report records are all covered.
            let (config, demands) = four_controller_fixture();
            let engine = SimEngine::new(
                Topology::from_campus(&config),
                SimConfig {
                    rebalance: Some(RebalanceConfig::default()),
                    ..SimConfig::default()
                },
            );
            let unified = traced_body(&engine, &demands, 1);
            for shards in [2, 4, 8] {
                assert_eq!(
                    traced_body(&engine, &demands, shards),
                    unified,
                    "shards={shards}"
                );
            }
        }

        #[test]
        fn epoch_barrier_edge_cases_match_unified() {
            // The three barrier edge cases of the sharding contract:
            // (a) a session arriving and departing inside a single epoch,
            // (b) arrivals/departures exactly on a rebalance barrier
            //     timestamp (300 s epochs here),
            // (c) more shards than controllers, so some shards run every
            //     cycle with nothing to do.
            let engine = rebalancing_engine();
            let demands = vec![
                demand(1, 0, 100, 110, 50), // in and out within one epoch
                demand(2, 0, 300, 600, 80), // arrives on a barrier, departs on the next
                demand(3, 1, 300, 450, 80), // same barrier, other controller
                demand(4, 1, 550, 600, 10), // departs exactly on a barrier
            ];
            let unified = engine.run(&demands, &mut LeastLoadedFirst::new());
            for shards in [2, 8] {
                let sharded = run_sharded(&engine, &demands, shard_selectors(shards));
                assert_eq!(sharded, unified, "shards={shards}");
            }
            // The decision logs agree record for record as well.
            let body = traced_body(&engine, &demands, 1);
            for shards in [2, 8] {
                assert_eq!(
                    traced_body(&engine, &demands, shards),
                    body,
                    "shards={shards}"
                );
            }
        }

        #[test]
        fn sixteen_shards_above_controller_count_match_unified() {
            // `--shards 16` on a four-controller campus: twelve shards
            // are structurally empty and are never spawned (the plan
            // packs non-empty shards into a prefix), yet results and
            // decision logs must stay byte-identical to the unified run.
            let (config, demands) = four_controller_fixture();
            let engine = SimEngine::new(Topology::from_campus(&config), SimConfig::default());
            let unified = engine.run(&demands, &mut LeastLoadedFirst::new());
            let sharded = run_sharded(&engine, &demands, shard_selectors(16));
            assert_eq!(sharded, unified);
            assert_eq!(
                traced_body(&engine, &demands, 16),
                traced_body(&engine, &demands, 1)
            );
        }

        #[test]
        fn maximally_uneven_chunks_match_unified() {
            // Five controllers over four shards: the plan front-loads
            // the extras (chunks 2,1,1,1), so one shard owns twice the
            // controllers of the rest — the most uneven split the
            // contiguous plan produces. Three shards gives 2,2,1.
            let config = CampusConfig {
                buildings: 5,
                aps_per_building: 3,
                users: 60,
                days: 2,
                ..CampusConfig::campus()
            };
            let campus = CampusGenerator::new(config, 21).generate();
            let mut demands = campus.demands;
            demands.sort_by_key(|d| (d.arrive, d.user));
            let engine =
                SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
            let unified = engine.run(&demands, &mut LeastLoadedFirst::new());
            let body = traced_body(&engine, &demands, 1);
            for shards in [3, 4] {
                let sharded = run_sharded(&engine, &demands, shard_selectors(shards));
                assert_eq!(sharded, unified, "shards={shards}");
                assert_eq!(
                    traced_body(&engine, &demands, shards),
                    body,
                    "shards={shards}"
                );
            }
        }

        #[test]
        fn single_epoch_trace_matches_unified() {
            // Every arrival inside one batch window: the whole run is a
            // single cycle, exercising the partial-chunk flush (one
            // cycle ≪ the chunk size) and the final drain back to back.
            let engine = tiny_engine();
            let demands = vec![
                demand(1, 0, 100, 400, 50),
                demand(2, 1, 105, 300, 40),
                demand(3, 0, 110, 500, 30),
            ];
            let unified = engine.run(&demands, &mut LeastLoadedFirst::new());
            assert_eq!(unified.records.len(), 3);
            let body = traced_body(&engine, &demands, 1);
            for shards in [2, 4] {
                let sharded = run_sharded(&engine, &demands, shard_selectors(shards));
                assert_eq!(sharded, unified, "shards={shards}");
                assert_eq!(
                    traced_body(&engine, &demands, shards),
                    body,
                    "shards={shards}"
                );
            }
        }

        #[test]
        fn sharded_trace_passes_the_invariant_checker() {
            let (config, demands) = four_controller_fixture();
            let engine = SimEngine::new(
                Topology::from_campus(&config),
                SimConfig {
                    rebalance: Some(RebalanceConfig::default()),
                    ..SimConfig::default()
                },
            );
            let header = trace_header(
                engine.topology(),
                7,
                1,
                4,
                "llf",
                config_hash("shard-tests"),
            );
            let mut sink = TraceSink::new(Vec::new(), &header).unwrap();
            let mut source = SliceSource::new(&demands);
            let mut selectors = shard_selectors(4);
            engine
                .run_sharded_traced(&mut source, &mut selectors, &mut sink)
                .unwrap();
            let log = sink.finish().unwrap();
            let report = check_log(BufReader::new(log.as_slice())).unwrap();
            assert!(
                report.is_clean(),
                "sharded trace violates invariants: {:?}",
                report.violations
            );
        }

        #[test]
        fn corrupt_topology_is_an_error_not_a_panic() {
            use crate::topology::{default_ap_capacity, ApInfo};
            // Sparse AP ids (0 missing) make `Topology::ap` fail for every
            // listed id — the malformed input shape behind the former
            // `expect("ap exists")` panic. Both engines must surface it as
            // a structured `MissingAp` error.
            let ap = |id: u32, position: (f64, f64)| ApInfo {
                id: ApId::new(id),
                building: BuildingId::new(0),
                controller: ControllerId::new(0),
                capacity: default_ap_capacity(),
                position,
            };
            let engine = SimEngine::new(
                Topology::from_aps(vec![ap(1, (1.0, 1.0)), ap(2, (2.0, 2.0))]),
                SimConfig::default(),
            );
            let demands = vec![demand(1, 0, 100, 200, 1)];

            let mut source = SliceSource::new(&demands);
            let err = engine
                .run_source(&mut source, &mut LeastLoadedFirst::new())
                .unwrap_err();
            assert!(matches!(err, EngineError::MissingAp { .. }), "{err}");

            let mut source = SliceSource::new(&demands);
            let mut selectors = shard_selectors(2);
            let err = engine
                .run_sharded_source(&mut source, &mut selectors)
                .unwrap_err();
            assert!(matches!(err, EngineError::MissingAp { .. }), "{err}");
        }
    }
}
