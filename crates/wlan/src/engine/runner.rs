//! The unified event-driven replay loop.
//!
//! [`SimEngine::run_events`] is the single loop behind every public entry
//! point ([`SimEngine::run`], [`SimEngine::run_unsorted`],
//! [`SimEngine::run_streamed`]): it pulls demands from a
//! [`DemandSource`], batches arrivals per window, schedules everything
//! else (departures, rebalance ticks, load reports) on the
//! [`EventQueue`], and emits session records to a
//! [`super::source::RecordSink`].
//!
//! # Drain discipline
//!
//! Each cycle pulls the next batch head from the source, schedules the
//! cycle's epoch events and the arrival batch at that head, then drains
//! every event due at or before it. The drain stops right after the
//! arrival batch fires: departures scheduled *during* placement — even
//! zero-length sessions departing within the same second — wait for the
//! next batch head (or the final drain), exactly as the old loop applied
//! departures only at batch heads.
//!
//! # Record emission
//!
//! Without the rebalancer a session's record is fully determined at
//! placement (connect = arrival, disconnect = scheduled departure, volume
//! = the whole demand), so records are emitted *per batch*, sorted by
//! `(connect, user, ap)` within the batch. Batch connect ranges are
//! disjoint and increasing, so the streamed concatenation is globally
//! sorted — byte-identical to the in-memory path's final sort, with peak
//! memory bounded by the widest batch plus the live session table. With
//! the rebalancer, segments are only known at migration/departure time;
//! records are emitted then and globally sorted by the in-memory wrapper
//! (streaming + rebalancing is rejected:
//! [`EngineError::StreamedRebalance`]).

use std::collections::HashMap;

use s3_obs::{Counter, Desc, Histogram, HistogramDesc, Stability, Unit};
use s3_trace::{SessionDemand, SessionRecord};
use s3_types::{ApId, ControllerId, TimeDelta, Timestamp, UserId};

use super::events::{Event, EventPayload, EventQueue};
use super::source::{DemandSource, EngineError, RecordSink};
use super::state::{Active, RunState};
use super::tracing::TraceEvent;
use super::{RebalanceConfig, SimEngine};
use crate::radio::{distance, rssi_at, session_position};
use crate::selector::{ApSelector, ApView, ArrivalUser, DecisionMeta};

// Replay-engine metrics (documented in docs/METRICS.md). The engine is
// sequential within a run, and sweep binaries that replay many scenarios in
// parallel only ever *add* (u64 addition is associative), so every value
// here is a pure function of the demand stream and topology. The sharded
// coordinator (`super::shard`) publishes the same descriptors, hence the
// module-level visibility.
pub(super) static RUNS: Desc = Desc {
    name: "wlan.engine.runs",
    help: "Replay runs executed",
    unit: Unit::Count,
    stability: Stability::Stable,
};
pub(super) static DEMANDS: Desc = Desc {
    name: "wlan.engine.demands",
    help: "Session demands fed into replay runs",
    unit: Unit::Count,
    stability: Stability::Stable,
};
pub(super) static BATCHES: Desc = Desc {
    name: "wlan.engine.batches",
    help: "Arrival batches presented to the selection policy",
    unit: Unit::Count,
    stability: Stability::Stable,
};
pub(super) static BATCH_SIZE: HistogramDesc = HistogramDesc {
    name: "wlan.engine.batch_size",
    help: "Arrivals grouped into each batch window",
    unit: Unit::Count,
    stability: Stability::Stable,
    bounds: &[1, 2, 4, 8, 16, 32, 64],
};
pub(super) static PLACEMENTS: Desc = Desc {
    name: "wlan.engine.placements",
    help: "Sessions placed on an AP by the policy",
    unit: Unit::Count,
    stability: Stability::Stable,
};
pub(super) static REJECTED: Desc = Desc {
    name: "wlan.engine.rejected",
    help: "Demands with no candidate AP (controller without APs)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
pub(super) static DEPARTURES: Desc = Desc {
    name: "wlan.engine.departures",
    help: "Sessions closed at their scheduled departure time",
    unit: Unit::Count,
    stability: Stability::Stable,
};
pub(super) static MIGRATIONS: Desc = Desc {
    name: "wlan.engine.migrations",
    help: "Mid-session migrations performed by the online rebalancer",
    unit: Unit::Count,
    stability: Stability::Stable,
};
pub(super) static LOAD_REPORTS: Desc = Desc {
    name: "wlan.engine.load_reports",
    help: "Controller load-report refreshes (policies see loads as of the last one)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
pub(super) static REBALANCE_ROUNDS: Desc = Desc {
    name: "wlan.engine.rebalance_rounds",
    help: "Online-rebalancer rounds executed",
    unit: Unit::Count,
    stability: Stability::Stable,
};
pub(super) static AP_LOAD_KBPS: HistogramDesc = HistogramDesc {
    name: "wlan.engine.ap_load_kbps",
    help: "Per-AP load sampled at every controller report refresh",
    unit: Unit::Kbps,
    stability: Stability::Stable,
    bounds: &[100, 1_000, 5_000, 10_000, 25_000, 50_000, 100_000],
};
pub(super) static RUN_MICROS: HistogramDesc = HistogramDesc {
    name: "wlan.engine.run_micros",
    help: "Wall-clock duration of each replay run",
    unit: Unit::Micros,
    stability: Stability::Volatile,
    bounds: &[
        10_000,
        100_000,
        1_000_000,
        10_000_000,
        60_000_000,
        600_000_000,
    ],
};

/// Aggregate counts of one engine run (what a streaming caller gets
/// instead of a materialized [`super::SimResult`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunTotals {
    /// Sessions placed on an AP.
    pub placed: usize,
    /// Demands with no candidate AP.
    pub rejected: usize,
    /// Mid-session migrations performed by the rebalancer.
    pub migrations: usize,
    /// Session records emitted to the sink.
    pub records: usize,
}

/// Per-run loop state threaded through the event handlers.
struct RunCtx<'a> {
    run: RunState,
    queue: EventQueue,
    /// Hoisted once per run — the old loop cloned it every batch.
    max_moves_per_round: usize,
    /// With a rebalancer, segments are only known at migration/departure;
    /// without one, records are fully determined at placement.
    emit_at_departure: bool,
    /// Per-batch record staging (placement-emission mode).
    scratch: Vec<SessionRecord>,
    /// Reusable arrival buffer for `place_batch`; both the outer
    /// allocation and the per-user RSSI vectors survive across batches.
    arrivals: Vec<ArrivalUser>,
    /// Reusable controller-grouping scratch for `place_batch` (index map +
    /// member lists), hoisted so no per-batch allocation remains.
    group_of: HashMap<ControllerId, usize>,
    groups: Vec<(ControllerId, Vec<usize>)>,
    rejected: usize,
    placed: usize,
    /// Sessions closed at their scheduled departure (for the trace's end
    /// record — the process-global departure counter spans runs).
    departed: usize,
    records: usize,
    sink: &'a mut dyn RecordSink,
    selector: &'a mut dyn ApSelector,
    batches: Counter,
    batch_size: Histogram,
    placements: Counter,
    departures: Counter,
    load_reports: Counter,
    ap_load_kbps: Histogram,
}

impl RunCtx<'_> {
    fn emit(&mut self, record: SessionRecord) -> Result<(), EngineError> {
        self.sink.emit(record).map_err(EngineError::Sink)?;
        self.records += 1;
        Ok(())
    }

    /// Hands one decision to the sink's trace hook (no-op for ordinary
    /// sinks; see [`super::tracing`]).
    fn observe(&mut self, event: &TraceEvent<'_>) -> Result<(), EngineError> {
        self.sink.observe(event).map_err(EngineError::Sink)
    }
}

impl SimEngine {
    /// The unified event-driven loop every public entry point delegates
    /// to. `source` must yield demands sorted by arrival time.
    pub(super) fn run_events(
        &self,
        source: &mut dyn DemandSource,
        selector: &mut dyn ApSelector,
        sink: &mut dyn RecordSink,
    ) -> Result<RunTotals, EngineError> {
        let registry = s3_obs::global();
        let _span = registry.timer(&RUN_MICROS);
        registry.counter(&RUNS).inc();
        let demands_total = registry.counter(&DEMANDS);
        let rebalance = self.config.rebalance.clone();
        let mut ctx = RunCtx {
            run: RunState::new(self.topology.ap_count()),
            queue: EventQueue::new(),
            max_moves_per_round: rebalance.as_ref().map_or(0, |rb| rb.max_moves_per_round),
            emit_at_departure: rebalance.is_some(),
            scratch: Vec::new(),
            arrivals: Vec::new(),
            group_of: HashMap::new(),
            groups: Vec::new(),
            rejected: 0,
            placed: 0,
            departed: 0,
            records: 0,
            sink,
            selector,
            batches: registry.counter(&BATCHES),
            batch_size: registry.histogram(&BATCH_SIZE),
            placements: registry.counter(&PLACEMENTS),
            departures: registry.counter(&DEPARTURES),
            load_reports: registry.counter(&LOAD_REPORTS),
            ap_load_kbps: registry.histogram(&AP_LOAD_KBPS),
        };
        let mut epochs = EpochSchedule::new();
        let mut pending: Option<SessionDemand> = None;

        while let Some(batch) = next_batch(source, &mut pending, self.config.batch_window)? {
            let batch_head = batch[0].arrive;
            demands_total.add(batch.len() as u64);

            // Epoch events fire lazily, at batch heads that land in a new
            // epoch — an idle trace gap runs no reports (exactly the old
            // loop's lazy-epoch semantics, which the metric identity
            // contract pins).
            if epochs.tick_due(batch_head, rebalance.as_ref()) {
                ctx.queue.push(batch_head, EventPayload::RebalanceTick);
            }
            if epochs.report_due(batch_head, self.config.load_report_interval) {
                ctx.queue.push(batch_head, EventPayload::LoadReport);
            }
            ctx.queue
                .push(batch_head, EventPayload::ArrivalBatch { batch });

            // Drain everything due at this head; stop right after the
            // (single) arrival batch so departures scheduled during
            // placement wait for the next head (see module docs).
            while let Some(event) = ctx.queue.pop_due(batch_head) {
                let is_arrival = matches!(event.payload, EventPayload::ArrivalBatch { .. });
                self.handle_event(&mut ctx, event)?;
                if is_arrival {
                    break;
                }
            }
        }
        // Final drain: remaining departures (no further arrivals exist).
        while let Some(event) = ctx.queue.pop() {
            self.handle_event(&mut ctx, event)?;
        }
        let end = TraceEvent::End {
            placed: ctx.placed as u64,
            rejected: ctx.rejected as u64,
            departed: ctx.departed as u64,
            active: ctx.run.sessions().count() as u64,
        };
        ctx.observe(&end)?;
        ctx.queue.publish();
        registry.counter(&REJECTED).add(ctx.rejected as u64);
        registry.counter(&MIGRATIONS).add(ctx.run.migrations as u64);
        Ok(RunTotals {
            placed: ctx.placed,
            rejected: ctx.rejected,
            migrations: ctx.run.migrations,
            records: ctx.records,
        })
    }

    fn handle_event(&self, ctx: &mut RunCtx<'_>, event: Event) -> Result<(), EngineError> {
        match event.payload {
            EventPayload::Departure { session } => {
                let Some(mut active) = ctx.run.close(session) else {
                    return Ok(());
                };
                ctx.departures.inc();
                ctx.departed += 1;
                ctx.observe(&TraceEvent::Depart {
                    at: event.at,
                    seq: event.seq,
                    sid: session,
                    user: active.user,
                    ap: active.ap,
                })?;
                ctx.run.release(active.ap, active.user, active.rate);
                if ctx.emit_at_departure {
                    let end = active.depart;
                    let record = active.close_segment(end, true);
                    ctx.emit(record)?;
                }
                Ok(())
            }
            EventPayload::RebalanceTick => {
                ctx.observe(&TraceEvent::Tick {
                    at: event.at,
                    seq: event.seq,
                })?;
                self.rebalance_round(ctx, event.at)
            }
            EventPayload::LoadReport => {
                ctx.load_reports.inc();
                for (r, &load) in ctx.run.reported.iter_mut().zip(&ctx.run.loads) {
                    *r = load;
                    ctx.ap_load_kbps.observe((load.as_f64() / 1_000.0) as u64);
                }
                ctx.sink
                    .observe(&TraceEvent::Report {
                        at: event.at,
                        seq: event.seq,
                        loads: &ctx.run.reported,
                    })
                    .map_err(EngineError::Sink)?;
                Ok(())
            }
            EventPayload::ArrivalBatch { batch } => {
                ctx.sink
                    .observe(&TraceEvent::Batch {
                        at: event.at,
                        seq: event.seq,
                        batch: &batch,
                    })
                    .map_err(EngineError::Sink)?;
                self.place_batch(ctx, event.at, &batch)
            }
        }
    }

    fn place_batch(
        &self,
        ctx: &mut RunCtx<'_>,
        now: Timestamp,
        batch: &[SessionDemand],
    ) -> Result<(), EngineError> {
        ctx.batches.inc();
        ctx.batch_size.observe(batch.len() as u64);
        // Group the batch by controller, preserving first-appearance
        // order; an index map replaces the old O(n²) `contains` scan. The
        // scratch lives in the ctx (taken/restored around the loop so the
        // trace hooks can still borrow ctx) — no per-batch allocation.
        let mut group_of = std::mem::take(&mut ctx.group_of);
        let mut groups = std::mem::take(&mut ctx.groups);
        group_of.clear();
        let mut used = 0usize;
        for (i, d) in batch.iter().enumerate() {
            let gi = *group_of.entry(d.controller).or_insert_with(|| {
                if used < groups.len() {
                    groups[used].0 = d.controller;
                    groups[used].1.clear();
                } else {
                    groups.push((d.controller, Vec::new()));
                }
                used += 1;
                used - 1
            });
            groups[gi].1.push(i);
        }
        for (controller, members) in &groups[..used] {
            let aps = self.topology.aps_of_controller(*controller);
            if aps.is_empty() {
                ctx.rejected += members.len();
                for &i in members {
                    ctx.observe(&TraceEvent::Reject {
                        at: now,
                        user: batch[i].user,
                    })?;
                }
                continue;
            }
            let (picks, metas) = select_group(
                &self.topology,
                &ctx.run,
                &mut *ctx.selector,
                *controller,
                aps,
                members.iter().map(|&i| &batch[i]),
                &mut ctx.arrivals,
            )?;
            ctx.placements.add(picks.len() as u64);
            ctx.placed += picks.len();
            for (j, (&i, &pick)) in members.iter().zip(&picks).enumerate() {
                let d = &batch[i];
                let ap = aps[pick];
                let session_idx = ctx.run.place(d, ap);
                let m = metas[j];
                ctx.sink
                    .observe(&TraceEvent::Select {
                        at: now,
                        sid: session_idx,
                        user: d.user,
                        ap,
                        clique: m.clique,
                        degraded: m.degraded,
                        rate: d.mean_rate(),
                        candidates: aps,
                    })
                    .map_err(EngineError::Sink)?;
                ctx.queue.push(
                    d.depart,
                    EventPayload::Departure {
                        session: session_idx,
                    },
                );
                if !ctx.emit_at_departure {
                    let mut active = Active::from_demand(d, ap);
                    ctx.scratch.push(active.close_segment(d.depart, true));
                }
            }
        }
        ctx.group_of = group_of;
        ctx.groups = groups;
        if !ctx.emit_at_departure && !ctx.scratch.is_empty() {
            // Emitted per batch in `(connect, user, ap)` order; batch
            // connect ranges are disjoint and increasing, so the streamed
            // concatenation is globally sorted (module docs).
            ctx.scratch.sort_by_key(|r| (r.connect, r.user, r.ap));
            let mut scratch = std::mem::take(&mut ctx.scratch);
            for record in scratch.drain(..) {
                ctx.emit(record)?;
            }
            ctx.scratch = scratch;
        }
        Ok(())
    }

    /// Greedy max-to-min migration per controller: repeatedly move the
    /// best-fitting session from the most-loaded AP to the least-loaded
    /// one while the gap shrinks.
    fn rebalance_round(&self, ctx: &mut RunCtx<'_>, now: Timestamp) -> Result<(), EngineError> {
        s3_obs::global().counter(&REBALANCE_ROUNDS).inc();
        let RunCtx {
            run,
            max_moves_per_round,
            records,
            sink,
            ..
        } = ctx;
        for controller in self.topology.controllers() {
            let aps = self.topology.aps_of_controller(controller);
            rebalance_controller(run, aps, *max_moves_per_round, now, &mut |mv| {
                sink.observe(&TraceEvent::Move {
                    at: now,
                    sid: mv.sid,
                    user: mv.user,
                    from: mv.from,
                    to: mv.to,
                })
                .map_err(EngineError::Sink)?;
                if let Some(record) = mv.record {
                    sink.emit(record).map_err(EngineError::Sink)?;
                    *records += 1;
                }
                Ok(())
            })?;
        }
        Ok(())
    }
}

/// Pulls the next arrival batch from `source`: the head demand plus every
/// demand arriving at or at most `window` after it (`<=` — the boundary
/// demand joins the batch; a regression test pins the convention).
/// `pending` carries the first demand past the deadline between calls.
/// Shared by the unified loop and the sharded coordinator: batch
/// boundaries are *global* — a per-shard batcher would group a
/// controller's arrivals differently and change selector inputs — so they
/// must come from exactly one implementation.
pub(super) fn next_batch(
    source: &mut dyn DemandSource,
    pending: &mut Option<SessionDemand>,
    window: TimeDelta,
) -> Result<Option<Vec<SessionDemand>>, EngineError> {
    let head = match pending.take() {
        Some(d) => d,
        None => match source.next_demand().map_err(EngineError::Source)? {
            Some(d) => d,
            None => return Ok(None),
        },
    };
    let deadline = head.arrive + window;
    let mut batch = vec![head];
    while let Some(d) = source.next_demand().map_err(EngineError::Source)? {
        let prev = batch.last().expect("batch starts non-empty").arrive;
        if d.arrive < prev {
            return Err(EngineError::Unsorted {
                prev: prev.as_secs(),
                next: d.arrive.as_secs(),
            });
        }
        if d.arrive <= deadline {
            batch.push(d);
        } else {
            *pending = Some(d);
            break;
        }
    }
    Ok(Some(batch))
}

/// Lazy epoch bookkeeping: rebalance ticks and load reports fire only at
/// batch heads landing in a new `interval`-sized epoch. One implementation
/// serves the unified loop and the sharded coordinator — the fire flags
/// are part of the global cycle structure both paths must agree on
/// bit-for-bit.
pub(super) struct EpochSchedule {
    last_report: Option<u64>,
    last_rebalance: Option<u64>,
}

impl EpochSchedule {
    pub fn new() -> Self {
        EpochSchedule {
            last_report: None,
            last_rebalance: None,
        }
    }

    /// Whether a rebalance tick fires at this batch head.
    pub fn tick_due(&mut self, head: Timestamp, rebalance: Option<&RebalanceConfig>) -> bool {
        let Some(rb) = rebalance else { return false };
        if rb.interval.is_zero() {
            return false;
        }
        let epoch = head.as_secs() / rb.interval.as_secs();
        if self.last_rebalance == Some(epoch) {
            false
        } else {
            self.last_rebalance = Some(epoch);
            true
        }
    }

    /// Whether a load report fires at this batch head (always, when the
    /// interval is zero — the live-load oracle baseline).
    pub fn report_due(&mut self, head: Timestamp, interval: TimeDelta) -> bool {
        let epoch = if interval.is_zero() {
            None
        } else {
            Some(head.as_secs() / interval.as_secs())
        };
        if epoch.is_some() && self.last_report == epoch {
            false
        } else {
            self.last_report = epoch;
            true
        }
    }
}

/// Runs the selector over one controller group: builds the arrival users
/// (RSSI per candidate) and the zero-copy candidate views, asks the
/// selector for one pick per user, and reads back the per-user decision
/// metadata while the picks still correspond. Shared by the unified
/// `place_batch` and the sharded workers — the inputs a selector sees for
/// a group are a pure function of `(topology, run state, group demands)`,
/// which is exactly why per-controller sharding cannot change decisions.
///
/// `arrivals` is a reusable buffer: slots (including their RSSI vectors)
/// are overwritten in place and persist across batches, so the steady
/// state runs without per-demand allocation — at city scale the old
/// fresh-`Vec`-per-arrival pattern was millions of allocations.
pub(super) fn select_group<'d>(
    topology: &crate::topology::Topology,
    run: &RunState,
    selector: &mut dyn ApSelector,
    controller: ControllerId,
    aps: &[ApId],
    demands: impl Iterator<Item = &'d SessionDemand>,
    arrivals: &mut Vec<ArrivalUser>,
) -> Result<(Vec<usize>, Vec<DecisionMeta>), EngineError> {
    let mut n = 0usize;
    for d in demands {
        let pos = session_position(d.user, d.arrive);
        if n == arrivals.len() {
            arrivals.push(ArrivalUser {
                user: d.user,
                now: d.arrive,
                demand_hint: d.mean_rate(),
                rssi: Vec::with_capacity(aps.len()),
            });
        } else {
            let slot = &mut arrivals[n];
            slot.user = d.user;
            slot.now = d.arrive;
            slot.demand_hint = d.mean_rate();
            slot.rssi.clear();
        }
        let slot = &mut arrivals[n];
        for &ap in aps {
            let info = topology
                .ap(ap)
                .ok_or(EngineError::MissingAp { ap, controller })?;
            slot.rssi.push(rssi_at(distance(pos, info.position)));
        }
        n += 1;
    }
    let arrivals = &arrivals[..n];
    let picks = {
        // Zero-copy candidate views borrowing the engine's live
        // association state — nothing is cloned per candidate.
        let mut views: Vec<ApView<'_>> = Vec::with_capacity(aps.len());
        for &ap in aps {
            let info = topology
                .ap(ap)
                .ok_or(EngineError::MissingAp { ap, controller })?;
            views.push(ApView::new(
                ap,
                run.reported[ap.index()],
                info.capacity,
                &run.associated[ap.index()],
            ));
        }
        selector.select_batch(arrivals, &views)
    };
    assert_eq!(picks.len(), arrivals.len(), "one pick per user required");
    for &pick in &picks {
        assert!(pick < aps.len(), "selector pick out of range");
    }
    let meta = selector.last_batch_meta();
    let metas = (0..picks.len())
        .map(|j| meta.and_then(|m| m.get(j)).copied().unwrap_or_default())
        .collect();
    Ok((picks, metas))
}

/// One migration performed by [`rebalance_controller`], handed to the
/// caller's `apply` hook at the exact observe/emit point of the original
/// loop: the session is already retargeted, its load not yet moved.
pub(super) struct MoveOutcome {
    /// Engine session index.
    pub sid: u32,
    /// The migrated user.
    pub user: UserId,
    /// AP the session left.
    pub from: ApId,
    /// AP the session joined.
    pub to: ApId,
    /// The closed segment on the old AP (`None` for zero-length ones).
    pub record: Option<SessionRecord>,
}

/// One controller's greedy max-to-min migration round: repeatedly move
/// the best-fitting session from the most-loaded AP to the least-loaded
/// one while the gap shrinks, at most `max_moves` times. All state
/// mutation lives here; trace/record emission differs between the unified
/// and sharded paths and goes through `apply`. Controllers with fewer
/// than two APs are no-ops.
pub(super) fn rebalance_controller(
    run: &mut RunState,
    aps: &[ApId],
    max_moves: usize,
    now: Timestamp,
    apply: &mut dyn FnMut(MoveOutcome) -> Result<(), EngineError>,
) -> Result<(), EngineError> {
    if aps.len() < 2 {
        return Ok(());
    }
    for _ in 0..max_moves {
        let mut max_ap = aps[0];
        let mut min_ap = aps[0];
        for &ap in aps {
            if run.loads[ap.index()] > run.loads[max_ap.index()] {
                max_ap = ap;
            }
            if run.loads[ap.index()] < run.loads[min_ap.index()] {
                min_ap = ap;
            }
        }
        let gap = run.loads[max_ap.index()].saturating_sub(run.loads[min_ap.index()]);
        if gap.as_f64() <= 0.0 {
            break;
        }
        // The largest session on max_ap whose move still shrinks the gap
        // (rate < gap). Ascending-index iteration plus last-max-wins
        // `max_by` resolves rate ties to the most recently placed
        // session, as the old slab scan did.
        let candidate = run
            .sessions()
            .filter(|(_, s)| s.ap == max_ap && s.rate.as_f64() < gap.as_f64())
            .max_by(|a, b| {
                a.1.rate
                    .as_f64()
                    .partial_cmp(&b.1.rate.as_f64())
                    .expect("finite rates")
            })
            .map(|(idx, _)| idx);
        let Some(idx) = candidate else { break };
        let Some(active) = run.session_mut(idx) else {
            return Err(EngineError::DeadSession { session: idx });
        };
        // Close the segment on the old AP (skip zero-length ones).
        let record = if now > active.segment_start {
            Some(active.close_segment(now, false))
        } else {
            active.segment_start = now;
            None
        };
        let rate = active.rate;
        let user = active.user;
        let old = active.ap;
        active.ap = min_ap;
        run.migrations += 1;
        apply(MoveOutcome {
            sid: idx,
            user,
            from: old,
            to: min_ap,
            record,
        })?;
        run.release(old, user, rate);
        run.loads[min_ap.index()] += rate;
        run.associated[min_ap.index()].push(user);
    }
    Ok(())
}
