//! The unified simulation event queue.
//!
//! The old engine loop interleaved four ad-hoc checks per batch cycle
//! (departures, rebalance epoch, load-report epoch, arrival placement).
//! They are now explicit [`EventPayload`] variants drained from one
//! time-ordered [`EventQueue`], which makes the ordering contract a single
//! comparable key instead of control flow:
//!
//! * primary key — event time in whole seconds (the engine's clock);
//! * secondary key — a fixed rank per variant: departures release load
//!   before the rebalancer sees it, the rebalancer runs on pre-report
//!   state, the load report refreshes the policy's view, and only then is
//!   the arrival batch placed (exactly the old loop's statement order);
//! * tertiary key — insertion sequence, so same-kind ties pop FIFO
//!   (departures scheduled in placement order keep the old heap's
//!   session-index order, which pins floating-point load subtraction
//!   order and hence byte-identical results).

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use s3_obs::{Desc, HistogramDesc, Stability, Unit};
use s3_trace::SessionDemand;
use s3_types::Timestamp;

static EVENTS_PROCESSED: Desc = Desc {
    name: "wlan.engine.events_processed",
    help: "Simulation events drained from the unified event queue",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static EVENTS_QUEUE_PEAK: HistogramDesc = HistogramDesc {
    name: "wlan.engine.events_queue_peak",
    help: "Peak event-queue depth observed per replay run",
    unit: Unit::Count,
    stability: Stability::Stable,
    bounds: &[4, 16, 64, 256, 1_024, 4_096, 16_384],
};

/// What happens when an event fires. Variants are listed in drain order
/// for events at the same second (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum EventPayload {
    /// A session reaches its scheduled departure.
    Departure {
        /// Index of the session in [`super::state::RunState`].
        session: u32,
    },
    /// Online-rebalancer epoch boundary.
    RebalanceTick,
    /// Controller load-report refresh (policies see loads as of the last
    /// one).
    LoadReport,
    /// A window of simultaneous arrivals to place.
    ArrivalBatch {
        /// The demands of the batch, in arrival order.
        batch: Vec<SessionDemand>,
    },
}

impl EventPayload {
    fn rank(&self) -> u8 {
        match self {
            EventPayload::Departure { .. } => 0,
            EventPayload::RebalanceTick => 1,
            EventPayload::LoadReport => 2,
            EventPayload::ArrivalBatch { .. } => 3,
        }
    }
}

/// A scheduled simulation event.
#[derive(Debug)]
pub(crate) struct Event {
    /// When the event fires.
    pub at: Timestamp,
    /// Insertion sequence — exposed so the decision-trace hooks can log
    /// the full `(time, rank, seq)` queue key of each drained event.
    pub seq: u64,
    /// What fires.
    pub payload: EventPayload,
}

impl Event {
    fn key(&self) -> (u64, u8, u64) {
        (self.at.as_secs(), self.payload.rank(), self.seq)
    }
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// Min-heap of pending events ordered by `(time, rank, sequence)`.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    processed: u64,
    peak: usize,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `payload` at `at`.
    pub fn push(&mut self, at: Timestamp, payload: EventPayload) {
        let seq = self.seq;
        self.seq += 1;
        self.push_with_seq(at, seq, payload);
    }

    /// Schedules `payload` at `at` under an externally assigned sequence
    /// number. The sharded engine's coordinator numbers events globally
    /// (a pure function of the cycle structure), so shard-local queues
    /// order by the same `(time, rank, seq)` key the unified queue would
    /// have used; the internal counter is not advanced.
    pub fn push_with_seq(&mut self, at: Timestamp, seq: u64, payload: EventPayload) {
        self.heap.push(Reverse(Event { at, seq, payload }));
        self.peak = self.peak.max(self.heap.len());
    }

    /// Pops the earliest event due at or before `now` (whole seconds).
    pub fn pop_due(&mut self, now: Timestamp) -> Option<Event> {
        if self.heap.peek()?.0.at.as_secs() > now.as_secs() {
            return None;
        }
        self.pop()
    }

    /// Pops the earliest event unconditionally (final drain).
    pub fn pop(&mut self) -> Option<Event> {
        let event = self.heap.pop()?.0;
        self.processed += 1;
        Some(event)
    }

    /// Publishes the queue's per-run metrics: events drained and peak
    /// depth. Called once per run, after the final drain; peak depth goes
    /// to a histogram (not a gauge) so concurrent sweep runs stay
    /// order-independent.
    pub fn publish(&self) {
        publish_queue_totals(self.processed, self.peak);
    }
}

/// Publishes one run's queue metrics. Shared by [`EventQueue::publish`]
/// and the sharded coordinator's queue mirror, which replays the unified
/// queue's push/pop sequence to reproduce the exact same totals without
/// owning real events (shard-local queues never publish — the mirror
/// speaks for all of them so the metrics snapshot is shard-invariant).
pub fn publish_queue_totals(processed: u64, peak: usize) {
    let registry = s3_obs::global();
    registry.counter(&EVENTS_PROCESSED).add(processed);
    registry.histogram(&EVENTS_QUEUE_PEAK).observe(peak as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: u64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(ts(30), EventPayload::RebalanceTick);
        q.push(ts(10), EventPayload::LoadReport);
        q.push(ts(20), EventPayload::Departure { session: 0 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.at.as_secs())).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn same_second_pops_by_rank() {
        // At one instant: departures, then rebalance, then report, then
        // arrivals — the old loop's statement order.
        let mut q = EventQueue::new();
        q.push(ts(5), EventPayload::ArrivalBatch { batch: vec![] });
        q.push(ts(5), EventPayload::LoadReport);
        q.push(ts(5), EventPayload::Departure { session: 1 });
        q.push(ts(5), EventPayload::RebalanceTick);
        let ranks: Vec<u8> = std::iter::from_fn(|| q.pop().map(|e| e.payload.rank())).collect();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn same_kind_ties_pop_fifo() {
        // Departures at the same second must pop in scheduling order —
        // this pins floating-point load-release order.
        let mut q = EventQueue::new();
        for session in [7u32, 3, 9] {
            q.push(ts(100), EventPayload::Departure { session });
        }
        let sessions: Vec<u32> = std::iter::from_fn(|| {
            q.pop().map(|e| match e.payload {
                EventPayload::Departure { session } => session,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(sessions, vec![7, 3, 9]);
    }

    #[test]
    fn pop_due_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.push(ts(10), EventPayload::Departure { session: 0 });
        q.push(ts(20), EventPayload::Departure { session: 1 });
        assert!(q.pop_due(ts(9)).is_none());
        assert_eq!(q.pop_due(ts(10)).unwrap().at, ts(10));
        assert!(q.pop_due(ts(19)).is_none());
        assert_eq!(q.pop_due(ts(25)).unwrap().at, ts(20));
        assert!(q.pop().is_none());
    }
}
