//! A log-distance path-loss radio model.
//!
//! Enterprise clients by default associate with the AP whose beacon has the
//! strongest RSSI. The simulator gives each arriving session a position
//! inside its building (deterministic per user/session) and computes RSSI
//! with the standard indoor log-distance model:
//!
//! ```text
//! RSSI(d) = P_tx − PL(d₀) − 10·n·log10(d/d₀)
//! ```
//!
//! with `P_tx = 20 dBm`, `PL(1 m) = 40 dB` and path-loss exponent
//! `n = 3.0` (typical office interior).

use s3_types::{Timestamp, UserId};

use crate::topology::BUILDING_SIDE_M;

/// Transmit power, dBm.
pub const TX_POWER_DBM: f64 = 20.0;
/// Path loss at the 1 m reference distance, dB.
pub const PL_REF_DB: f64 = 40.0;
/// Indoor path-loss exponent.
pub const PATH_LOSS_EXPONENT: f64 = 3.0;
/// Receiver sensitivity floor, dBm — below this an AP is not a candidate.
pub const SENSITIVITY_DBM: f64 = -90.0;

/// RSSI in dBm at `distance_m` meters from the AP.
///
/// Distances below 1 m clamp to the reference distance.
pub fn rssi_at(distance_m: f64) -> f64 {
    let d = distance_m.max(1.0);
    TX_POWER_DBM - PL_REF_DB - 10.0 * PATH_LOSS_EXPONENT * d.log10()
}

/// Euclidean distance between two positions.
pub fn distance(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    (dx * dx + dy * dy).sqrt()
}

/// A deterministic pseudo-random position inside the building for a
/// `(user, arrival)` pair — the same session always lands at the same spot,
/// so runs comparing selection policies see identical radio conditions.
pub fn session_position(user: UserId, arrive: Timestamp) -> (f64, f64) {
    let h = splitmix64(user.raw() as u64 ^ (arrive.as_secs().rotate_left(17)));
    let x = (h >> 32) as f64 / u32::MAX as f64 * BUILDING_SIDE_M;
    let y = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64 * BUILDING_SIDE_M;
    (x, y)
}

/// SplitMix64 — a tiny, well-distributed 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rssi_decreases_with_distance() {
        assert!(rssi_at(1.0) > rssi_at(5.0));
        assert!(rssi_at(5.0) > rssi_at(50.0));
    }

    #[test]
    fn rssi_reference_value() {
        // At the 1 m reference: 20 − 40 = −20 dBm.
        assert!((rssi_at(1.0) + 20.0).abs() < 1e-12);
        // At 10 m: −20 − 30 = −50 dBm.
        assert!((rssi_at(10.0) + 50.0).abs() < 1e-12);
    }

    #[test]
    fn sub_meter_distances_clamp() {
        assert_eq!(rssi_at(0.0), rssi_at(1.0));
        assert_eq!(rssi_at(0.5), rssi_at(1.0));
    }

    #[test]
    fn in_building_rssi_above_sensitivity() {
        // Worst case: diagonal of a building.
        let worst = (2.0f64).sqrt() * BUILDING_SIDE_M;
        assert!(rssi_at(worst) > SENSITIVITY_DBM);
    }

    #[test]
    fn distance_is_euclidean() {
        assert!((distance((0.0, 0.0), (3.0, 4.0)) - 5.0).abs() < 1e-12);
        assert_eq!(distance((1.0, 1.0), (1.0, 1.0)), 0.0);
    }

    #[test]
    fn session_position_is_deterministic_and_in_bounds() {
        let u = UserId::new(42);
        let t = Timestamp::from_secs(1234);
        let a = session_position(u, t);
        let b = session_position(u, t);
        assert_eq!(a, b);
        assert!((0.0..=BUILDING_SIDE_M).contains(&a.0));
        assert!((0.0..=BUILDING_SIDE_M).contains(&a.1));
        // Different users land elsewhere (with overwhelming probability).
        let c = session_position(UserId::new(43), t);
        assert_ne!(a, c);
        // Same user at a different time lands elsewhere.
        let d = session_position(u, Timestamp::from_secs(9999));
        assert_ne!(a, d);
    }
}
