//! Balance-index metrics over logged sessions.
//!
//! Every evaluation number in the paper is a function of the normalized
//! balance index computed over per-AP loads inside a controller domain,
//! sampled per time bin. These helpers turn a [`TraceStore`] into those
//! series.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use s3_obs::{Desc, Stability, Unit};
use s3_stats::balance::{normalized_balance_index, user_count_balance_index};
use s3_trace::{SessionRecord, TraceStore};
use s3_types::{ApId, Bytes, ControllerId, TimeDelta, Timestamp};

// Balance-sampling metrics (documented in docs/METRICS.md). Recorded in
// exactly one place — [`balance_samples`] — so the aggregate helpers below
// (`mean_active_balance*`), which call it internally, never double-count a
// bin.
static BALANCE_SAMPLES: Desc = Desc {
    name: "wlan.metrics.balance_samples",
    help: "(controller, bin) balance-index samples computed",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static ACTIVE_BINS: Desc = Desc {
    name: "wlan.metrics.active_bins",
    help: "Balance samples whose bin carried traffic",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static IDLE_BINS: Desc = Desc {
    name: "wlan.metrics.idle_bins",
    help: "Balance samples over idle bins (report index 1, filtered from CDFs)",
    unit: Unit::Count,
    stability: Stability::Stable,
};

/// One balance-index sample: a controller domain over one time bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceSample {
    /// The controller domain.
    pub controller: ControllerId,
    /// Bin start.
    pub start: Timestamp,
    /// Normalized balance index of per-AP traffic in the bin.
    pub value: f64,
    /// True when the bin carried any traffic (idle bins report index 1 and
    /// are usually filtered out of CDFs).
    pub active: bool,
}

/// Computes the normalized traffic balance index for every `(controller,
/// bin)` pair across the store's whole day range.
///
/// # Panics
///
/// Panics if `bin` is zero.
pub fn balance_samples(store: &TraceStore, bin: TimeDelta) -> Vec<BalanceSample> {
    assert!(!bin.is_zero(), "bin width must be positive");
    let Some((first_day, last_day)) = store.day_range() else {
        return Vec::new();
    };
    let start = Timestamp::from_secs(first_day * s3_types::SECS_PER_DAY);
    let end = Timestamp::from_secs((last_day + 1) * s3_types::SECS_PER_DAY);
    let mut out = Vec::new();
    for controller in store.controllers() {
        let mut t = start;
        while t < end {
            let to = t + bin;
            let volumes = store.ap_volumes_in(controller, t, to);
            if volumes.len() >= 2 {
                let loads: Vec<f64> = volumes.iter().map(|&(_, v)| v.as_f64()).collect();
                let total: f64 = loads.iter().sum();
                let value = normalized_balance_index(&loads).expect("loads are finite");
                out.push(BalanceSample {
                    controller,
                    start: t,
                    value,
                    active: total > 0.0,
                });
            }
            t = to;
        }
    }
    let registry = s3_obs::global();
    registry.counter(&BALANCE_SAMPLES).add(out.len() as u64);
    let active = out.iter().filter(|s| s.active).count() as u64;
    registry.counter(&ACTIVE_BINS).add(active);
    registry.counter(&IDLE_BINS).add(out.len() as u64 - active);
    out
}

/// Traffic balance-index time series for a single controller.
///
/// # Panics
///
/// Panics if `bin` is zero.
pub fn balance_series(
    store: &TraceStore,
    controller: ControllerId,
    from: Timestamp,
    to: Timestamp,
    bin: TimeDelta,
) -> Vec<(Timestamp, f64)> {
    assert!(!bin.is_zero(), "bin width must be positive");
    let mut out = Vec::new();
    let mut t = from;
    while t < to {
        let volumes = store.ap_volumes_in(controller, t, t + bin);
        if volumes.len() >= 2 {
            let loads: Vec<f64> = volumes.iter().map(|&(_, v)| v.as_f64()).collect();
            out.push((t, normalized_balance_index(&loads).expect("finite loads")));
        }
        t += bin;
    }
    out
}

/// User-count balance-index time series (Fig. 4's second panel): the index
/// over the number of users associated per AP, sampled at bin starts.
///
/// # Panics
///
/// Panics if `bin` is zero.
pub fn user_balance_series(
    store: &TraceStore,
    controller: ControllerId,
    from: Timestamp,
    to: Timestamp,
    bin: TimeDelta,
) -> Vec<(Timestamp, f64)> {
    assert!(!bin.is_zero(), "bin width must be positive");
    let mut out = Vec::new();
    let mut t = from;
    while t < to {
        let counts = store.ap_user_counts_at(controller, t);
        if counts.len() >= 2 {
            let values: Vec<u32> = counts.iter().map(|&(_, c)| c).collect();
            out.push((t, user_count_balance_index(&values).expect("finite counts")));
        }
        t += bin;
    }
    out
}

/// Mean normalized balance index over all active `(controller, bin)` pairs
/// — the headline scalar compared between S³ and LLF. Returns `None` when
/// no bin was active.
pub fn mean_active_balance(store: &TraceStore, bin: TimeDelta) -> Option<f64> {
    let samples = balance_samples(store, bin);
    let active: Vec<f64> = samples
        .iter()
        .filter(|s| s.active)
        .map(|s| s.value)
        .collect();
    if active.is_empty() {
        None
    } else {
        Some(active.iter().sum::<f64>() / active.len() as f64)
    }
}

/// Like [`mean_active_balance`] but restricted to bins whose start hour
/// satisfies `hour_filter` (peak hours, leave-peak hours, …).
pub fn mean_active_balance_filtered<F>(
    store: &TraceStore,
    bin: TimeDelta,
    hour_filter: F,
) -> Option<f64>
where
    F: Fn(u64) -> bool,
{
    let samples = balance_samples(store, bin);
    let active: Vec<f64> = samples
        .iter()
        .filter(|s| s.active && hour_filter(s.start.hour_of_day()))
        .map(|s| s.value)
        .collect();
    if active.is_empty() {
        None
    } else {
        Some(active.iter().sum::<f64>() / active.len() as f64)
    }
}

/// Incremental equivalent of [`balance_samples`] +
/// [`mean_active_balance_filtered`] for record streams that never
/// materialize a [`TraceStore`] — the `s3wlan replay --stream` path.
///
/// Feed every emitted record through [`StreamingBalance::observe`] (in
/// nondecreasing connect order — the order the streaming engine emits),
/// then call [`StreamingBalance::finish`] once. The accumulator reproduces
/// the store-backed computation *exactly*: per-bin volumes are the same
/// integer [`SessionRecord::volume_within`] attributions, controllers and
/// APs iterate in the same ascending-id order, and the sample mean sums in
/// the same (controller-major, bin-minor) order — so both the published
/// `wlan.metrics.*` counters and the reported mean are byte-identical to
/// what [`mean_active_balance_filtered`] over the full log would give.
///
/// Memory is `O(controllers × APs × bins-with-traffic)` — it scales with
/// the campus and the day span, never with the record count.
#[derive(Debug)]
pub struct StreamingBalance {
    bin: TimeDelta,
    /// Start of the first record's day — the bin grid origin (the
    /// store-backed path aligns bins to the first day's midnight).
    origin: Option<u64>,
    last_day: u64,
    /// APs observed per controller over the whole stream.
    aps: BTreeMap<ControllerId, BTreeSet<ApId>>,
    /// Served volume per `(controller, ap, bin index)`.
    volumes: HashMap<(ControllerId, ApId, u64), Bytes>,
}

impl StreamingBalance {
    /// Creates an accumulator over `bin`-wide windows.
    ///
    /// # Panics
    ///
    /// Panics if `bin` is zero.
    pub fn new(bin: TimeDelta) -> Self {
        assert!(!bin.is_zero(), "bin width must be positive");
        StreamingBalance {
            bin,
            origin: None,
            last_day: 0,
            aps: BTreeMap::new(),
            volumes: HashMap::new(),
        }
    }

    /// Folds one record into the per-bin volume table.
    ///
    /// # Panics
    ///
    /// Panics if `record` connects before a previously observed record's
    /// day — records must arrive in nondecreasing connect order.
    pub fn observe(&mut self, record: &SessionRecord) {
        let origin = *self
            .origin
            .get_or_insert(record.connect.day() * s3_types::SECS_PER_DAY);
        assert!(
            record.connect.as_secs() >= origin,
            "records must be observed in nondecreasing connect order"
        );
        self.last_day = self.last_day.max(record.disconnect.day());
        self.aps
            .entry(record.controller)
            .or_default()
            .insert(record.ap);
        if record.duration().is_zero() {
            return; // attributes zero volume to every bin
        }
        let width = self.bin.as_secs();
        let first = (record.connect.as_secs() - origin) / width;
        let last = (record.disconnect.as_secs() - 1 - origin) / width;
        for b in first..=last {
            let from = Timestamp::from_secs(origin + b * width);
            let to = Timestamp::from_secs(origin + (b + 1) * width);
            let v = record.volume_within(from, to);
            if !v.is_zero() {
                *self
                    .volumes
                    .entry((record.controller, record.ap, b))
                    .or_insert(Bytes::ZERO) += v;
            }
        }
    }

    /// Publishes the `wlan.metrics.*` sample counters and returns the mean
    /// active balance index over bins whose start hour passes
    /// `hour_filter` — exactly [`mean_active_balance_filtered`]. When no
    /// record was observed nothing is published (the store-backed path
    /// returns before publishing on an empty log); when records exist but
    /// no active bin passes the filter, counters publish and the mean is
    /// `None`.
    pub fn finish<F>(self, hour_filter: F) -> Option<f64>
    where
        F: Fn(u64) -> bool,
    {
        let origin = self.origin?;
        let width = self.bin.as_secs();
        let end = (self.last_day + 1) * s3_types::SECS_PER_DAY;
        let mut samples = 0u64;
        let mut active_bins = 0u64;
        let (mut sum, mut n) = (0.0f64, 0u64);
        for (controller, aps) in &self.aps {
            if aps.len() < 2 {
                continue;
            }
            let mut t = origin;
            let mut b = 0u64;
            while t < end {
                let loads: Vec<f64> = aps
                    .iter()
                    .map(|&ap| {
                        self.volumes
                            .get(&(*controller, ap, b))
                            .map_or(0.0, |v| v.as_f64())
                    })
                    .collect();
                let total: f64 = loads.iter().sum();
                let value = normalized_balance_index(&loads).expect("loads are finite");
                samples += 1;
                if total > 0.0 {
                    active_bins += 1;
                    if hour_filter(Timestamp::from_secs(t).hour_of_day()) {
                        sum += value;
                        n += 1;
                    }
                }
                t += width;
                b += 1;
            }
        }
        let registry = s3_obs::global();
        registry.counter(&BALANCE_SAMPLES).add(samples);
        registry.counter(&ACTIVE_BINS).add(active_bins);
        registry.counter(&IDLE_BINS).add(samples - active_bins);
        (n > 0).then(|| sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_trace::SessionRecord;
    use s3_types::{AppCategory, UserId};

    fn rec(user: u32, ap: u32, ctl: u32, connect: u64, disconnect: u64, mb: u64) -> SessionRecord {
        let mut volume_by_app = [Bytes::ZERO; 6];
        volume_by_app[AppCategory::Video.index()] = Bytes::megabytes(mb);
        SessionRecord {
            user: UserId::new(user),
            ap: ApId::new(ap),
            controller: ControllerId::new(ctl),
            connect: Timestamp::from_secs(connect),
            disconnect: Timestamp::from_secs(disconnect),
            volume_by_app,
        }
    }

    #[test]
    fn perfectly_balanced_bins_score_one() {
        let store = TraceStore::new(vec![rec(1, 0, 0, 0, 3_600, 10), rec(2, 1, 0, 0, 3_600, 10)]);
        let series = balance_series(
            &store,
            ControllerId::new(0),
            Timestamp::ZERO,
            Timestamp::from_secs(3_600),
            TimeDelta::minutes(10),
        );
        assert_eq!(series.len(), 6);
        assert!(series.iter().all(|&(_, v)| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    fn concentrated_bins_score_zero() {
        let store = TraceStore::new(vec![
            rec(1, 0, 0, 0, 3_600, 10),
            rec(2, 1, 0, 4_000, 4_001, 1), // makes AP 1 known to the domain
        ]);
        let series = balance_series(
            &store,
            ControllerId::new(0),
            Timestamp::ZERO,
            Timestamp::from_secs(3_600),
            TimeDelta::hours(1),
        );
        assert_eq!(series.len(), 1);
        assert!(series[0].1.abs() < 1e-9, "all load on one of two APs");
    }

    #[test]
    fn samples_flag_idle_bins() {
        let store = TraceStore::new(vec![rec(1, 0, 0, 0, 600, 10), rec(2, 1, 0, 0, 600, 10)]);
        let samples = balance_samples(&store, TimeDelta::hours(6));
        assert_eq!(samples.len(), 4, "four 6h bins in day 0");
        assert!(samples[0].active);
        assert!(!samples[1].active);
        assert_eq!(samples[1].value, 1.0, "idle bins report balanced");
    }

    #[test]
    fn single_ap_domains_are_skipped() {
        let store = TraceStore::new(vec![rec(1, 0, 0, 0, 600, 10)]);
        assert!(balance_samples(&store, TimeDelta::hours(1)).is_empty());
        assert_eq!(mean_active_balance(&store, TimeDelta::hours(1)), None);
    }

    #[test]
    fn user_series_counts_heads_not_bytes() {
        let store = TraceStore::new(vec![
            rec(1, 0, 0, 0, 3_600, 1_000), // heavy user
            rec(2, 1, 0, 0, 3_600, 1),     // light user
        ]);
        let series = user_balance_series(
            &store,
            ControllerId::new(0),
            Timestamp::ZERO,
            Timestamp::from_secs(3_600),
            TimeDelta::hours(1),
        );
        assert_eq!(series.len(), 1);
        assert!((series[0].1 - 1.0).abs() < 1e-9, "one user each: balanced");
    }

    #[test]
    fn filtered_mean_restricts_hours() {
        // Balanced traffic at 10:00, unbalanced at 03:00.
        let store = TraceStore::new(vec![
            rec(1, 0, 0, 10 * 3_600, 10 * 3_600 + 600, 10),
            rec(2, 1, 0, 10 * 3_600, 10 * 3_600 + 600, 10),
            rec(3, 0, 0, 3 * 3_600, 3 * 3_600 + 600, 10),
        ]);
        let peak = mean_active_balance_filtered(&store, TimeDelta::hours(1), |h| h == 10).unwrap();
        let night = mean_active_balance_filtered(&store, TimeDelta::hours(1), |h| h == 3).unwrap();
        assert!((peak - 1.0).abs() < 1e-9);
        assert!(night.abs() < 1e-9);
        assert!(mean_active_balance_filtered(&store, TimeDelta::hours(1), |h| h == 20).is_none());
        let overall = mean_active_balance(&store, TimeDelta::hours(1)).unwrap();
        assert!((overall - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_store_yields_no_samples() {
        let store = TraceStore::new(vec![]);
        assert!(balance_samples(&store, TimeDelta::hours(1)).is_empty());
    }

    /// Reads the three sample counters (for delta assertions).
    fn sample_counters() -> (u64, u64, u64) {
        let registry = s3_obs::global();
        (
            registry.counter(&BALANCE_SAMPLES).get(),
            registry.counter(&ACTIVE_BINS).get(),
            registry.counter(&IDLE_BINS).get(),
        )
    }

    #[test]
    fn streaming_balance_matches_the_store_backed_path_exactly() {
        use crate::selector::LeastLoadedFirst;
        use crate::{SimConfig, SimEngine, Topology};
        use s3_trace::generator::{CampusConfig, CampusGenerator};

        // A realistic multi-controller log: a generated campus replayed
        // under LLF (records come out sorted by connect — the order the
        // streaming engine emits).
        let campus = CampusGenerator::new(CampusConfig::tiny(), 9).generate();
        let topology = Topology::from_campus(&campus.config);
        let engine = SimEngine::new(topology, SimConfig::default());
        let records = engine
            .run(&campus.demands, &mut LeastLoadedFirst::new())
            .records;
        assert!(!records.is_empty());

        let bin = TimeDelta::minutes(10);
        let daytime = |h: u64| h >= 8;

        let before = sample_counters();
        let store = TraceStore::new(records.clone());
        let store_mean = mean_active_balance_filtered(&store, bin, daytime);
        let mid = sample_counters();

        let mut streaming = StreamingBalance::new(bin);
        for r in &records {
            streaming.observe(r);
        }
        let stream_mean = streaming.finish(daytime);
        let after = sample_counters();

        // Bit-exact mean and identical counter deltas.
        assert_eq!(store_mean, stream_mean);
        assert!(store_mean.is_some());
        let store_delta = (mid.0 - before.0, mid.1 - before.1, mid.2 - before.2);
        let stream_delta = (after.0 - mid.0, after.1 - mid.1, after.2 - mid.2);
        assert_eq!(store_delta, stream_delta);
        assert!(store_delta.0 > 0, "the log must produce samples");
    }

    #[test]
    fn streaming_balance_handles_edge_records_like_the_store() {
        // Zero-duration sessions, sessions spanning many bins, idle gaps
        // and a single-AP controller (skipped by both paths).
        let records = vec![
            rec(1, 0, 0, 0, 600, 6),
            rec(2, 1, 0, 0, 0, 5), // zero duration: volume lands nowhere
            rec(3, 1, 0, 300, 7_200, 12),
            rec(4, 9, 3, 400, 500, 4), // controller 3 has one AP: no samples
            rec(5, 0, 0, 86_000, 86_500, 2), // crosses midnight into day 1
        ];
        let bin = TimeDelta::minutes(10);
        let store_mean =
            mean_active_balance_filtered(&TraceStore::new(records.clone()), bin, |_| true);
        let mut streaming = StreamingBalance::new(bin);
        for r in &records {
            streaming.observe(r);
        }
        assert_eq!(streaming.finish(|_| true), store_mean);
    }

    #[test]
    fn streaming_balance_on_an_empty_stream_is_none() {
        assert!(StreamingBalance::new(TimeDelta::minutes(10))
            .finish(|_| true)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "nondecreasing connect order")]
    fn streaming_balance_rejects_out_of_order_records() {
        let mut streaming = StreamingBalance::new(TimeDelta::minutes(10));
        streaming.observe(&rec(1, 0, 0, 86_400, 86_500, 1));
        streaming.observe(&rec(2, 1, 0, 100, 200, 1));
    }
}
