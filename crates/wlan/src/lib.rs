//! Discrete-event enterprise WLAN simulator.
//!
//! The paper evaluates AP-selection policies by trace-driven simulation:
//! a demand stream (who shows up where, when, with how much traffic) is
//! replayed against a WLAN whose controller assigns each arrival to an AP
//! according to the policy under study. This crate is that testbed:
//!
//! * [`Topology`] — buildings, controllers, APs with capacities and
//!   positions (built straight from a
//!   [`s3_trace::generator::CampusConfig`]);
//! * [`radio`] — a log-distance path-loss RSSI model, giving the
//!   "strongest signal" default policy something physical to rank;
//! * [`ApSelector`] — the policy interface, with the paper's baselines:
//!   [`selector::LeastLoadedFirst`] (LLF, the state of the art the paper
//!   compares against), [`selector::LeastUsers`],
//!   [`selector::StrongestRssi`] and [`selector::RandomSelector`] — plus
//!   the contender strategies from related work in [`strategies`]
//!   (flow-level balancing, ε-greedy MAB, workload-class-aware);
//! * [`StrategyRegistry`] — the pluggable name → factory + capability-flag
//!   registry every consumer (CLI, benches, sharded runs) dispatches
//!   through (see `docs/STRATEGIES.md`);
//! * [`SimEngine`] — the event-driven replay core: a unified time-ordered
//!   event queue (arrival batches, departures, load-report epochs,
//!   rebalance ticks), pluggable [`engine::DemandSource`]s (in-memory
//!   slice or a streaming reader for traces larger than RAM) and
//!   [`engine::RecordSink`]s, with policies reading live AP state through
//!   borrowed zero-copy [`selector::ApView`]s;
//! * [`metrics`] — balance-index time series and summaries computed from
//!   the logged sessions.
//!
//! # Example
//!
//! ```
//! use s3_trace::generator::{CampusConfig, CampusGenerator};
//! use s3_wlan::{SimConfig, SimEngine, Topology, selector::LeastLoadedFirst};
//!
//! let campus = CampusGenerator::new(CampusConfig::tiny(), 1).generate();
//! let topology = Topology::from_campus(&campus.config);
//! let mut llf = LeastLoadedFirst::new();
//! let result = SimEngine::new(topology, SimConfig::default())
//!     .run(&campus.demands, &mut llf);
//! assert_eq!(result.records.len(), campus.demands.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod mac;
pub mod metrics;
pub mod radio;
pub mod selector;
pub mod strategies;
pub mod strategy;
mod topology;

pub use engine::{
    CollectSink, DemandSource, EngineError, RebalanceConfig, RecordSink, RunTotals, SimConfig,
    SimEngine, SimResult, SliceSource, StreamSource,
};
pub use selector::{ApCandidate, ApSelector, ApView, DecisionMeta, SelectionContext};
pub use strategy::{BuildContext, Strategy, StrategyCaps, StrategyError, StrategyRegistry};
pub use topology::{ApInfo, Topology};
