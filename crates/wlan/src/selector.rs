//! The AP-selection policy interface and the paper's baseline policies.
//!
//! A policy sees, for each arriving user, the candidate APs of the user's
//! controller domain — each with its current load, capacity and associated
//! users — plus the user's per-AP RSSI. It returns the index of the chosen
//! candidate. Policies may also handle a whole *batch* of simultaneous
//! arrivals (class start); the default batch implementation replays the
//! single-user path against locally tracked placements, which is exactly
//! how an arrival-based controller behaves.
//!
//! # Zero-copy candidate views
//!
//! Policies see candidates through [`ApView`], a **borrowed** window onto
//! the engine's incrementally maintained per-AP state. The association
//! list is a `&[UserId]` slice into the engine's live state — nothing is
//! cloned per candidate per batch (the dominant allocation of the old
//! engine loop, which rebuilt an owned candidate vector for every batch).
//! Owned [`ApCandidate`] values remain available as fixtures for tests,
//! benchmarks and prototypes; [`ApCandidate::as_view`] borrows one.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use s3_types::{ApId, BitsPerSec, Timestamp, UserId};

/// A borrowed view of one candidate AP as seen by a policy at selection
/// time — the zero-copy contract of the event-driven engine.
///
/// The association list is split into two slices so batch placement can
/// extend a view without copying the base state:
///
/// * the **base** slice borrows the engine's live `associated` vector for
///   the AP (everyone connected before this batch);
/// * the **batch** slice holds users placed on the AP *earlier in the same
///   batch* (a controller always knows who it just associated where).
///
/// [`ApView::associated`] iterates both in order; [`ApView::user_count`]
/// counts both. Views are `Copy` — rebuilding a view vector per arrival is
/// a handful of pointer copies, not an allocation per candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApView<'a> {
    /// The AP.
    pub ap: ApId,
    /// Aggregate demand rate currently served by the AP (as of the last
    /// controller load report).
    pub load: BitsPerSec,
    /// Capacity `W(i)`.
    pub capacity: BitsPerSec,
    associated: &'a [UserId],
    batch_added: &'a [UserId],
}

impl<'a> ApView<'a> {
    /// Creates a view borrowing the AP's live association list.
    pub fn new(ap: ApId, load: BitsPerSec, capacity: BitsPerSec, associated: &'a [UserId]) -> Self {
        ApView {
            ap,
            load,
            capacity,
            associated,
            batch_added: &[],
        }
    }

    /// A copy of this view whose batch slice is `batch_added` — users the
    /// caller placed on this AP earlier in the current batch. Replaces any
    /// previous batch slice.
    pub fn with_batch_added<'b>(self, batch_added: &'b [UserId]) -> ApView<'b>
    where
        'a: 'b,
    {
        ApView {
            ap: self.ap,
            load: self.load,
            capacity: self.capacity,
            associated: self.associated,
            batch_added,
        }
    }

    /// Users currently associated with the AP (base state, then any
    /// batch-local placements), in association order.
    pub fn associated(&self) -> impl Iterator<Item = UserId> + '_ {
        self.associated
            .iter()
            .copied()
            .chain(self.batch_added.iter().copied())
    }

    /// Number of currently associated users.
    pub fn user_count(&self) -> usize {
        self.associated.len() + self.batch_added.len()
    }

    /// Whether `user` is associated with the AP.
    pub fn contains(&self, user: UserId) -> bool {
        self.associated.contains(&user) || self.batch_added.contains(&user)
    }

    /// Remaining capacity (zero when overloaded).
    pub fn headroom(&self) -> BitsPerSec {
        self.capacity.saturating_sub(self.load)
    }
}

/// An owned candidate AP — a fixture/builder for tests, benchmarks and
/// prototype controllers that do not replay through [`crate::SimEngine`].
///
/// The engine itself never builds these: policies see [`ApView`]s borrowed
/// from its live per-AP state.
#[derive(Debug, Clone, PartialEq)]
pub struct ApCandidate {
    /// The AP.
    pub ap: ApId,
    /// Aggregate demand rate currently served by the AP.
    pub load: BitsPerSec,
    /// Capacity `W(i)`.
    pub capacity: BitsPerSec,
    /// Users currently associated with the AP.
    pub associated: Vec<UserId>,
}

impl ApCandidate {
    /// Borrows this candidate as the view policies consume.
    pub fn as_view(&self) -> ApView<'_> {
        ApView::new(self.ap, self.load, self.capacity, &self.associated)
    }
}

/// Borrows a slice of owned candidates as a view vector (test/bench
/// convenience mirroring what the engine does with its live state).
pub fn views_of(candidates: &[ApCandidate]) -> Vec<ApView<'_>> {
    candidates.iter().map(ApCandidate::as_view).collect()
}

/// One arriving user within a selection request.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalUser {
    /// The user.
    pub user: UserId,
    /// Arrival instant.
    pub now: Timestamp,
    /// The session's true mean rate — an oracle hint used for load
    /// accounting; honest policies estimate demand from history instead.
    pub demand_hint: BitsPerSec,
    /// RSSI in dBm per candidate AP (parallel to the candidate slice).
    pub rssi: Vec<f64>,
}

/// Everything a policy sees when placing a single user.
#[derive(Debug)]
pub struct SelectionContext<'a> {
    /// The arriving user.
    pub arrival: &'a ArrivalUser,
    /// Candidate APs of the user's controller domain (never empty).
    pub candidates: &'a [ApView<'a>],
}

/// Per-user metadata describing *how* a batch decision was made — the
/// S³-specific facts the decision-trace harness records alongside each
/// placement (see `docs/TRACING.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecisionMeta {
    /// Index of the user's clique within the selection call's clique
    /// partition (largest clique first). `None` for policies that do not
    /// partition arrivals into cliques.
    pub clique: Option<u32>,
    /// Whether a degraded-model fallback (LLF) made the decision instead
    /// of the policy proper.
    pub degraded: bool,
}

/// An AP-selection policy.
///
/// Implementations must return a valid index into `ctx.candidates`.
pub trait ApSelector {
    /// Human-readable policy name (used in experiment output).
    fn name(&self) -> &str;

    /// Decision metadata for the most recent [`ApSelector::select_batch`]
    /// call, parallel to its return value, or `None` when the policy does
    /// not produce any (the default). Consumed by the engine's trace hooks
    /// immediately after each batch selection.
    fn last_batch_meta(&self) -> Option<&[DecisionMeta]> {
        None
    }

    /// Chooses a candidate index for one arriving user.
    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize;

    /// Chooses a candidate index for each member of a simultaneous-arrival
    /// batch (one controller domain, shared snapshot). Returns one index
    /// per user, in order.
    ///
    /// The default implementation applies [`ApSelector::select`]
    /// sequentially, exposing each earlier placement through the views'
    /// batch slices — a controller always knows who it just associated
    /// where. Loads are NOT updated: the future traffic rate of a fresh
    /// arrival is unknown to a real controller (the oracle `demand_hint`
    /// exists for instrumentation only).
    fn select_batch(&mut self, users: &[ArrivalUser], candidates: &[ApView<'_>]) -> Vec<usize> {
        let mut batch_added: Vec<Vec<UserId>> = vec![Vec::new(); candidates.len()];
        let mut picks = Vec::with_capacity(users.len());
        for user in users {
            let pick = {
                let snapshot: Vec<ApView<'_>> = candidates
                    .iter()
                    .zip(&batch_added)
                    .map(|(c, added)| c.with_batch_added(added))
                    .collect();
                let ctx = SelectionContext {
                    arrival: user,
                    candidates: &snapshot,
                };
                self.select(&ctx)
            };
            assert!(pick < candidates.len(), "selector returned invalid index");
            batch_added[pick].push(user.user);
            picks.push(pick);
        }
        picks
    }
}

/// **LLF** — Least Loaded First, the state-of-the-art arrival policy the
/// paper compares against: pick the AP with the least traffic load, break
/// ties by fewer users, then by lower AP id.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoadedFirst;

impl LeastLoadedFirst {
    /// Creates the policy.
    pub fn new() -> Self {
        LeastLoadedFirst
    }
}

impl ApSelector for LeastLoadedFirst {
    fn name(&self) -> &str {
        "llf"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize {
        let mut best = 0;
        for i in 1..ctx.candidates.len() {
            let a = &ctx.candidates[i];
            let b = &ctx.candidates[best];
            let key_a = (a.load.as_f64(), a.user_count(), a.ap);
            let key_b = (b.load.as_f64(), b.user_count(), b.ap);
            if key_a.partial_cmp(&key_b) == Some(std::cmp::Ordering::Less) {
                best = i;
            }
        }
        best
    }
}

/// Least-users variant of LLF: pick the AP with the fewest associated
/// users (the paper notes controllers may balance "the least number of
/// users" instead of load).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastUsers;

impl LeastUsers {
    /// Creates the policy.
    pub fn new() -> Self {
        LeastUsers
    }
}

impl ApSelector for LeastUsers {
    fn name(&self) -> &str {
        "least-users"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize {
        let mut best = 0;
        for i in 1..ctx.candidates.len() {
            let a = &ctx.candidates[i];
            let b = &ctx.candidates[best];
            let key_a = (a.user_count(), a.load.as_f64(), a.ap);
            let key_b = (b.user_count(), b.load.as_f64(), b.ap);
            if key_a.partial_cmp(&key_b) == Some(std::cmp::Ordering::Less) {
                best = i;
            }
        }
        best
    }
}

/// The 802.11 default: associate with the strongest RSSI, ignoring load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrongestRssi;

impl StrongestRssi {
    /// Creates the policy.
    pub fn new() -> Self {
        StrongestRssi
    }
}

impl ApSelector for StrongestRssi {
    fn name(&self) -> &str {
        "strongest-rssi"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize {
        let rssi = &ctx.arrival.rssi;
        let mut best = 0;
        for i in 1..ctx.candidates.len() {
            if rssi[i] > rssi[best] {
                best = i;
            }
        }
        best
    }
}

/// Uniform random choice — the weakest sane baseline.
#[derive(Debug)]
pub struct RandomSelector {
    rng: StdRng,
}

impl RandomSelector {
    /// Creates the policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomSelector {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ApSelector for RandomSelector {
    fn name(&self) -> &str {
        "random"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize {
        self.rng.random_range(0..ctx.candidates.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(ap: u32, load_mbps: f64, users: usize) -> ApCandidate {
        ApCandidate {
            ap: ApId::new(ap),
            load: BitsPerSec::mbps(load_mbps),
            capacity: BitsPerSec::mbps(100.0),
            associated: (0..users as u32).map(|i| UserId::new(1000 + i)).collect(),
        }
    }

    fn arrival(rssi: Vec<f64>) -> ArrivalUser {
        ArrivalUser {
            user: UserId::new(1),
            now: Timestamp::from_secs(0),
            demand_hint: BitsPerSec::mbps(1.0),
            rssi,
        }
    }

    #[test]
    fn llf_picks_least_loaded() {
        let candidates = vec![
            candidate(0, 5.0, 1),
            candidate(1, 2.0, 9),
            candidate(2, 7.0, 0),
        ];
        let views = views_of(&candidates);
        let a = arrival(vec![-50.0, -60.0, -70.0]);
        let ctx = SelectionContext {
            arrival: &a,
            candidates: &views,
        };
        assert_eq!(LeastLoadedFirst::new().select(&ctx), 1);
    }

    #[test]
    fn llf_breaks_ties_by_user_count_then_id() {
        let candidates = vec![
            candidate(3, 2.0, 4),
            candidate(1, 2.0, 2),
            candidate(2, 2.0, 2),
        ];
        let views = views_of(&candidates);
        let a = arrival(vec![-50.0; 3]);
        let ctx = SelectionContext {
            arrival: &a,
            candidates: &views,
        };
        // Loads equal; candidates 1 and 2 tie on users; ap id 1 < 2.
        assert_eq!(LeastLoadedFirst::new().select(&ctx), 1);
    }

    #[test]
    fn least_users_prefers_empty_ap() {
        let candidates = vec![candidate(0, 0.1, 3), candidate(1, 50.0, 0)];
        let views = views_of(&candidates);
        let a = arrival(vec![-50.0, -80.0]);
        let ctx = SelectionContext {
            arrival: &a,
            candidates: &views,
        };
        assert_eq!(LeastUsers::new().select(&ctx), 1);
    }

    #[test]
    fn strongest_rssi_ignores_load() {
        let candidates = vec![candidate(0, 0.0, 0), candidate(1, 99.0, 50)];
        let views = views_of(&candidates);
        let a = arrival(vec![-70.0, -40.0]);
        let ctx = SelectionContext {
            arrival: &a,
            candidates: &views,
        };
        assert_eq!(StrongestRssi::new().select(&ctx), 1);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let candidates = vec![
            candidate(0, 0.0, 0),
            candidate(1, 0.0, 0),
            candidate(2, 0.0, 0),
        ];
        let views = views_of(&candidates);
        let a = arrival(vec![-50.0; 3]);
        let run = |seed| -> Vec<usize> {
            let mut s = RandomSelector::new(seed);
            (0..20)
                .map(|_| {
                    let ctx = SelectionContext {
                        arrival: &a,
                        candidates: &views,
                    };
                    s.select(&ctx)
                })
                .collect()
        };
        let x = run(5);
        assert_eq!(x, run(5));
        assert!(x.iter().all(|&i| i < 3));
        assert_ne!(x, run(6));
    }

    #[test]
    fn default_batch_updates_views_between_users() {
        // Two identical empty APs; LLF must spread two simultaneous users.
        let candidates = vec![candidate(0, 0.0, 0), candidate(1, 0.0, 0)];
        let views = views_of(&candidates);
        let users = vec![
            ArrivalUser {
                user: UserId::new(1),
                now: Timestamp::from_secs(0),
                demand_hint: BitsPerSec::mbps(1.0),
                rssi: vec![-50.0, -50.0],
            },
            ArrivalUser {
                user: UserId::new(2),
                now: Timestamp::from_secs(0),
                demand_hint: BitsPerSec::mbps(1.0),
                rssi: vec![-50.0, -50.0],
            },
        ];
        let picks = LeastLoadedFirst::new().select_batch(&users, &views);
        assert_eq!(picks, vec![0, 1], "second user must see first user's load");
    }

    #[test]
    fn view_merges_base_and_batch_associations() {
        let base = [UserId::new(1), UserId::new(2)];
        let fresh = [UserId::new(9)];
        let view = ApView::new(
            ApId::new(0),
            BitsPerSec::ZERO,
            BitsPerSec::mbps(100.0),
            &base,
        )
        .with_batch_added(&fresh);
        assert_eq!(view.user_count(), 3);
        assert!(view.contains(UserId::new(2)));
        assert!(view.contains(UserId::new(9)));
        assert!(!view.contains(UserId::new(3)));
        let seen: Vec<UserId> = view.associated().collect();
        assert_eq!(seen, vec![UserId::new(1), UserId::new(2), UserId::new(9)]);
    }

    #[test]
    fn headroom_saturates() {
        let c = ApCandidate {
            ap: ApId::new(0),
            load: BitsPerSec::mbps(120.0),
            capacity: BitsPerSec::mbps(100.0),
            associated: vec![],
        };
        assert_eq!(c.as_view().headroom(), BitsPerSec::ZERO);
    }
}
