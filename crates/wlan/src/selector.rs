//! The AP-selection policy interface and the paper's baseline policies.
//!
//! A policy sees, for each arriving user, the candidate APs of the user's
//! controller domain — each with its current load, capacity and associated
//! users — plus the user's per-AP RSSI. It returns the index of the chosen
//! candidate. Policies may also handle a whole *batch* of simultaneous
//! arrivals (class start); the default batch implementation replays the
//! single-user path against a locally updated snapshot, which is exactly
//! how an arrival-based controller behaves.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use s3_types::{ApId, BitsPerSec, Timestamp, UserId};

/// A candidate AP as seen by the policy at selection time.
#[derive(Debug, Clone, PartialEq)]
pub struct ApCandidate {
    /// The AP.
    pub ap: ApId,
    /// Aggregate demand rate currently served by the AP.
    pub load: BitsPerSec,
    /// Capacity `W(i)`.
    pub capacity: BitsPerSec,
    /// Users currently associated with the AP.
    pub associated: Vec<UserId>,
}

impl ApCandidate {
    /// Number of currently associated users.
    pub fn user_count(&self) -> usize {
        self.associated.len()
    }

    /// Remaining capacity (zero when overloaded).
    pub fn headroom(&self) -> BitsPerSec {
        self.capacity.saturating_sub(self.load)
    }
}

/// One arriving user within a selection request.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalUser {
    /// The user.
    pub user: UserId,
    /// Arrival instant.
    pub now: Timestamp,
    /// The session's true mean rate — an oracle hint used for load
    /// accounting; honest policies estimate demand from history instead.
    pub demand_hint: BitsPerSec,
    /// RSSI in dBm per candidate AP (parallel to the candidate slice).
    pub rssi: Vec<f64>,
}

/// Everything a policy sees when placing a single user.
#[derive(Debug)]
pub struct SelectionContext<'a> {
    /// The arriving user.
    pub arrival: &'a ArrivalUser,
    /// Candidate APs of the user's controller domain (never empty).
    pub candidates: &'a [ApCandidate],
}

/// An AP-selection policy.
///
/// Implementations must return a valid index into `ctx.candidates`.
pub trait ApSelector {
    /// Human-readable policy name (used in experiment output).
    fn name(&self) -> &str;

    /// Chooses a candidate index for one arriving user.
    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize;

    /// Chooses a candidate index for each member of a simultaneous-arrival
    /// batch (one controller domain, shared snapshot). Returns one index
    /// per user, in order.
    ///
    /// The default implementation applies [`ApSelector::select`]
    /// sequentially, updating the *association* lists of a local snapshot
    /// after each placement — a controller always knows who it just
    /// associated where. Loads are NOT updated: the future traffic rate of
    /// a fresh arrival is unknown to a real controller (the oracle
    /// `demand_hint` exists for instrumentation only).
    fn select_batch(&mut self, users: &[ArrivalUser], candidates: &[ApCandidate]) -> Vec<usize> {
        let mut snapshot: Vec<ApCandidate> = candidates.to_vec();
        let mut picks = Vec::with_capacity(users.len());
        for user in users {
            let pick = {
                let ctx = SelectionContext {
                    arrival: user,
                    candidates: &snapshot,
                };
                self.select(&ctx)
            };
            assert!(pick < snapshot.len(), "selector returned invalid index");
            snapshot[pick].associated.push(user.user);
            picks.push(pick);
        }
        picks
    }
}

/// **LLF** — Least Loaded First, the state-of-the-art arrival policy the
/// paper compares against: pick the AP with the least traffic load, break
/// ties by fewer users, then by lower AP id.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoadedFirst;

impl LeastLoadedFirst {
    /// Creates the policy.
    pub fn new() -> Self {
        LeastLoadedFirst
    }
}

impl ApSelector for LeastLoadedFirst {
    fn name(&self) -> &str {
        "llf"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize {
        let mut best = 0;
        for i in 1..ctx.candidates.len() {
            let a = &ctx.candidates[i];
            let b = &ctx.candidates[best];
            let key_a = (a.load.as_f64(), a.user_count(), a.ap);
            let key_b = (b.load.as_f64(), b.user_count(), b.ap);
            if key_a.partial_cmp(&key_b) == Some(std::cmp::Ordering::Less) {
                best = i;
            }
        }
        best
    }
}

/// Least-users variant of LLF: pick the AP with the fewest associated
/// users (the paper notes controllers may balance "the least number of
/// users" instead of load).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastUsers;

impl LeastUsers {
    /// Creates the policy.
    pub fn new() -> Self {
        LeastUsers
    }
}

impl ApSelector for LeastUsers {
    fn name(&self) -> &str {
        "least-users"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize {
        let mut best = 0;
        for i in 1..ctx.candidates.len() {
            let a = &ctx.candidates[i];
            let b = &ctx.candidates[best];
            let key_a = (a.user_count(), a.load.as_f64(), a.ap);
            let key_b = (b.user_count(), b.load.as_f64(), b.ap);
            if key_a.partial_cmp(&key_b) == Some(std::cmp::Ordering::Less) {
                best = i;
            }
        }
        best
    }
}

/// The 802.11 default: associate with the strongest RSSI, ignoring load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrongestRssi;

impl StrongestRssi {
    /// Creates the policy.
    pub fn new() -> Self {
        StrongestRssi
    }
}

impl ApSelector for StrongestRssi {
    fn name(&self) -> &str {
        "strongest-rssi"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize {
        let rssi = &ctx.arrival.rssi;
        let mut best = 0;
        for i in 1..ctx.candidates.len() {
            if rssi[i] > rssi[best] {
                best = i;
            }
        }
        best
    }
}

/// Uniform random choice — the weakest sane baseline.
#[derive(Debug)]
pub struct RandomSelector {
    rng: StdRng,
}

impl RandomSelector {
    /// Creates the policy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomSelector {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ApSelector for RandomSelector {
    fn name(&self) -> &str {
        "random"
    }

    fn select(&mut self, ctx: &SelectionContext<'_>) -> usize {
        self.rng.random_range(0..ctx.candidates.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(ap: u32, load_mbps: f64, users: usize) -> ApCandidate {
        ApCandidate {
            ap: ApId::new(ap),
            load: BitsPerSec::mbps(load_mbps),
            capacity: BitsPerSec::mbps(100.0),
            associated: (0..users as u32).map(|i| UserId::new(1000 + i)).collect(),
        }
    }

    fn arrival(rssi: Vec<f64>) -> ArrivalUser {
        ArrivalUser {
            user: UserId::new(1),
            now: Timestamp::from_secs(0),
            demand_hint: BitsPerSec::mbps(1.0),
            rssi,
        }
    }

    #[test]
    fn llf_picks_least_loaded() {
        let candidates = vec![
            candidate(0, 5.0, 1),
            candidate(1, 2.0, 9),
            candidate(2, 7.0, 0),
        ];
        let a = arrival(vec![-50.0, -60.0, -70.0]);
        let ctx = SelectionContext {
            arrival: &a,
            candidates: &candidates,
        };
        assert_eq!(LeastLoadedFirst::new().select(&ctx), 1);
    }

    #[test]
    fn llf_breaks_ties_by_user_count_then_id() {
        let candidates = vec![
            candidate(3, 2.0, 4),
            candidate(1, 2.0, 2),
            candidate(2, 2.0, 2),
        ];
        let a = arrival(vec![-50.0; 3]);
        let ctx = SelectionContext {
            arrival: &a,
            candidates: &candidates,
        };
        // Loads equal; candidates 1 and 2 tie on users; ap id 1 < 2.
        assert_eq!(LeastLoadedFirst::new().select(&ctx), 1);
    }

    #[test]
    fn least_users_prefers_empty_ap() {
        let candidates = vec![candidate(0, 0.1, 3), candidate(1, 50.0, 0)];
        let a = arrival(vec![-50.0, -80.0]);
        let ctx = SelectionContext {
            arrival: &a,
            candidates: &candidates,
        };
        assert_eq!(LeastUsers::new().select(&ctx), 1);
    }

    #[test]
    fn strongest_rssi_ignores_load() {
        let candidates = vec![candidate(0, 0.0, 0), candidate(1, 99.0, 50)];
        let a = arrival(vec![-70.0, -40.0]);
        let ctx = SelectionContext {
            arrival: &a,
            candidates: &candidates,
        };
        assert_eq!(StrongestRssi::new().select(&ctx), 1);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let candidates = vec![
            candidate(0, 0.0, 0),
            candidate(1, 0.0, 0),
            candidate(2, 0.0, 0),
        ];
        let a = arrival(vec![-50.0; 3]);
        let run = |seed| -> Vec<usize> {
            let mut s = RandomSelector::new(seed);
            (0..20)
                .map(|_| {
                    let ctx = SelectionContext {
                        arrival: &a,
                        candidates: &candidates,
                    };
                    s.select(&ctx)
                })
                .collect()
        };
        let x = run(5);
        assert_eq!(x, run(5));
        assert!(x.iter().all(|&i| i < 3));
        assert_ne!(x, run(6));
    }

    #[test]
    fn default_batch_updates_snapshot_between_users() {
        // Two identical empty APs; LLF must spread two simultaneous users.
        let candidates = vec![candidate(0, 0.0, 0), candidate(1, 0.0, 0)];
        let users = vec![
            ArrivalUser {
                user: UserId::new(1),
                now: Timestamp::from_secs(0),
                demand_hint: BitsPerSec::mbps(1.0),
                rssi: vec![-50.0, -50.0],
            },
            ArrivalUser {
                user: UserId::new(2),
                now: Timestamp::from_secs(0),
                demand_hint: BitsPerSec::mbps(1.0),
                rssi: vec![-50.0, -50.0],
            },
        ];
        let picks = LeastLoadedFirst::new().select_batch(&users, &candidates);
        assert_eq!(picks, vec![0, 1], "second user must see first user's load");
    }

    #[test]
    fn headroom_saturates() {
        let c = ApCandidate {
            ap: ApId::new(0),
            load: BitsPerSec::mbps(120.0),
            capacity: BitsPerSec::mbps(100.0),
            associated: vec![],
        };
        assert_eq!(c.headroom(), BitsPerSec::ZERO);
    }
}
