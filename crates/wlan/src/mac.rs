//! An 802.11 MAC/PHY capacity model and saturation analysis.
//!
//! The paper's bandwidth constraint `Σ w(u) ≤ W(i)` abstracts a real
//! phenomenon: an AP shares *airtime* among its stations, and a station's
//! achievable rate depends on its PHY modulation (which falls with RSSI).
//! This module makes that concrete:
//!
//! * [`phy_rate_from_rssi`] — an 802.11g-style rate-adaptation ladder;
//! * [`airtime_throughputs`] — water-filling airtime-fair allocation: every
//!   station gets an equal share of airtime, shares unused by satisfied
//!   stations are redistributed;
//! * [`saturation_stats`] — replay a session log against the model and
//!   report how often APs saturate and how much of the offered demand is
//!   actually servable. Spreading load across APs (what S³ does) directly
//!   reduces saturated AP-time.

use s3_trace::TraceStore;
use s3_types::{BitsPerSec, TimeDelta, Timestamp};

use crate::radio::{distance, rssi_at, session_position, SENSITIVITY_DBM};
use crate::topology::Topology;

/// Fraction of the PHY rate usable as MAC-layer goodput (preambles, ACKs,
/// contention).
pub const MAC_EFFICIENCY: f64 = 0.6;

/// 802.11g-style rate adaptation: PHY rate as a step function of RSSI.
///
/// Below the sensitivity floor the station cannot associate (rate 0).
pub fn phy_rate_from_rssi(rssi_dbm: f64) -> BitsPerSec {
    let mbps = if rssi_dbm >= -65.0 {
        54.0
    } else if rssi_dbm >= -70.0 {
        48.0
    } else if rssi_dbm >= -74.0 {
        36.0
    } else if rssi_dbm >= -78.0 {
        24.0
    } else if rssi_dbm >= -80.0 {
        18.0
    } else if rssi_dbm >= -82.0 {
        12.0
    } else if rssi_dbm >= -85.0 {
        9.0
    } else if rssi_dbm >= SENSITIVITY_DBM {
        6.0
    } else {
        return BitsPerSec::ZERO;
    };
    BitsPerSec::mbps(mbps)
}

/// One station's offered load at an AP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationDemand {
    /// The station's MAC-layer capacity when it holds the medium alone.
    pub solo_rate: BitsPerSec,
    /// The station's offered (demanded) rate.
    pub demand: BitsPerSec,
}

/// Result of an airtime allocation at one AP.
#[derive(Debug, Clone, PartialEq)]
pub struct AirtimeAllocation {
    /// Served rate per station, parallel to the input.
    pub served: Vec<BitsPerSec>,
    /// Fraction of airtime in use, `0..=1` (1 = saturated).
    pub utilization: f64,
}

/// Water-filling airtime-fair allocation.
///
/// Each station needs `demand / solo_rate` of the AP's airtime to be fully
/// served. If the total need exceeds the budget (1.0), airtime is divided
/// equally, with slack from under-demanding stations redistributed until a
/// fixed point — the standard model of 802.11 airtime fairness.
pub fn airtime_throughputs(stations: &[StationDemand]) -> AirtimeAllocation {
    let n = stations.len();
    if n == 0 {
        return AirtimeAllocation {
            served: Vec::new(),
            utilization: 0.0,
        };
    }
    // Airtime each station wants; stations with zero solo rate are
    // unservable and consume nothing.
    let wanted: Vec<f64> = stations
        .iter()
        .map(|s| {
            if s.solo_rate.as_f64() <= 0.0 {
                0.0
            } else {
                s.demand.as_f64() / s.solo_rate.as_f64()
            }
        })
        .collect();
    let total_wanted: f64 = wanted.iter().sum();
    if total_wanted <= 1.0 {
        // Unsaturated: everyone gets their demand.
        let served = stations
            .iter()
            .map(|s| {
                if s.solo_rate.as_f64() <= 0.0 {
                    BitsPerSec::ZERO
                } else {
                    s.demand
                }
            })
            .collect();
        return AirtimeAllocation {
            served,
            utilization: total_wanted,
        };
    }
    // Saturated: iterative equal-share with redistribution.
    let mut share = vec![0.0f64; n];
    let mut satisfied = vec![false; n];
    let mut budget = 1.0f64;
    let mut open: Vec<usize> = (0..n).filter(|&i| wanted[i] > 0.0).collect();
    loop {
        if open.is_empty() || budget <= 1e-12 {
            break;
        }
        let per = budget / open.len() as f64;
        let newly: Vec<usize> = open
            .iter()
            .copied()
            .filter(|&i| wanted[i] - share[i] <= per)
            .collect();
        if newly.is_empty() {
            // No station can be fully satisfied: equal split and done.
            for &i in &open {
                share[i] += per;
            }
            break;
        }
        for &i in &newly {
            budget -= wanted[i] - share[i];
            share[i] = wanted[i];
            satisfied[i] = true;
        }
        open.retain(|&i| !satisfied[i]);
    }
    let served = stations
        .iter()
        .zip(&share)
        .map(|(s, &a)| BitsPerSec::new(a * s.solo_rate.as_f64()))
        .collect();
    AirtimeAllocation {
        served,
        utilization: 1.0,
    }
}

/// Saturation metrics of a session log replayed against the MAC model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationStats {
    /// `(AP, bin)` pairs with at least one associated station.
    pub active_ap_bins: usize,
    /// Of those, pairs where the airtime budget was exhausted.
    pub saturated_ap_bins: usize,
    /// Served / offered rate, aggregated over every station-bin.
    pub demand_satisfaction: f64,
}

impl SaturationStats {
    /// Fraction of active AP-bins that saturated.
    pub fn saturation_fraction(&self) -> f64 {
        if self.active_ap_bins == 0 {
            0.0
        } else {
            self.saturated_ap_bins as f64 / self.active_ap_bins as f64
        }
    }
}

/// Replays `store` against the MAC model: in every `bin`, the stations on
/// each AP contend for airtime with their session mean rate as offered
/// load and a PHY rate from their session position.
///
/// # Panics
///
/// Panics if `bin` is zero.
pub fn saturation_stats(
    store: &TraceStore,
    topology: &Topology,
    bin: TimeDelta,
) -> SaturationStats {
    assert!(!bin.is_zero(), "bin width must be positive");
    let Some((first_day, last_day)) = store.day_range() else {
        return SaturationStats {
            active_ap_bins: 0,
            saturated_ap_bins: 0,
            demand_satisfaction: 1.0,
        };
    };
    let start = Timestamp::from_secs(first_day * s3_types::SECS_PER_DAY);
    let end = Timestamp::from_secs((last_day + 1) * s3_types::SECS_PER_DAY);

    let mut active = 0usize;
    let mut saturated = 0usize;
    let mut offered_total = 0.0f64;
    let mut served_total = 0.0f64;

    let mut t = start;
    while t < end {
        let to = t + bin;
        // Group live sessions per AP.
        let mut per_ap: std::collections::HashMap<s3_types::ApId, Vec<StationDemand>> =
            std::collections::HashMap::new();
        for r in store.sessions_overlapping(t, to) {
            let Some(info) = topology.ap(r.ap) else {
                continue;
            };
            let pos = session_position(r.user, r.connect);
            let rssi = rssi_at(distance(pos, info.position));
            let solo = BitsPerSec::new(phy_rate_from_rssi(rssi).as_f64() * MAC_EFFICIENCY);
            per_ap.entry(r.ap).or_default().push(StationDemand {
                solo_rate: solo,
                demand: r.mean_rate(),
            });
        }
        for stations in per_ap.values() {
            let allocation = airtime_throughputs(stations);
            active += 1;
            if allocation.utilization >= 1.0 - 1e-9 {
                saturated += 1;
            }
            for (s, served) in stations.iter().zip(&allocation.served) {
                offered_total += s.demand.as_f64();
                served_total += served.as_f64().min(s.demand.as_f64());
            }
        }
        t = to;
    }
    SaturationStats {
        active_ap_bins: active,
        saturated_ap_bins: saturated,
        demand_satisfaction: if offered_total > 0.0 {
            served_total / offered_total
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn station(solo_mbps: f64, demand_mbps: f64) -> StationDemand {
        StationDemand {
            solo_rate: BitsPerSec::mbps(solo_mbps),
            demand: BitsPerSec::mbps(demand_mbps),
        }
    }

    #[test]
    fn phy_ladder_is_monotone_in_rssi() {
        let mut last = f64::INFINITY;
        for rssi in [
            -60.0, -68.0, -72.0, -76.0, -79.0, -81.0, -84.0, -89.0, -95.0,
        ] {
            let rate = phy_rate_from_rssi(rssi).as_f64();
            assert!(rate <= last, "rate must fall with RSSI");
            last = rate;
        }
        assert_eq!(phy_rate_from_rssi(-60.0), BitsPerSec::mbps(54.0));
        assert_eq!(phy_rate_from_rssi(-95.0), BitsPerSec::ZERO);
    }

    #[test]
    fn unsaturated_ap_serves_all_demand() {
        let stations = vec![station(30.0, 2.0), station(30.0, 3.0)];
        let a = airtime_throughputs(&stations);
        assert_eq!(a.served[0], BitsPerSec::mbps(2.0));
        assert_eq!(a.served[1], BitsPerSec::mbps(3.0));
        assert!((a.utilization - 5.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn saturated_ap_splits_airtime_equally() {
        // Two greedy stations at the same rate: half the airtime each.
        let stations = vec![station(30.0, 100.0), station(30.0, 100.0)];
        let a = airtime_throughputs(&stations);
        assert!((a.served[0].as_f64() - 15e6).abs() < 1.0);
        assert!((a.served[1].as_f64() - 15e6).abs() < 1.0);
        assert_eq!(a.utilization, 1.0);
    }

    #[test]
    fn slow_station_drags_airtime_not_others_rate() {
        // The 802.11 anomaly: a slow greedy station takes half the airtime;
        // the fast one still gets rate ∝ its own PHY.
        let stations = vec![station(6.0, 100.0), station(54.0, 100.0)];
        let a = airtime_throughputs(&stations);
        assert!((a.served[0].as_f64() - 3e6).abs() < 1.0);
        assert!((a.served[1].as_f64() - 27e6).abs() < 1.0);
    }

    #[test]
    fn water_filling_redistributes_slack() {
        // One light user (needs 10% airtime), two greedy ones: the greedy
        // pair splits the remaining 90%.
        let stations = vec![
            station(30.0, 3.0),
            station(30.0, 100.0),
            station(30.0, 100.0),
        ];
        let a = airtime_throughputs(&stations);
        assert!(
            (a.served[0].as_f64() - 3e6).abs() < 1.0,
            "light user fully served"
        );
        assert!((a.served[1].as_f64() - 13.5e6).abs() < 1e3);
        assert!((a.served[2].as_f64() - 13.5e6).abs() < 1e3);
    }

    #[test]
    fn unservable_station_gets_zero() {
        let stations = vec![station(0.0, 5.0), station(30.0, 5.0)];
        let a = airtime_throughputs(&stations);
        assert_eq!(a.served[0], BitsPerSec::ZERO);
        assert_eq!(a.served[1], BitsPerSec::mbps(5.0));
    }

    #[test]
    fn empty_ap_is_idle() {
        let a = airtime_throughputs(&[]);
        assert!(a.served.is_empty());
        assert_eq!(a.utilization, 0.0);
    }

    #[test]
    fn saturation_stats_on_a_synthetic_log() {
        use crate::selector::LeastLoadedFirst;
        use crate::{SimConfig, SimEngine, Topology};
        use s3_trace::generator::{CampusConfig, CampusGenerator};
        let campus = CampusGenerator::new(CampusConfig::tiny(), 5).generate();
        let topology = Topology::from_campus(&campus.config);
        let engine = SimEngine::new(topology.clone(), SimConfig::default());
        let log = TraceStore::new(
            engine
                .run(&campus.demands, &mut LeastLoadedFirst::new())
                .records,
        );
        let stats = saturation_stats(&log, &topology, TimeDelta::minutes(30));
        assert!(stats.active_ap_bins > 0);
        assert!(stats.saturated_ap_bins <= stats.active_ap_bins);
        assert!((0.0..=1.0).contains(&stats.demand_satisfaction));
        assert!((0.0..=1.0).contains(&stats.saturation_fraction()));
    }

    #[test]
    fn empty_log_has_perfect_satisfaction() {
        use crate::Topology;
        use s3_trace::generator::CampusConfig;
        let topology = Topology::from_campus(&CampusConfig::tiny());
        let stats = saturation_stats(&TraceStore::new(vec![]), &topology, TimeDelta::minutes(10));
        assert_eq!(stats.active_ap_bins, 0);
        assert_eq!(stats.demand_satisfaction, 1.0);
        assert_eq!(stats.saturation_fraction(), 0.0);
    }
}
