//! The trace-replay simulation engine.
//!
//! Replays a time-sorted [`SessionDemand`] stream against a [`Topology`]
//! under an [`ApSelector`] policy:
//!
//! 1. departures scheduled before the next arrival are applied (load and
//!    association state release);
//! 2. arrivals falling inside one batching window are grouped per
//!    controller and handed to the policy as a batch (a class start is a
//!    burst of simultaneous arrivals — precisely the case where the S³
//!    clique logic matters);
//! 3. each placement is logged as a [`SessionRecord`] and its departure is
//!    scheduled.
//!
//! Load accounting uses each session's true mean rate — the simulator's
//! equivalent of the paper's "served traffic amount" field. Policies do
//! *not* see that live load: they see per-AP loads as of the last counter
//! report ([`SimConfig::load_report_interval`]), which is what makes the
//! incumbent least-load controller herd arrival bursts.
//!
//! The engine can also run an **online rebalancer**
//! ([`SimConfig::rebalance`]) that periodically migrates sessions from the
//! most- to the least-loaded AP — the "other category" of load balancing
//! the paper contrasts with: excellent balance, at the price of counted
//! connection disruptions. A migrated session is split into per-AP
//! [`SessionRecord`] segments with its volume divided proportionally.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use s3_obs::{Desc, HistogramDesc, Stability, Unit};
use s3_trace::{SessionDemand, SessionRecord};
use s3_types::{
    ApId, BitsPerSec, Bytes, ControllerId, TimeDelta, Timestamp, UserId, APP_CATEGORY_COUNT,
};

use crate::radio::{distance, rssi_at, session_position};
use crate::selector::{ApCandidate, ApSelector, ArrivalUser};
use crate::topology::Topology;

// Replay-engine metrics (documented in docs/METRICS.md). The engine is
// sequential within a run, and sweep binaries that replay many scenarios in
// parallel only ever *add* (u64 addition is associative), so every value
// here is a pure function of the demand stream and topology.
static RUNS: Desc = Desc {
    name: "wlan.engine.runs",
    help: "Replay runs executed",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static DEMANDS: Desc = Desc {
    name: "wlan.engine.demands",
    help: "Session demands fed into replay runs",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static BATCHES: Desc = Desc {
    name: "wlan.engine.batches",
    help: "Arrival batches presented to the selection policy",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static BATCH_SIZE: HistogramDesc = HistogramDesc {
    name: "wlan.engine.batch_size",
    help: "Arrivals grouped into each batch window",
    unit: Unit::Count,
    stability: Stability::Stable,
    bounds: &[1, 2, 4, 8, 16, 32, 64],
};
static PLACEMENTS: Desc = Desc {
    name: "wlan.engine.placements",
    help: "Sessions placed on an AP by the policy",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static REJECTED: Desc = Desc {
    name: "wlan.engine.rejected",
    help: "Demands with no candidate AP (controller without APs)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static DEPARTURES: Desc = Desc {
    name: "wlan.engine.departures",
    help: "Sessions closed at their scheduled departure time",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static MIGRATIONS: Desc = Desc {
    name: "wlan.engine.migrations",
    help: "Mid-session migrations performed by the online rebalancer",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static LOAD_REPORTS: Desc = Desc {
    name: "wlan.engine.load_reports",
    help: "Controller load-report refreshes (policies see loads as of the last one)",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static REBALANCE_ROUNDS: Desc = Desc {
    name: "wlan.engine.rebalance_rounds",
    help: "Online-rebalancer rounds executed",
    unit: Unit::Count,
    stability: Stability::Stable,
};
static AP_LOAD_KBPS: HistogramDesc = HistogramDesc {
    name: "wlan.engine.ap_load_kbps",
    help: "Per-AP load sampled at every controller report refresh",
    unit: Unit::Kbps,
    stability: Stability::Stable,
    bounds: &[100, 1_000, 5_000, 10_000, 25_000, 50_000, 100_000],
};
static RUN_MICROS: HistogramDesc = HistogramDesc {
    name: "wlan.engine.run_micros",
    help: "Wall-clock duration of each replay run",
    unit: Unit::Micros,
    stability: Stability::Volatile,
    bounds: &[
        10_000,
        100_000,
        1_000_000,
        10_000_000,
        60_000_000,
        600_000_000,
    ],
};
static UNSORTED_RECOVERIES: Desc = Desc {
    name: "wlan.engine.unsorted_recoveries",
    help: "Replay inputs that arrived out of order and were re-sorted",
    unit: Unit::Count,
    stability: Stability::Stable,
};

/// Online-rebalancer settings (the migrating baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceConfig {
    /// How often the rebalancer runs.
    pub interval: TimeDelta,
    /// Maximum migrations per controller per round.
    pub max_moves_per_round: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            interval: TimeDelta::minutes(5),
            max_moves_per_round: 8,
        }
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Arrivals within this window of the batch head are presented to the
    /// policy together (per controller). Zero disables batching.
    pub batch_window: TimeDelta,
    /// How often APs report traffic counters to the controller. Policies
    /// see the load *as of the last report* — the classic SNMP-style
    /// polling lag that makes pure least-load controllers herd bursts of
    /// arrivals onto one AP. Associations (who is connected where) are
    /// always live: the controller mediates them itself. Zero disables the
    /// lag (policies see live load — an oracle baseline).
    pub load_report_interval: TimeDelta,
    /// Optional online rebalancer: periodically migrates sessions off the
    /// most-loaded AP. `None` (the default) keeps every session where the
    /// policy placed it — the paper's "user-friendly" regime.
    pub rebalance: Option<RebalanceConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            batch_window: TimeDelta::secs(30),
            load_report_interval: TimeDelta::minutes(5),
            rebalance: None,
        }
    }
}

/// Output of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Session records, sorted by connect time. Without rebalancing,
    /// exactly one record per demand; with it, migrated sessions appear as
    /// several per-AP segments whose volumes sum to the demand's.
    pub records: Vec<SessionRecord>,
    /// Demands that could not be placed (no candidate AP — topology
    /// mismatch; normally zero).
    pub rejected: usize,
    /// Mid-session migrations performed by the rebalancer (each one is a
    /// user-visible connection disruption).
    pub migrations: usize,
}

#[derive(Debug, Clone, Default)]
struct ApState {
    load: BitsPerSec,
    associated: Vec<UserId>,
}

/// A live session being served.
#[derive(Debug, Clone)]
struct Active {
    user: UserId,
    controller: ControllerId,
    ap: ApId,
    rate: BitsPerSec,
    depart: Timestamp,
    /// Start of the current segment (arrival, or the last migration).
    segment_start: Timestamp,
    /// Volume not yet attributed to a closed segment.
    remaining: [Bytes; APP_CATEGORY_COUNT],
}

impl Active {
    /// Closes the current segment at `end`, emitting a record carrying the
    /// proportional share of the remaining volume (the final segment takes
    /// everything left, so totals are conserved exactly).
    fn close_segment(&mut self, end: Timestamp, is_final: bool) -> SessionRecord {
        let mut volume = [Bytes::ZERO; APP_CATEGORY_COUNT];
        if is_final {
            volume = self.remaining;
            self.remaining = [Bytes::ZERO; APP_CATEGORY_COUNT];
        } else {
            let total_left = self.depart.saturating_sub(self.segment_start).as_secs_f64();
            let seg = end.saturating_sub(self.segment_start).as_secs_f64();
            let frac = if total_left > 0.0 {
                (seg / total_left).clamp(0.0, 1.0)
            } else {
                1.0
            };
            for (slot, rem) in volume.iter_mut().zip(self.remaining.iter_mut()) {
                let take = Bytes::new((rem.as_f64() * frac) as u64);
                *slot = take;
                *rem -= take;
            }
        }
        let record = SessionRecord {
            user: self.user,
            ap: self.ap,
            controller: self.controller,
            connect: self.segment_start,
            disconnect: end,
            volume_by_app: volume,
        };
        self.segment_start = end;
        record
    }
}

struct RunState {
    state: Vec<ApState>,
    reported: Vec<BitsPerSec>,
    sessions: Vec<Option<Active>>,
    records: Vec<SessionRecord>,
    migrations: usize,
}

/// The replay engine.
#[derive(Debug)]
pub struct SimEngine {
    topology: Topology,
    config: SimConfig,
}

impl SimEngine {
    /// Creates an engine over `topology`.
    pub fn new(topology: Topology, config: SimConfig) -> Self {
        SimEngine { topology, config }
    }

    /// The engine's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// [`SimEngine::run`] for demand streams that may be out of arrival
    /// order — e.g. recovered leniently from a clock-skewed or
    /// fault-injected log. When a resort is needed the demands are copied,
    /// sorted by `(arrive, user)` (the canonical deterministic order) and
    /// the recovery is counted in `wlan.engine.unsorted_recoveries`;
    /// already-sorted input delegates directly with no copy.
    pub fn run_unsorted(
        &self,
        demands: &[SessionDemand],
        selector: &mut dyn ApSelector,
    ) -> SimResult {
        if demands.windows(2).all(|w| w[0].arrive <= w[1].arrive) {
            return self.run(demands, selector);
        }
        s3_obs::global().counter(&UNSORTED_RECOVERIES).inc();
        let mut sorted = demands.to_vec();
        sorted.sort_by_key(|d| (d.arrive, d.user));
        self.run(&sorted, selector)
    }

    /// Replays `demands` (must be sorted by arrival time) under `selector`.
    /// Use [`SimEngine::run_unsorted`] for streams of unknown order.
    ///
    /// # Panics
    ///
    /// Panics if `demands` is not sorted by arrival time, or if the
    /// selector returns an out-of-range candidate index.
    pub fn run(&self, demands: &[SessionDemand], selector: &mut dyn ApSelector) -> SimResult {
        assert!(
            demands.windows(2).all(|w| w[0].arrive <= w[1].arrive),
            "demands must be sorted by arrival time"
        );
        let registry = s3_obs::global();
        let _span = registry.timer(&RUN_MICROS);
        registry.counter(&RUNS).inc();
        registry.counter(&DEMANDS).add(demands.len() as u64);
        let batches = registry.counter(&BATCHES);
        let batch_size = registry.histogram(&BATCH_SIZE);
        let placements = registry.counter(&PLACEMENTS);
        let load_reports = registry.counter(&LOAD_REPORTS);
        let ap_load_kbps = registry.histogram(&AP_LOAD_KBPS);
        let ap_count = self.topology.ap_count();
        let mut run = RunState {
            state: vec![ApState::default(); ap_count],
            reported: vec![BitsPerSec::ZERO; ap_count],
            sessions: Vec::new(),
            records: Vec::with_capacity(demands.len()),
            migrations: 0,
        };
        let mut last_report: Option<u64> = None;
        let mut last_rebalance: Option<u64> = None;
        // Departure queue: (depart seconds, session index).
        let mut departures: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        let mut rejected = 0usize;

        let mut i = 0;
        while i < demands.len() {
            let batch_head = demands[i].arrive;
            Self::apply_departures(&mut run, &mut departures, batch_head);

            // Periodic online rebalancing (live load view: the rebalancer
            // is the idealized "other category" — maximal balance, counted
            // disruptions).
            if let Some(rb) = self.config.rebalance.clone() {
                if !rb.interval.is_zero() {
                    let epoch = batch_head.as_secs() / rb.interval.as_secs();
                    if last_rebalance != Some(epoch) {
                        self.rebalance(&mut run, batch_head, &rb);
                        last_rebalance = Some(epoch);
                    }
                }
            }

            // Refresh the controller's load view at report-epoch boundaries.
            let epoch = if self.config.load_report_interval.is_zero() {
                None
            } else {
                Some(batch_head.as_secs() / self.config.load_report_interval.as_secs())
            };
            if epoch.is_none() || last_report != epoch {
                load_reports.inc();
                for (r, s) in run.reported.iter_mut().zip(&run.state) {
                    *r = s.load;
                    ap_load_kbps.observe((s.load.as_f64() / 1_000.0) as u64);
                }
                last_report = epoch;
            }

            // Collect the batch.
            let mut j = i;
            while j < demands.len() && demands[j].arrive <= batch_head + self.config.batch_window {
                j += 1;
            }
            let batch = &demands[i..j];
            batches.inc();
            batch_size.observe(batch.len() as u64);

            // Group the batch by controller, preserving arrival order.
            let mut controllers: Vec<ControllerId> = Vec::new();
            for d in batch {
                if !controllers.contains(&d.controller) {
                    controllers.push(d.controller);
                }
            }
            for controller in controllers {
                let group: Vec<&SessionDemand> = batch
                    .iter()
                    .filter(|d| d.controller == controller)
                    .collect();
                let aps = self.topology.aps_of_controller(controller);
                if aps.is_empty() {
                    rejected += group.len();
                    continue;
                }
                let candidates: Vec<ApCandidate> = aps
                    .iter()
                    .map(|&ap| ApCandidate {
                        ap,
                        load: run.reported[ap.index()],
                        capacity: self.topology.ap(ap).expect("ap exists").capacity,
                        associated: run.state[ap.index()].associated.clone(),
                    })
                    .collect();
                let users: Vec<ArrivalUser> = group
                    .iter()
                    .map(|d| {
                        let pos = session_position(d.user, d.arrive);
                        let rssi = aps
                            .iter()
                            .map(|&ap| {
                                rssi_at(distance(
                                    pos,
                                    self.topology.ap(ap).expect("ap exists").position,
                                ))
                            })
                            .collect();
                        ArrivalUser {
                            user: d.user,
                            now: d.arrive,
                            demand_hint: d.mean_rate(),
                            rssi,
                        }
                    })
                    .collect();
                let picks = selector.select_batch(&users, &candidates);
                assert_eq!(picks.len(), users.len(), "one pick per user required");
                placements.add(picks.len() as u64);
                for (demand, &pick) in group.iter().zip(&picks) {
                    assert!(pick < candidates.len(), "selector pick out of range");
                    let ap = candidates[pick].ap;
                    let rate = demand.mean_rate();
                    run.state[ap.index()].load += rate;
                    run.state[ap.index()].associated.push(demand.user);
                    let session_idx = run.sessions.len() as u32;
                    run.sessions.push(Some(Active {
                        user: demand.user,
                        controller,
                        ap,
                        rate,
                        depart: demand.depart,
                        segment_start: demand.arrive,
                        remaining: demand.volume_by_app,
                    }));
                    departures.push(Reverse((demand.depart.as_secs(), session_idx)));
                }
            }
            i = j;
        }
        // Drain remaining departures.
        Self::apply_departures(&mut run, &mut departures, Timestamp::from_secs(u64::MAX));
        // Migrations close segments out of connect order; restore a stable
        // order for downstream consumers.
        run.records.sort_by_key(|r| (r.connect, r.user, r.ap));
        registry.counter(&REJECTED).add(rejected as u64);
        registry.counter(&MIGRATIONS).add(run.migrations as u64);
        SimResult {
            records: run.records,
            rejected,
            migrations: run.migrations,
        }
    }

    fn apply_departures(
        run: &mut RunState,
        departures: &mut BinaryHeap<Reverse<(u64, u32)>>,
        now: Timestamp,
    ) {
        let departed = s3_obs::global().counter(&DEPARTURES);
        while let Some(&Reverse((t, idx))) = departures.peek() {
            if t > now.as_secs() {
                break;
            }
            departures.pop();
            let Some(mut active) = run.sessions[idx as usize].take() else {
                continue;
            };
            departed.inc();
            let ap_state = &mut run.state[active.ap.index()];
            ap_state.load = ap_state.load.saturating_sub(active.rate);
            if let Some(pos) = ap_state.associated.iter().position(|&u| u == active.user) {
                ap_state.associated.swap_remove(pos);
            }
            let end = active.depart;
            run.records.push(active.close_segment(end, true));
        }
    }

    /// Greedy max-to-min migration per controller: repeatedly move the
    /// best-fitting session from the most-loaded AP to the least-loaded
    /// one while the gap shrinks.
    fn rebalance(&self, run: &mut RunState, now: Timestamp, config: &RebalanceConfig) {
        s3_obs::global().counter(&REBALANCE_ROUNDS).inc();
        for controller in self.topology.controllers() {
            let aps = self.topology.aps_of_controller(controller);
            if aps.len() < 2 {
                continue;
            }
            for _ in 0..config.max_moves_per_round {
                let mut max_ap = aps[0];
                let mut min_ap = aps[0];
                for &ap in aps {
                    if run.state[ap.index()].load > run.state[max_ap.index()].load {
                        max_ap = ap;
                    }
                    if run.state[ap.index()].load < run.state[min_ap.index()].load {
                        min_ap = ap;
                    }
                }
                let gap = run.state[max_ap.index()]
                    .load
                    .saturating_sub(run.state[min_ap.index()].load);
                if gap.as_f64() <= 0.0 {
                    break;
                }
                // The largest session on max_ap whose move still shrinks
                // the gap (rate < gap).
                let candidate = run
                    .sessions
                    .iter()
                    .enumerate()
                    .filter_map(|(idx, s)| s.as_ref().map(|s| (idx, s)))
                    .filter(|(_, s)| s.ap == max_ap && s.rate.as_f64() < gap.as_f64())
                    .max_by(|a, b| {
                        a.1.rate
                            .as_f64()
                            .partial_cmp(&b.1.rate.as_f64())
                            .expect("finite rates")
                    })
                    .map(|(idx, _)| idx);
                let Some(idx) = candidate else { break };
                let active = run.sessions[idx].as_mut().expect("candidate is live");
                // Close the segment on the old AP (skip zero-length ones).
                if now > active.segment_start {
                    let record = active.close_segment(now, false);
                    run.records.push(record);
                } else {
                    active.segment_start = now;
                }
                let rate = active.rate;
                let user = active.user;
                let old = active.ap;
                active.ap = min_ap;
                run.migrations += 1;
                let old_state = &mut run.state[old.index()];
                old_state.load = old_state.load.saturating_sub(rate);
                if let Some(pos) = old_state.associated.iter().position(|&u| u == user) {
                    old_state.associated.swap_remove(pos);
                }
                let new_state = &mut run.state[min_ap.index()];
                new_state.load += rate;
                new_state.associated.push(user);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::{LeastLoadedFirst, SelectionContext, StrongestRssi};
    use s3_trace::generator::{CampusConfig, CampusGenerator};
    use s3_types::{AppCategory, BuildingId, Bytes};

    fn demand(user: u32, building: u32, arrive: u64, depart: u64, mb: u64) -> SessionDemand {
        let mut volume_by_app = [Bytes::ZERO; 6];
        volume_by_app[AppCategory::WebBrowsing.index()] = Bytes::megabytes(mb);
        SessionDemand {
            user: UserId::new(user),
            building: BuildingId::new(building),
            controller: ControllerId::new(building),
            arrive: Timestamp::from_secs(arrive),
            depart: Timestamp::from_secs(depart),
            volume_by_app,
        }
    }

    fn tiny_engine() -> SimEngine {
        let topology = Topology::from_campus(&CampusConfig::tiny());
        SimEngine::new(topology, SimConfig::default())
    }

    #[test]
    fn every_demand_is_placed() {
        let campus = CampusGenerator::new(CampusConfig::tiny(), 3).generate();
        let engine = SimEngine::new(Topology::from_campus(&campus.config), SimConfig::default());
        let result = engine.run(&campus.demands, &mut LeastLoadedFirst::new());
        assert_eq!(result.records.len(), campus.demands.len());
        assert_eq!(result.rejected, 0);
        assert_eq!(result.migrations, 0);
        // Every record's AP belongs to the record's controller.
        for r in &result.records {
            assert!(engine
                .topology()
                .aps_of_controller(r.controller)
                .contains(&r.ap));
        }
    }

    #[test]
    fn llf_spreads_simultaneous_arrivals() {
        let engine = tiny_engine();
        // Three users arrive together in building 0 (3 APs).
        let demands = vec![
            demand(1, 0, 100, 5_000, 10),
            demand(2, 0, 105, 5_000, 10),
            demand(3, 0, 110, 5_000, 10),
        ];
        let result = engine.run(&demands, &mut LeastLoadedFirst::new());
        let aps: std::collections::HashSet<ApId> = result.records.iter().map(|r| r.ap).collect();
        assert_eq!(
            aps.len(),
            3,
            "LLF must use all three APs: {:?}",
            result.records
        );
    }

    #[test]
    fn departures_release_load() {
        let engine = tiny_engine();
        // User 1 occupies an AP then leaves; user 2 arrives after and must
        // see an empty domain (LLF picks the lowest id again).
        let demands = vec![demand(1, 0, 100, 200, 100), demand(2, 0, 700, 800, 100)];
        let result = engine.run(&demands, &mut LeastLoadedFirst::new());
        assert_eq!(result.records[0].ap, result.records[1].ap);
    }

    #[test]
    fn load_accumulates_within_sessions() {
        let engine = tiny_engine();
        // Users overlap; the user-count tie-break sees the first user's
        // association immediately, so the second lands elsewhere.
        let demands = vec![
            demand(1, 0, 100, 10_000, 500),
            demand(2, 0, 200, 10_000, 500),
        ];
        let result = engine.run(&demands, &mut LeastLoadedFirst::new());
        assert_ne!(result.records[0].ap, result.records[1].ap);
    }

    #[test]
    fn controllers_are_isolated() {
        let engine = tiny_engine();
        let demands = vec![demand(1, 0, 100, 200, 1), demand(2, 1, 100, 200, 1)];
        let result = engine.run(&demands, &mut LeastLoadedFirst::new());
        assert_eq!(result.records[0].controller, ControllerId::new(0));
        assert_eq!(result.records[1].controller, ControllerId::new(1));
        assert_ne!(result.records[0].ap, result.records[1].ap);
    }

    #[test]
    fn strongest_rssi_is_stable_per_session() {
        let engine = tiny_engine();
        let demands = vec![demand(7, 0, 1_000, 2_000, 1)];
        let a = engine.run(&demands, &mut StrongestRssi::new());
        let b = engine.run(&demands, &mut StrongestRssi::new());
        assert_eq!(
            a.records[0].ap, b.records[0].ap,
            "radio model is deterministic"
        );
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_demands_panic() {
        let engine = tiny_engine();
        let demands = vec![demand(1, 0, 500, 600, 1), demand(2, 0, 100, 200, 1)];
        let _ = engine.run(&demands, &mut LeastLoadedFirst::new());
    }

    #[test]
    fn run_unsorted_recovers_by_resorting() {
        let engine = tiny_engine();
        let sorted = vec![demand(2, 0, 100, 200, 1), demand(1, 0, 500, 600, 1)];
        let shuffled = vec![sorted[1].clone(), sorted[0].clone()];
        let a = engine.run(&sorted, &mut LeastLoadedFirst::new());
        let b = engine.run_unsorted(&shuffled, &mut LeastLoadedFirst::new());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn batch_window_groups_arrivals() {
        // A selector that records how many users it saw per batch call.
        struct Recorder {
            batch_sizes: Vec<usize>,
        }
        impl ApSelector for Recorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn select(&mut self, _ctx: &SelectionContext<'_>) -> usize {
                0
            }
            fn select_batch(
                &mut self,
                users: &[ArrivalUser],
                candidates: &[ApCandidate],
            ) -> Vec<usize> {
                self.batch_sizes.push(users.len());
                vec![0; users.len().min(candidates.len().max(1))]
            }
        }
        let engine = tiny_engine();
        let demands = vec![
            demand(1, 0, 100, 900, 1),
            demand(2, 0, 110, 900, 1), // within 30 s of head
            demand(3, 0, 500, 900, 1), // separate batch
        ];
        let mut recorder = Recorder {
            batch_sizes: vec![],
        };
        let _ = engine.run(&demands, &mut recorder);
        assert_eq!(recorder.batch_sizes, vec![2, 1]);
    }

    #[test]
    fn zero_batch_window_processes_one_by_one() {
        let engine = SimEngine::new(
            Topology::from_campus(&CampusConfig::tiny()),
            SimConfig {
                batch_window: TimeDelta::ZERO,
                ..SimConfig::default()
            },
        );
        let demands = vec![demand(1, 0, 100, 900, 1), demand(2, 0, 100, 900, 1)];
        let result = engine.run(&demands, &mut LeastLoadedFirst::new());
        // Same-instant arrivals still both placed.
        assert_eq!(result.records.len(), 2);
    }

    fn rebalancing_engine() -> SimEngine {
        SimEngine::new(
            Topology::from_campus(&CampusConfig::tiny()),
            SimConfig {
                rebalance: Some(RebalanceConfig {
                    interval: TimeDelta::minutes(5),
                    max_moves_per_round: 4,
                }),
                ..SimConfig::default()
            },
        )
    }

    /// A pathological policy that stacks every arrival on candidate 0 —
    /// the worst case the rebalancer exists to clean up.
    struct Stacker;
    impl ApSelector for Stacker {
        fn name(&self) -> &str {
            "stacker"
        }
        fn select(&mut self, _ctx: &SelectionContext<'_>) -> usize {
            0
        }
    }

    /// Six heavy sessions that the stacker piles on one AP, plus a later
    /// arrival that triggers a rebalance round.
    fn stacked_demands() -> Vec<SessionDemand> {
        let mut demands: Vec<SessionDemand> = (0..6)
            .map(|i| demand(i, 0, 100 + i as u64, 50_000, 200))
            .collect();
        demands.push(demand(99, 0, 10_000, 11_000, 1));
        demands
    }

    #[test]
    fn rebalancer_migrates_and_conserves_volume() {
        let engine = rebalancing_engine();
        let demands = stacked_demands();
        let result = engine.run(&demands, &mut Stacker);
        assert!(result.migrations > 0, "rebalancer must move something");
        let served: u64 = result
            .records
            .iter()
            .map(|r| r.total_volume().as_u64())
            .sum();
        let demanded: u64 = demands.iter().map(|d| d.total_volume().as_u64()).sum();
        assert_eq!(served, demanded, "migration must conserve traffic");
    }

    #[test]
    fn migrated_sessions_split_into_contiguous_segments() {
        let engine = rebalancing_engine();
        let demands = stacked_demands();
        let result = engine.run(&demands, &mut Stacker);
        for d in &demands {
            let mut segments: Vec<&SessionRecord> =
                result.records.iter().filter(|r| r.user == d.user).collect();
            segments.sort_by_key(|r| r.connect);
            assert_eq!(segments.first().unwrap().connect, d.arrive);
            assert_eq!(segments.last().unwrap().disconnect, d.depart);
            for w in segments.windows(2) {
                assert_eq!(
                    w[0].disconnect, w[1].connect,
                    "segments must tile the session"
                );
                assert_ne!(w[0].ap, w[1].ap, "a migration changes the AP");
            }
            let vol: u64 = segments.iter().map(|r| r.total_volume().as_u64()).sum();
            assert_eq!(vol, d.total_volume().as_u64());
        }
    }

    #[test]
    fn no_rebalance_config_means_no_migrations() {
        let engine = tiny_engine();
        let demands = stacked_demands();
        let result = engine.run(&demands, &mut Stacker);
        assert_eq!(result.migrations, 0);
        assert_eq!(result.records.len(), demands.len());
    }

    #[test]
    fn rebalancer_improves_balance_of_a_stacked_domain() {
        let demands = stacked_demands();
        let plain = tiny_engine().run(&demands, &mut Stacker);
        let rebalanced = rebalancing_engine().run(&demands, &mut Stacker);
        let spread = |records: &[SessionRecord]| {
            records
                .iter()
                .map(|r| r.ap)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        assert!(
            spread(&rebalanced.records) > spread(&plain.records),
            "rebalancing must spread sessions over more APs"
        );
    }
}
