//! Decision-trace invariants end to end: every clean engine run must
//! produce a log that [`s3_wlan::engine::check_log`] passes — for
//! arbitrary demand streams, any baseline policy, with and without the
//! rebalancer — and a seeded corruption of each invariant class must be
//! caught *as* that class, at the corrupted line.

use std::io::BufReader;

use proptest::prelude::*;

use s3_trace::decision_log::config_hash;
use s3_trace::generator::{CampusConfig, CampusGenerator};
use s3_trace::SessionDemand;
use s3_types::{AppCategory, BuildingId, Bytes, ControllerId, Timestamp, UserId};
use s3_wlan::engine::{check_log, trace_header, InvariantClass, SliceSource, TraceSink};
use s3_wlan::selector::{ApSelector, LeastLoadedFirst, LeastUsers, RandomSelector, StrongestRssi};
use s3_wlan::{RebalanceConfig, SimConfig, SimEngine, Topology};

/// Replays `demands` under `selector`, recording a decision log, and
/// returns the log text.
fn traced(demands: &[SessionDemand], selector: &mut dyn ApSelector, rebalance: bool) -> String {
    let config = CampusConfig {
        buildings: 2,
        aps_per_building: 3,
        ..CampusConfig::campus()
    };
    let sim_config = SimConfig {
        rebalance: rebalance.then(RebalanceConfig::default),
        ..SimConfig::default()
    };
    let engine = SimEngine::new(Topology::from_campus(&config), sim_config);
    let header = trace_header(
        engine.topology(),
        9,
        1,
        1,
        selector.name(),
        config_hash("trace-props"),
    );
    let mut sink = TraceSink::new(Vec::new(), &header).unwrap();
    let mut source = SliceSource::new(demands);
    engine.run_traced(&mut source, selector, &mut sink).unwrap();
    String::from_utf8(sink.finish().unwrap()).unwrap()
}

fn check(log: &str) -> Vec<(u64, InvariantClass)> {
    check_log(BufReader::new(log.as_bytes()))
        .unwrap()
        .violations
        .iter()
        .map(|v| (v.line, v.class))
        .collect()
}

fn arbitrary_demands() -> impl Strategy<Value = Vec<SessionDemand>> {
    prop::collection::vec(
        (
            0u32..30,      // user
            0usize..2,     // building
            0u64..200_000, // arrive
            60u64..20_000, // duration
            0u64..500,     // megabytes
            0usize..6,     // category
        ),
        1..60,
    )
    .prop_map(|rows| {
        let mut demands: Vec<SessionDemand> = rows
            .into_iter()
            .map(|(user, building, arrive, len, mb, cat)| {
                let mut volume_by_app = [Bytes::ZERO; 6];
                volume_by_app[AppCategory::from_index(cat).unwrap().index()] = Bytes::megabytes(mb);
                SessionDemand {
                    user: UserId::new(user),
                    building: BuildingId::new(building as u32),
                    controller: ControllerId::new(building as u32),
                    arrive: Timestamp::from_secs(arrive),
                    depart: Timestamp::from_secs(arrive + len),
                    volume_by_app,
                }
            })
            .collect();
        demands.sort_by_key(|d| (d.arrive, d.user));
        demands
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any clean run of any baseline policy yields a log with zero
    /// invariant violations — with and without the rebalancer.
    #[test]
    fn clean_runs_always_pass(demands in arbitrary_demands(), policy in 0usize..4, rebalance in 0usize..2) {
        let mut selector: Box<dyn ApSelector> = match policy {
            0 => Box::new(LeastLoadedFirst::new()),
            1 => Box::new(LeastUsers::new()),
            2 => Box::new(StrongestRssi::new()),
            _ => Box::new(RandomSelector::new(5)),
        };
        let log = traced(&demands, selector.as_mut(), rebalance == 1);
        let violations = check(&log);
        prop_assert!(violations.is_empty(), "clean run flagged: {violations:?}");
    }
}

/// A seeded generator-driven log with rebalancer ticks, reused by every
/// mutation test below. Large enough to contain each record kind.
fn seeded_log() -> String {
    let campus = CampusGenerator::new(CampusConfig::tiny(), 17).generate();
    traced(&campus.demands, &mut LeastLoadedFirst::new(), true)
}

/// 1-based line number of the first line matching `pred`.
fn find_line(log: &str, pred: impl Fn(&str) -> bool) -> u64 {
    log.lines().position(pred).expect("line present") as u64 + 1
}

/// Replaces line `line` (1-based) with `f(old)`.
fn rewrite_line(log: &str, line: u64, f: impl Fn(&str) -> String) -> String {
    log.lines()
        .enumerate()
        .map(|(i, l)| {
            if i as u64 + 1 == line {
                f(l)
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_flagged(log: &str, line: u64, class: InvariantClass) {
    let violations = check(log);
    assert!(
        violations.contains(&(line, class)),
        "expected line {line} flagged as {class}, got {violations:?}"
    );
}

#[test]
fn format_corruption_is_caught() {
    let log = seeded_log();
    let line = find_line(&log, |l| l.contains("\"k\":\"select\""));
    let bad = rewrite_line(&log, line, |l| {
        l.replace("{\"k\":\"select\"", "{\"k:\"select\"")
    });
    assert_flagged(&bad, line, InvariantClass::Format);
}

#[test]
fn event_order_corruption_is_caught() {
    let log = seeded_log();
    // Drag the LAST batch back to t=0: time runs backwards.
    let line = log
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("\"k\":\"batch\""))
        .map(|(i, _)| i)
        .last()
        .expect("log has batches") as u64
        + 1;
    let bad = rewrite_line(&log, line, |l| {
        let t_start = l.find("\"t\":").expect("batch has t") + 4;
        let t_end = t_start + l[t_start..].find(',').expect("t is not last");
        format!("{}0{}", &l[..t_start], &l[t_end..])
    });
    assert_flagged(&bad, line, InvariantClass::EventOrder);
}

#[test]
fn capacity_corruption_is_caught() {
    let log = seeded_log();
    // Inflate one selection's rate far past the uniform 100 Mbps AP
    // capacity.
    let line = find_line(&log, |l| l.contains("\"k\":\"select\""));
    let bad = rewrite_line(&log, line, |l| {
        l.replace("\"rate\":", "\"rate\":9e9, \"was\":")
    });
    assert_flagged(&bad, line, InvariantClass::Capacity);
}

#[test]
fn migration_corruption_is_caught() {
    let log = seeded_log();
    // Inject a migration outside any rebalance epoch: right after the
    // first select, moving that session (sid of the first select is 0).
    let line = find_line(&log, |l| l.contains("\"k\":\"select\""));
    let select = log.lines().nth(line as usize - 1).unwrap();
    let t_start = select.find("\"t\":").expect("select has t") + 4;
    let at = &select[t_start..t_start + select[t_start..].find(',').unwrap()];
    let injected: Vec<String> = log
        .lines()
        .enumerate()
        .flat_map(|(i, l)| {
            let mut lines = vec![l.to_string()];
            if i as u64 + 1 == line {
                lines.push(format!(
                    "{{\"k\":\"move\",\"t\":{at},\"sid\":0,\"user\":0,\"from\":0,\"to\":1}}"
                ));
            }
            lines
        })
        .collect();
    assert_flagged(&injected.join("\n"), line + 1, InvariantClass::Migration);
}

#[test]
fn candidate_corruption_is_caught() {
    let log = seeded_log();
    let line = find_line(&log, |l| l.contains("\"k\":\"select\""));
    let bad = rewrite_line(&log, line, |l| {
        l.replace("\"ap\":", "\"ap\":9999, \"was\":")
    });
    assert_flagged(&bad, line, InvariantClass::Candidate);
}

#[test]
fn conservation_corruption_is_caught() {
    let log = seeded_log();
    let line = find_line(&log, |l| l.contains("\"k\":\"end\""));
    let bad = rewrite_line(&log, line, |l| {
        l.replace("\"placed\":", "\"placed\":999999, \"was\":")
    });
    assert_flagged(&bad, line, InvariantClass::Conservation);
}
