//! Property tests over the replay engine: for arbitrary demand streams and
//! any policy, the engine must serve everything exactly once, stay inside
//! the topology, and conserve traffic — with and without the rebalancer.

use proptest::prelude::*;

use s3_trace::generator::CampusConfig;
use s3_trace::{SessionDemand, TraceStore};
use s3_types::{AppCategory, BuildingId, Bytes, ControllerId, TimeDelta, Timestamp, UserId};
use s3_wlan::selector::{ApSelector, LeastLoadedFirst, LeastUsers, RandomSelector, StrongestRssi};
use s3_wlan::{RebalanceConfig, SimConfig, SimEngine, Topology};

fn arbitrary_demands() -> impl Strategy<Value = Vec<SessionDemand>> {
    prop::collection::vec(
        (
            0u32..30,      // user
            0usize..2,     // building
            0u64..200_000, // arrive
            60u64..20_000, // duration
            0u64..500,     // megabytes
            0usize..6,     // category
        ),
        1..60,
    )
    .prop_map(|rows| {
        let mut demands: Vec<SessionDemand> = rows
            .into_iter()
            .map(|(user, building, arrive, len, mb, cat)| {
                let mut volume_by_app = [Bytes::ZERO; 6];
                volume_by_app[AppCategory::from_index(cat).unwrap().index()] = Bytes::megabytes(mb);
                SessionDemand {
                    user: UserId::new(user),
                    building: BuildingId::new(building as u32),
                    controller: ControllerId::new(building as u32),
                    arrive: Timestamp::from_secs(arrive),
                    depart: Timestamp::from_secs(arrive + len),
                    volume_by_app,
                }
            })
            .collect();
        demands.sort_by_key(|d| (d.arrive, d.user));
        demands
    })
}

fn engine(rebalance: bool) -> SimEngine {
    SimEngine::new(
        Topology::from_campus(&CampusConfig::tiny()),
        SimConfig {
            rebalance: rebalance.then(|| RebalanceConfig {
                interval: TimeDelta::minutes(5),
                max_moves_per_round: 3,
            }),
            ..SimConfig::default()
        },
    )
}

fn check_invariants(
    demands: &[SessionDemand],
    engine: &SimEngine,
    selector: &mut dyn ApSelector,
) -> Result<(), TestCaseError> {
    let result = engine.run(demands, selector);
    prop_assert_eq!(result.rejected, 0);

    // Traffic conservation.
    let served: u64 = result
        .records
        .iter()
        .map(|r| r.total_volume().as_u64())
        .sum();
    let demanded: u64 = demands.iter().map(|d| d.total_volume().as_u64()).sum();
    prop_assert_eq!(served, demanded);

    // Topology validity.
    for r in &result.records {
        prop_assert!(engine
            .topology()
            .aps_of_controller(r.controller)
            .contains(&r.ap));
        prop_assert!(r.disconnect >= r.connect);
    }

    // Each demand is covered by records tiling its interval. Demands are
    // keyed by (user, arrive, depart) which may repeat: compare per-user
    // served seconds and volume.
    let store = TraceStore::new(result.records);
    for &user in &store.users() {
        let expected_secs: u64 = demands
            .iter()
            .filter(|d| d.user == user)
            .map(|d| d.duration().as_secs())
            .sum();
        let got_secs: u64 = store
            .sessions_of(user)
            .map(|r| r.duration().as_secs())
            .sum();
        prop_assert_eq!(got_secs, expected_secs, "user {} seconds mismatch", user);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn llf_run_upholds_invariants(demands in arbitrary_demands()) {
        check_invariants(&demands, &engine(false), &mut LeastLoadedFirst::new())?;
    }

    #[test]
    fn least_users_run_upholds_invariants(demands in arbitrary_demands()) {
        check_invariants(&demands, &engine(false), &mut LeastUsers::new())?;
    }

    #[test]
    fn rssi_run_upholds_invariants(demands in arbitrary_demands()) {
        check_invariants(&demands, &engine(false), &mut StrongestRssi::new())?;
    }

    #[test]
    fn random_run_upholds_invariants(demands in arbitrary_demands(), seed in 0u64..100) {
        check_invariants(&demands, &engine(false), &mut RandomSelector::new(seed))?;
    }

    #[test]
    fn rebalanced_run_upholds_invariants(demands in arbitrary_demands(), seed in 0u64..100) {
        // The rebalancer splits sessions; all invariants must still hold.
        check_invariants(&demands, &engine(true), &mut RandomSelector::new(seed))?;
    }

    #[test]
    fn replay_is_deterministic(demands in arbitrary_demands()) {
        let e = engine(false);
        let a = e.run(&demands, &mut LeastLoadedFirst::new());
        let b = e.run(&demands, &mut LeastLoadedFirst::new());
        prop_assert_eq!(a.records, b.records);
    }
}
