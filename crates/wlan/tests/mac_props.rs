//! Property tests for the 802.11 airtime model.

use proptest::prelude::*;

use s3_types::BitsPerSec;
use s3_wlan::mac::{airtime_throughputs, phy_rate_from_rssi, StationDemand, MAC_EFFICIENCY};

fn stations_strategy() -> impl Strategy<Value = Vec<StationDemand>> {
    prop::collection::vec((0.0f64..60.0, 0.0f64..80.0), 0..12).prop_map(|rows| {
        rows.into_iter()
            .map(|(solo_mbps, demand_mbps)| StationDemand {
                solo_rate: BitsPerSec::mbps(solo_mbps),
                demand: BitsPerSec::mbps(demand_mbps),
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn allocation_never_exceeds_demand_or_airtime(stations in stations_strategy()) {
        let a = airtime_throughputs(&stations);
        prop_assert_eq!(a.served.len(), stations.len());
        prop_assert!((0.0..=1.0 + 1e-9).contains(&a.utilization));
        let mut airtime_used = 0.0;
        for (s, served) in stations.iter().zip(&a.served) {
            prop_assert!(
                served.as_f64() <= s.demand.as_f64() + 1.0,
                "served {} exceeds demand {}",
                served,
                s.demand
            );
            if s.solo_rate.as_f64() > 0.0 {
                airtime_used += served.as_f64() / s.solo_rate.as_f64();
            } else {
                prop_assert_eq!(*served, BitsPerSec::ZERO);
            }
        }
        prop_assert!(airtime_used <= 1.0 + 1e-6, "airtime overcommitted: {airtime_used}");
    }

    #[test]
    fn saturated_allocation_uses_all_airtime(
        solo in prop::collection::vec(5.0f64..60.0, 1..8)
    ) {
        // Every station is greedy: the AP must be fully utilized and the
        // airtime split exactly equal.
        let stations: Vec<StationDemand> = solo
            .iter()
            .map(|&s| StationDemand {
                solo_rate: BitsPerSec::mbps(s),
                demand: BitsPerSec::mbps(1_000.0),
            })
            .collect();
        let a = airtime_throughputs(&stations);
        prop_assert_eq!(a.utilization, 1.0);
        let shares: Vec<f64> = stations
            .iter()
            .zip(&a.served)
            .map(|(s, served)| served.as_f64() / s.solo_rate.as_f64())
            .collect();
        let expected = 1.0 / stations.len() as f64;
        for share in shares {
            prop_assert!((share - expected).abs() < 1e-9, "unequal airtime: {share}");
        }
    }

    #[test]
    fn adding_a_station_never_increases_anyones_rate(
        stations in stations_strategy().prop_filter("non-empty", |s| !s.is_empty())
    ) {
        let before = airtime_throughputs(&stations[..stations.len() - 1]);
        let after = airtime_throughputs(&stations);
        for (b, a) in before.served.iter().zip(&after.served) {
            prop_assert!(
                a.as_f64() <= b.as_f64() + 1.0,
                "a station's rate rose when contention grew"
            );
        }
    }

    #[test]
    fn phy_ladder_is_monotone(r1 in -100.0f64..0.0, r2 in -100.0f64..0.0) {
        let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(phy_rate_from_rssi(lo).as_f64() <= phy_rate_from_rssi(hi).as_f64());
        prop_assert!(phy_rate_from_rssi(hi).as_f64() <= 54e6);
        // Efficiency constant is sane.
        prop_assert!(MAC_EFFICIENCY > 0.0 && MAC_EFFICIENCY <= 1.0);
    }
}
